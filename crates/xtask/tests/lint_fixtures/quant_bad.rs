//! Bad fixture: a quantized batch drain that breaks both of the quant
//! kernel's zone disciplines — ambient hashing and wall-clock reads on
//! the compile/serve path (determinism), the detector guard held across
//! the batched `assess_many` drain, and a Relaxed publish of the
//! compiled model's epoch (concurrency).
use std::collections::HashMap;

pub fn compile_quantized(rows: &[Vec<f64>]) -> HashMap<usize, i64> {
    let started = Instant::now();
    let mut table = HashMap::new();
    table.insert(0, started.elapsed().as_nanos() as i64);
    table
}

pub fn drain_under_guard(slot: &RwLock<Detector>, frames: &[Frame]) {
    let detector = slot.read();
    detector.assess_many(frames);
}

pub fn publish_compiled_epoch(epoch: &AtomicU64) {
    epoch.store(1, Ordering::Relaxed);
}
