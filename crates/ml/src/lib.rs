//! # polygraph-ml
//!
//! A small, dependency-light machine-learning substrate written from scratch
//! for the Browser Polygraph reproduction. It provides exactly the blocks the
//! paper's pipeline needs:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix with the column statistics
//!   used throughout the pipeline.
//! * [`StandardScaler`] — per-column zero-mean / unit-variance scaling
//!   (§6.4.1 of the paper).
//! * [`Pca`] — principal component analysis via a cyclic Jacobi
//!   eigendecomposition of the covariance matrix (§6.4.2).
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding, WCSS reporting
//!   and the elbow-method helpers of Figures 3 and 4 (§6.4.3).
//! * [`IsolationForest`] — outlier removal before training (§6.4.1).
//! * [`Agglomerative`] — the hierarchical alternative the paper passed
//!   over for efficiency, kept for measured comparison.
//! * [`ThreadPool`] — a work-stealing scoped thread pool driving the
//!   parallel variants of the training kernels (`*_with_pool`), with
//!   bit-identical serial/parallel results.
//! * [`metrics`] — the semi-supervised *majority-cluster accuracy* metric of
//!   Appendix-4, Formula 1.
//! * [`privacy`] — Shannon entropy, normalised entropy and anonymity-set
//!   analysis used in the paper's privacy evaluation (§7.4, Table 7,
//!   Figure 5).
//!
//! Everything is deterministic given a seed; no global RNG state is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod eigen;
pub mod error;
pub mod iforest;
pub mod kmeans;
pub mod matrix;
pub mod metrics;
pub mod pca;
pub mod pool;
pub mod privacy;
pub mod quant;
pub mod scaler;

pub use agglomerative::Agglomerative;
pub use error::MlError;
pub use iforest::IsolationForest;
pub use kmeans::minibatch::{MiniBatchConfig, MiniBatchKMeans};
pub use kmeans::{ElbowReport, KMeans};
pub use matrix::Matrix;
pub use pca::Pca;
pub use pool::{total_tasks_executed, ThreadPool};
pub use quant::{QuantModel, QuantScratch};
pub use scaler::StandardScaler;
