//! Streaming drift accumulation: §6.6 without batch storage.
//!
//! The batch [`crate::drift::DriftDetector`] needs the whole checkpoint
//! window in memory. In production the collection service sees one
//! submission at a time; [`DriftAccumulator`] ingests sessions as they
//! arrive, keeps only per-(release, cluster) counters, and answers the
//! same checkpoint question — predominant cluster and accuracy per new
//! release — from O(releases × clusters) state instead of O(sessions).

//!
//! [`DriftStream`] couples the accumulator with a seeded
//! [`ReservoirWindow`] so the very same ingest path that measures drift
//! also maintains the next retrain window. Checkpoints answer from the
//! counters alone — the resident window is only copied out when a
//! retrain actually triggers, which the no-allocation-on-stable
//! regression test pins.

use crate::dataset::TrainingSet;
use crate::drift::{DriftDecision, DriftObservation};
use crate::error::PolygraphError;
use crate::sampling::ReservoirWindow;
use crate::train::TrainedModel;
use browser_engine::UserAgent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Incremental per-release cluster counters over a trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftAccumulator {
    /// (release → (cluster → sessions)) counters. BTreeMap: the majority
    /// scan in `observe` must break count ties identically on every run
    /// (and identically to the batch detector), or a 50/50 release would
    /// flip its predominant cluster between checkpoints.
    counts: BTreeMap<UserAgent, BTreeMap<usize, usize>>,
    /// Total sessions ingested (all releases).
    ingested: usize,
}

impl Default for DriftAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            counts: BTreeMap::new(),
            ingested: 0,
        }
    }

    /// Total sessions ingested since the last reset.
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// Ingests one session: predicts its cluster under `model` (with the
    /// detector's satellite semantics) and counts it for its claimed
    /// release.
    pub fn ingest(
        &mut self,
        model: &TrainedModel,
        values: &[f64],
        claimed: UserAgent,
    ) -> Result<(), PolygraphError> {
        let cluster = model.nearest_populated_cluster(model.predict_cluster(values)?);
        *self
            .counts
            .entry(claimed)
            .or_default()
            .entry(cluster)
            .or_default() += 1;
        self.ingested += 1;
        Ok(())
    }

    /// The checkpoint measurement for one release, from the accumulated
    /// counters — identical semantics to `DriftDetector::observe`.
    pub fn observe(
        &self,
        model: &TrainedModel,
        release: UserAgent,
    ) -> Result<DriftObservation, PolygraphError> {
        let Some(clusters) = self.counts.get(&release) else {
            return Err(PolygraphError::NoObservations(release.label()));
        };
        let sessions: usize = clusters.values().sum();
        let (&cluster, &majority) = clusters
            .iter()
            .max_by_key(|(_, &count)| count)
            .expect("a present release has at least one session");
        let expected_cluster = model
            .cluster_table()
            .entries()
            .iter()
            .filter(|(u, _)| u.vendor == release.vendor && *u != release)
            .min_by_key(|(u, _)| u.version.abs_diff(release.version))
            .map(|(_, c)| *c);
        Ok(DriftObservation {
            release,
            cluster,
            expected_cluster,
            accuracy: majority as f64 / sessions as f64,
            sessions,
        })
    }

    /// Runs a checkpoint over several releases and renders the decision.
    pub fn checkpoint(
        &self,
        model: &TrainedModel,
        releases: &[UserAgent],
    ) -> Result<(Vec<DriftObservation>, DriftDecision), PolygraphError> {
        let mut observations = Vec::with_capacity(releases.len());
        for &r in releases {
            observations.push(self.observe(model, r)?);
        }
        let triggers: Vec<UserAgent> = observations
            .iter()
            .filter(|o| o.triggers_retraining())
            .map(|o| o.release)
            .collect();
        let decision = if triggers.is_empty() {
            DriftDecision::Stable
        } else {
            DriftDecision::Retrain { triggers }
        };
        Ok((observations, decision))
    }

    /// Clears the counters — called after a retrain, so the next window
    /// is measured against the new model only.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.ingested = 0;
    }
}

/// Drift counters plus the live training window, fed from one stream.
///
/// The serving loop calls [`DriftStream::ingest`] per session: the
/// accumulator counts the session's (release, cluster) pair and the
/// reservoir decides whether it joins the retrain window. Checkpoints
/// ([`DriftStream::checkpoint`]) read only the counters — the window is
/// neither cloned nor materialised on the stable path; a triggered
/// retrain copies it out once via [`DriftStream::training_window`].
#[derive(Debug, Clone)]
pub struct DriftStream {
    accumulator: DriftAccumulator,
    window: ReservoirWindow,
}

impl DriftStream {
    /// An empty stream whose reservoir holds at most `capacity` sessions
    /// of `width` features each.
    pub fn new(capacity: usize, width: usize, seed: u64) -> Result<Self, PolygraphError> {
        Ok(Self {
            accumulator: DriftAccumulator::new(),
            window: ReservoirWindow::new(capacity, width, seed)?,
        })
    }

    /// Ingests one session: counts it for drift measurement and offers
    /// it to the reservoir window.
    pub fn ingest(
        &mut self,
        model: &TrainedModel,
        values: &[f64],
        claimed: UserAgent,
    ) -> Result<(), PolygraphError> {
        self.accumulator.ingest(model, values, claimed)?;
        self.window.offer(values.to_vec(), claimed)
    }

    /// Total sessions ingested since the last reset.
    pub fn ingested(&self) -> usize {
        self.accumulator.ingested()
    }

    /// The checkpoint decision, answered from the accumulated counters
    /// alone — the resident window is borrowed by nobody and copied by
    /// nothing on this path.
    pub fn checkpoint(
        &self,
        model: &TrainedModel,
        releases: &[UserAgent],
    ) -> Result<(Vec<DriftObservation>, DriftDecision), PolygraphError> {
        self.accumulator.checkpoint(model, releases)
    }

    /// The drift counters.
    pub fn accumulator(&self) -> &DriftAccumulator {
        &self.accumulator
    }

    /// The resident reservoir window (borrowed).
    pub fn window(&self) -> &ReservoirWindow {
        &self.window
    }

    /// Copies the resident window out as a retrain [`TrainingSet`] —
    /// called only when a checkpoint actually triggered.
    pub fn training_window(&self) -> Result<TrainingSet, PolygraphError> {
        self.window.to_training_set()
    }

    /// Clears the drift counters after a promotion so the next window is
    /// measured against the new model only. The reservoir keeps its
    /// residents: the sample stays representative of the recent stream,
    /// which is exactly what the *next* candidate should train on.
    pub fn reset_counters(&mut self) {
        self.accumulator.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TrainingSet;
    use crate::drift::DriftDetector;
    use crate::train::{TrainConfig, TrainedModel};
    use browser_engine::Vendor;
    use fingerprint::FeatureSet;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    fn toy_model() -> TrainedModel {
        let mut set = TrainingSet::new(2);
        for (base, u) in [
            (0.0, ua(Vendor::Chrome, 100)),
            (10.0, ua(Vendor::Chrome, 110)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], u)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        TrainedModel::fit(
            fs,
            &set,
            TrainConfig {
                k: 2,
                n_components: 2,
                min_samples_for_majority: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn streaming_matches_batch_observation() {
        let model = toy_model();
        // A mixed window: Chrome 111 stable, Chrome 112 shifted.
        let mut rows: Vec<(Vec<f64>, UserAgent)> = Vec::new();
        for i in 0..60 {
            rows.push((
                vec![10.0 + (i % 2) as f64 * 0.1, 10.0],
                ua(Vendor::Chrome, 111),
            ));
        }
        for _ in 0..40 {
            rows.push((vec![0.0, 0.0], ua(Vendor::Chrome, 112)));
        }

        // Batch path.
        let (r, u): (Vec<_>, Vec<_>) = rows.clone().into_iter().unzip();
        let batch = TrainingSet::from_rows(r, u).unwrap();
        let batch_monitor = DriftDetector::new(&model);

        // Streaming path.
        let mut acc = DriftAccumulator::new();
        for (row, claimed) in &rows {
            acc.ingest(&model, row, *claimed).unwrap();
        }
        assert_eq!(acc.ingested(), rows.len());

        for release in [ua(Vendor::Chrome, 111), ua(Vendor::Chrome, 112)] {
            let batch_obs = batch_monitor.observe(&batch, release).unwrap();
            let stream_obs = acc.observe(&model, release).unwrap();
            assert_eq!(stream_obs, batch_obs, "{}", release.label());
        }
    }

    #[test]
    fn checkpoint_decision_matches_batch() {
        let model = toy_model();
        let mut acc = DriftAccumulator::new();
        for _ in 0..50 {
            acc.ingest(&model, &[0.0, 0.0], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let (obs, decision) = acc.checkpoint(&model, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert_eq!(obs.len(), 1);
        assert!(
            matches!(decision, DriftDecision::Retrain { .. }),
            "era flip must trigger"
        );
    }

    #[test]
    fn drift_stream_matches_plain_accumulator() {
        let model = toy_model();
        let mut stream = DriftStream::new(64, 2, 0xD1F7).unwrap();
        let mut acc = DriftAccumulator::new();
        for i in 0..50 {
            let row = vec![10.0 + (i % 2) as f64 * 0.1, 10.0];
            stream
                .ingest(&model, &row, ua(Vendor::Chrome, 111))
                .unwrap();
            acc.ingest(&model, &row, ua(Vendor::Chrome, 111)).unwrap();
        }
        assert_eq!(stream.ingested(), 50);
        let (obs, decision) = stream
            .checkpoint(&model, &[ua(Vendor::Chrome, 111)])
            .unwrap();
        let (plain_obs, plain_decision) =
            acc.checkpoint(&model, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert_eq!(obs, plain_obs);
        assert_eq!(
            matches!(decision, DriftDecision::Stable),
            matches!(plain_decision, DriftDecision::Stable)
        );
    }

    #[test]
    fn stable_checkpoints_never_materialize_the_window() {
        // The satellite-3 regression: checkpoints on a stable stream
        // must answer from the counters alone — zero window copies.
        let model = toy_model();
        let mut stream = DriftStream::new(32, 2, 0xD1F7).unwrap();
        for checkpoint in 0..10 {
            for i in 0..20 {
                stream
                    .ingest(
                        &model,
                        &[10.0 + (i % 2) as f64 * 0.1, 10.0],
                        ua(Vendor::Chrome, 111),
                    )
                    .unwrap();
            }
            let (_, decision) = stream
                .checkpoint(&model, &[ua(Vendor::Chrome, 111)])
                .unwrap();
            assert!(
                matches!(decision, DriftDecision::Stable),
                "checkpoint {checkpoint} unexpectedly drifted"
            );
        }
        assert_eq!(
            stream.window().materializations(),
            0,
            "a stable checkpoint copied the window"
        );
        // The drift path pays exactly one copy per retrain.
        let set = stream.training_window().unwrap();
        assert_eq!(set.len(), 32);
        assert_eq!(stream.window().materializations(), 1);
    }

    #[test]
    fn reset_counters_keeps_the_reservoir() {
        let model = toy_model();
        let mut stream = DriftStream::new(16, 2, 1).unwrap();
        for _ in 0..30 {
            stream
                .ingest(&model, &[10.0, 10.0], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        assert_eq!(stream.window().len(), 16);
        stream.reset_counters();
        assert_eq!(stream.ingested(), 0);
        assert_eq!(stream.window().len(), 16, "residents survive the reset");
        assert_eq!(stream.window().seen(), 30);
    }

    #[test]
    fn unseen_release_is_an_error_and_reset_clears() {
        let model = toy_model();
        let mut acc = DriftAccumulator::new();
        assert!(acc.observe(&model, ua(Vendor::Firefox, 119)).is_err());
        acc.ingest(&model, &[10.0, 10.0], ua(Vendor::Chrome, 111))
            .unwrap();
        assert!(acc.observe(&model, ua(Vendor::Chrome, 111)).is_ok());
        acc.reset();
        assert_eq!(acc.ingested(), 0);
        assert!(acc.observe(&model, ua(Vendor::Chrome, 111)).is_err());
    }
}
