//! Error type shared by the ML substrate.

use std::fmt;

/// Errors produced by the ML substrate.
///
/// All constructors in this crate validate their inputs eagerly so that a
/// malformed matrix (empty, ragged, or dimension-mismatched) is reported at
/// the call site instead of surfacing as a panic deep inside a numeric loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The input matrix had zero rows or zero columns.
    EmptyInput,
    /// Two inputs disagreed on a dimension.
    DimensionMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the operation required.
        expected: usize,
        /// Which dimension disagreed (for diagnostics).
        what: &'static str,
    },
    /// A hyper-parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A training cell was NaN or infinite. Fit routines reject these
    /// eagerly: a single non-finite cell would otherwise poison a whole
    /// column's statistics (a NaN column std, for example) and silently
    /// corrupt every later transform.
    NonFiniteInput {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// The model has not been fitted yet.
    NotFitted,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine name.
        routine: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyInput => write!(f, "input matrix is empty"),
            MlError::DimensionMismatch {
                got,
                expected,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch on {what}: got {got}, expected {expected}"
                )
            }
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MlError::NonFiniteInput { row, col } => {
                write!(f, "non-finite training value at row {row}, column {col}")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<MlError> = vec![
            MlError::EmptyInput,
            MlError::DimensionMismatch {
                got: 2,
                expected: 3,
                what: "columns",
            },
            MlError::InvalidParameter {
                name: "k",
                reason: "must be > 0".into(),
            },
            MlError::NonFiniteInput { row: 1, col: 2 },
            MlError::NotFitted,
            MlError::NoConvergence {
                routine: "jacobi",
                iterations: 100,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
