//! polygraph-lint: the workspace's static-analysis pass.
//!
//! `cargo xtask lint` walks every `.rs` file in the workspace, tokenizes
//! it with [`lexer`], and enforces the project invariants that `rustc`
//! cannot see (see [`rules`] for the rule table and DESIGN.md for the
//! rationale). Violations carry `file:line` positions; `lint.toml` holds
//! audited exceptions.
//!
//! The scan has two tiers. Tier one is per-file and embarrassingly
//! parallel: tokenize, classify, run the token-level rules, and (for
//! concurrency-zone files) summarize lock behaviour per function. Tier
//! two aggregates those [`concurrency::FnSummary`] values zone-wide for
//! the lock-order and guard-scope rules, which need a call graph. The
//! per-file work fans out over the `polygraph-ml` [`ThreadPool`]; the
//! final report is sorted by `(file, line, rule)`, so the pooled and
//! serial schedules render byte-identically.

pub mod bench;
pub mod concurrency;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

pub use bench::{BenchCheckConfig, BenchCheckReport};
pub use config::{AllowEntry, LintConfig};
pub use report::LintReport;
pub use rules::{Diagnostic, FileClass, RULE_CATALOG};

use polygraph_ml::pool::ThreadPool;
use std::path::Path;

/// One file's tier-one results: token-rule diagnostics plus (for
/// concurrency-zone files) per-function lock summaries for the zone-wide
/// passes.
struct FileAnalysis {
    diagnostics: Vec<Diagnostic>,
    summaries: Vec<concurrency::FnSummary>,
}

/// Lints every `.rs` file under `root` serially. Delegates to
/// [`lint_workspace_with_pool`]; the two must stay byte-identical (the
/// integration suite asserts it).
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<LintReport, String> {
    lint_workspace_with_pool(root, config, &ThreadPool::serial())
}

/// Lints every `.rs` file under `root`, fanning the per-file analyses out
/// over `pool`, applying the allowlist, and returning the report. Errors
/// only on I/O or configuration problems — rule violations are data, not
/// errors.
pub fn lint_workspace_with_pool(
    root: &Path,
    config: &LintConfig,
    pool: &ThreadPool,
) -> Result<LintReport, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &config.exclude, &mut files)?;
    files.sort();

    let analyses: Vec<Result<FileAnalysis, String>> =
        pool.run(files.len(), |i| analyze_file(root, &files[i], config));

    let mut diagnostics = Vec::new();
    let mut summaries = Vec::new();
    for analysis in analyses {
        let analysis = analysis?;
        diagnostics.extend(analysis.diagnostics);
        summaries.extend(analysis.summaries);
    }
    diagnostics.extend(concurrency::check_zone(&summaries));

    let (diagnostics, suppressed, unused_allows) = apply_allowlist(diagnostics, &config.allow);
    let mut diagnostics = diagnostics;
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
        unused_allows,
    })
}

/// Tier one for a single file: read, tokenize, classify, run the
/// per-file rules, and summarize concurrency-zone functions.
fn analyze_file(root: &Path, rel: &str, config: &LintConfig) -> Result<FileAnalysis, String> {
    let source = std::fs::read_to_string(root.join(rel))
        .map_err(|e| format!("failed to read {rel}: {e}"))?;
    let tokens = lexer::tokenize(&source);
    let class = classify(rel, config);
    let diagnostics = rules::check_file(rel, &tokens, class);
    let summaries = if class.concurrency {
        concurrency::summarize_file(rel, &tokens)
    } else {
        Vec::new()
    };
    Ok(FileAnalysis {
        diagnostics,
        summaries,
    })
}

/// Classifies one workspace-relative path against the configured zones.
pub fn classify(rel: &str, config: &LintConfig) -> FileClass {
    FileClass {
        determinism: config
            .determinism_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        key_determinism: config
            .key_determinism_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        panic_safety: config
            .panic_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        library: is_library_file(rel),
        concurrency: config
            .concurrency_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
    }
}

/// Whether a workspace-relative path is library source code, subject to
/// the hygiene rules (POLY-H002/H003). Binary targets (`src/bin/`,
/// `src/main.rs`) own the console; tests, benches, and examples are
/// scanned for the other rules but may print.
fn is_library_file(rel: &str) -> bool {
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    if !in_src {
        return false;
    }
    if rel.contains("/src/bin/") || rel.starts_with("src/bin/") {
        return false;
    }
    let basename = rel.rsplit('/').next().unwrap_or(rel);
    basename != "main.rs"
}

/// The zone map for the linter's own fixture corpus under
/// `crates/xtask/tests/lint_fixtures/`: filename prefixes instead of
/// workspace paths, no excludes. Shared by the integration suite and
/// `cargo xtask lint --self-check` so the two cannot drift.
pub fn fixture_lint_config() -> LintConfig {
    LintConfig {
        determinism_zone: vec![
            "det_".into(),
            "reactor_".into(),
            "quant_".into(),
            "fleet_".into(),
            "minibatch_".into(),
        ],
        key_determinism_zone: vec!["keys_".into()],
        panic_zone: vec!["panic_".into(), "reactor_".into()],
        concurrency_zone: vec![
            "lock_order_".into(),
            "guard_scope_".into(),
            "atomic_".into(),
            "quant_".into(),
            "fleet_".into(),
            "minibatch_".into(),
        ],
        exclude: Vec::new(),
        ..LintConfig::default()
    }
}

/// Lints the fixture corpus and cross-checks the outcome against
/// [`RULE_CATALOG`]: every scan rule must fire in some `*_bad` fixture,
/// every `*_good` twin must stay clean, and stale-allow detection must
/// still flip the report to failing. CI runs this as
/// `cargo xtask lint --self-check` to catch rule drift.
pub fn self_check(fixtures: &Path) -> Result<(), String> {
    let config = fixture_lint_config();
    let report = lint_workspace(fixtures, &config)?;
    // POLY-H004 is synthesized from the allowlist, not from source scans;
    // it is exercised separately below.
    for rule in RULE_CATALOG.iter().filter(|r| r.id != "POLY-H004") {
        if !report.diagnostics.iter().any(|d| d.rule == rule.id) {
            return Err(format!(
                "self-check: rule {} ({}) fired in no fixture — the corpus no longer \
                 exercises it",
                rule.id, rule.short
            ));
        }
    }
    for d in &report.diagnostics {
        let basename = d.file.rsplit('/').next().unwrap_or(&d.file);
        if basename.contains("_good") {
            return Err(format!(
                "self-check: clean fixture {} fired {} at line {}",
                d.file, d.rule, d.line
            ));
        }
    }
    // Stale-allow detection: a synthetic entry matching nothing must
    // surface as unused, and unused entries alone must fail the run.
    let mut stale = config.clone();
    stale.allow.push(AllowEntry {
        rule: "POLY-P001".into(),
        file: "no_such_fixture.rs".into(),
        line: None,
        reason: "self-check: deliberately stale".into(),
    });
    let stale_report = lint_workspace(fixtures, &stale)?;
    if stale_report.unused_allows.len() != 1 {
        return Err(format!(
            "self-check: expected exactly one stale allow, saw {}",
            stale_report.unused_allows.len()
        ));
    }
    let only_stale = LintReport {
        diagnostics: Vec::new(),
        files_scanned: stale_report.files_scanned,
        suppressed: 0,
        unused_allows: stale_report.unused_allows,
    };
    if only_stale.is_clean() {
        return Err("self-check: a report with stale allows must not count as clean".into());
    }
    Ok(())
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(rel) = relative_slash_path(root, &path) else {
            continue;
        };
        let file_type = entry
            .file_type()
            .map_err(|e| format!("failed to stat {rel}: {e}"))?;
        if file_type.is_dir() {
            let rel_dir = format!("{rel}/");
            if exclude.iter().any(|p| rel_dir.starts_with(p.as_str())) {
                continue;
            }
            collect_rs_files(root, &path, exclude, out)?;
        } else if file_type.is_file()
            && rel.ends_with(".rs")
            && !exclude.iter().any(|p| rel.starts_with(p.as_str()))
        {
            out.push(rel);
        }
    }
    Ok(())
}

/// The `/`-separated path of `path` relative to `root`, or None for
/// non-UTF-8 names (which cannot be workspace sources).
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(comp.as_os_str().to_str()?);
    }
    Some(out)
}

/// Splits diagnostics into (surviving, suppressed-count, unused allows).
/// An allow entry matches on rule + file, optionally narrowed to a line.
fn apply_allowlist(
    diagnostics: Vec<Diagnostic>,
    allow: &[AllowEntry],
) -> (Vec<Diagnostic>, usize, Vec<AllowEntry>) {
    let mut used = vec![false; allow.len()];
    let mut surviving = Vec::new();
    let mut suppressed = 0usize;
    for d in diagnostics {
        let hit = allow.iter().position(|a| {
            a.rule == d.rule && a.file == d.file && a.line.is_none_or(|l| l == d.line)
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => surviving.push(d),
        }
    }
    let unused = allow
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| a.clone())
        .collect();
    (surviving, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_classification() {
        assert!(is_library_file("crates/ml/src/metrics.rs"));
        assert!(is_library_file("crates/service/src/server.rs"));
        assert!(!is_library_file("crates/service/src/main.rs"));
        assert!(!is_library_file("crates/bench/src/bin/exp_tables.rs"));
        assert!(!is_library_file("crates/core/tests/train_integration.rs"));
        assert!(!is_library_file("crates/ml/benches/kmodes.rs"));
    }

    #[test]
    fn zone_classification_uses_prefixes() {
        let c = LintConfig::default();
        assert!(classify("crates/ml/src/kmodes.rs", &c).determinism);
        assert!(!classify("crates/ml/src/kmodes.rs", &c).panic_safety);
        assert!(classify("crates/service/src/proto.rs", &c).panic_safety);
        assert!(!classify("crates/service/src/lib.rs", &c).panic_safety);
        assert!(classify("crates/cache/src/lib.rs", &c).key_determinism);
        assert!(classify("crates/service/src/server.rs", &c).key_determinism);
        assert!(!classify("crates/ml/src/kmodes.rs", &c).key_determinism);
    }

    #[test]
    fn allowlist_matches_rule_file_and_optional_line() {
        let diags = vec![
            Diagnostic {
                rule: "POLY-P001",
                file: "a.rs".into(),
                line: 3,
                message: String::new(),
            },
            Diagnostic {
                rule: "POLY-P001",
                file: "a.rs".into(),
                line: 9,
                message: String::new(),
            },
        ];
        let allow = vec![AllowEntry {
            rule: "POLY-P001".into(),
            file: "a.rs".into(),
            line: Some(3),
            reason: "test".into(),
        }];
        let (left, suppressed, unused) = apply_allowlist(diags, &allow);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 9);
        assert_eq!(suppressed, 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_allow_entries_are_reported() {
        let allow = vec![AllowEntry {
            rule: "POLY-D001".into(),
            file: "never.rs".into(),
            line: None,
            reason: "stale".into(),
        }];
        let (_, suppressed, unused) = apply_allowlist(Vec::new(), &allow);
        assert_eq!(suppressed, 0);
        assert_eq!(unused.len(), 1);
    }
}
