//! Offline vendored parking_lot facade: [`Mutex`] and [`RwLock`] with the
//! parking_lot calling convention (`lock()` / `read()` / `write()` return
//! guards directly, no `Result`). Backed by `std::sync`; poisoning is
//! transparently cleared, which matches parking_lot's poison-free model.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock with non-poisoning `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire the write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
