//! Data pre-processing (§6.3): from 513 collected candidates to the 28
//! features of Table 8.
//!
//! The funnel, exactly as the paper ran it on its first real-world batch:
//!
//! 1. **Single-valued candidates** — features showing one value across all
//!    samples carry no signal (the paper found 186, including 40% of the
//!    time-based probes) → dropped.
//! 2. **Configuration-sensitive candidates** — features whose value swings
//!    *within* the same user-agent are being moved by user configuration
//!    (Firefox prefs zeroing `ServiceWorker*`, WebRTC blockers, privacy
//!    forks), not by the engine → dropped. The automated criterion: some
//!    user-agent groups disagree internally *and* the disagreement is
//!    large relative to the feature's overall spread. Small shifts (the
//!    DuckDuckGo extension's +2 on `Element`) are tolerated, exactly as
//!    the paper tolerated them.
//! 3. **Deviation ranking + manual review** — surviving deviation-based
//!    candidates are ranked by standard deviation. The paper then applied
//!    a *manual* review (documented in §6.3) that removed features with
//!    minimal deviation or residual configuration exposure, landing on the
//!    22 of Table 8; [`PreprocessConfig::manual_review`] replays that
//!    recorded decision. Surviving time-based candidates are all kept
//!    (6 survive).

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use browser_engine::protodb::TABLE8_PROTOTYPES;
use fingerprint::{FeatureKind, FeatureSet};
use std::collections::HashMap;

/// Tunables of the pre-processing funnel.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessConfig {
    /// How many deviation-based features to keep after ranking (22 in the
    /// paper).
    pub keep_deviation: usize,
    /// A feature is a candidate for configuration sensitivity when at
    /// least this fraction of its (sufficiently large) per-user-agent
    /// groups show disagreeing values.
    pub min_disagreeing_fraction: f64,
    /// ... and the *typical* (median over disagreeing groups) relative
    /// deviation from the group's modal value is at least this large.
    /// Configuration switches that zero an interface score 1.0 here; an
    /// extension adding two properties to a 300-property prototype scores
    /// 0.007 and is tolerated, exactly as the paper tolerated it. The
    /// median makes the test robust to whole-row anomalies (Tor sessions,
    /// mid-update version skew), which the Isolation Forest handles later.
    pub relative_deviation_threshold: f64,
    /// User-agent groups smaller than this are ignored by the
    /// config-sensitivity test (too few samples to judge).
    pub min_group: usize,
    /// Replay the paper's §6.3 manual curation: restrict the final
    /// deviation block to the prototypes the authors kept after hand
    /// analysis (Table 8). With `false`, the funnel is fully automated and
    /// may keep a different (but structurally similar) deviation block.
    pub manual_review: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            keep_deviation: 22,
            min_disagreeing_fraction: 0.05,
            relative_deviation_threshold: 0.25,
            min_group: 20,
            manual_review: true,
        }
    }
}

/// Outcome of pre-processing.
#[derive(Debug, Clone)]
pub struct PreprocessReport {
    /// Indices (into the candidate set) dropped as single-valued.
    pub constant_features: Vec<usize>,
    /// Indices dropped as configuration-sensitive.
    pub config_sensitive: Vec<usize>,
    /// Indices selected, in final feature order (deviation block first,
    /// then time-based block — Table 8's layout).
    pub selected: Vec<usize>,
    /// The selected probes as a feature set.
    pub feature_set: FeatureSet,
}

/// Runs the §6.3 funnel over candidate data.
///
/// `candidates` must be the feature set that produced `data`'s columns.
pub fn preprocess(
    candidates: &FeatureSet,
    data: &TrainingSet,
    config: PreprocessConfig,
) -> Result<PreprocessReport, PolygraphError> {
    if data.width() != candidates.len() {
        return Err(PolygraphError::FeatureWidthMismatch {
            got: data.width(),
            expected: candidates.len(),
        });
    }
    if data.is_empty() {
        return Err(PolygraphError::BadTrainingSet(
            "no rows to preprocess".into(),
        ));
    }

    let n_features = candidates.len();

    // Pass 1: constants.
    let mut constant_features = Vec::new();
    let mut is_constant = vec![false; n_features];
    for f in 0..n_features {
        let first = data.rows()[0][f];
        if data.rows().iter().all(|r| r[f] == first) {
            constant_features.push(f);
            is_constant[f] = true;
        }
    }

    // Overall std per feature (used by the pass-3 ranking).
    let n = data.len() as f64;
    let stds: Vec<f64> = (0..n_features)
        .map(|f| {
            let mean: f64 = data.rows().iter().map(|r| r[f]).sum::<f64>() / n;
            let var: f64 = data
                .rows()
                .iter()
                .map(|r| (r[f] - mean) * (r[f] - mean))
                .sum::<f64>()
                / n;
            var.sqrt()
        })
        .collect();

    // Pass 2: configuration sensitivity — per user-agent group, how far do
    // deviants sit from the group's modal value, relative to that value?
    //
    // A configuration switch moves a handful of *related* interfaces
    // (disabling Service Workers zeroes the ServiceWorker* family); a
    // lying browser disagrees with its group across hundreds of columns at
    // once. Rows deviating that broadly are anomalies for the Isolation
    // Forest and the detector — not evidence about a feature's
    // configuration sensitivity — so they are excluded here. The pass only
    // applies to deviation-based columns: the paper adjusted "particularly
    // the deviation-based attributes" for configuration effects, while the
    // time-based probes were filtered for constancy alone (§6.3).
    let mut groups: HashMap<_, Vec<usize>> = HashMap::new();
    for (i, ua) in data.user_agents().iter().enumerate() {
        groups.entry(*ua).or_default().push(i);
    }
    let big_groups: Vec<&Vec<usize>> = groups
        .values()
        .filter(|g| g.len() >= config.min_group)
        .collect();

    let mut config_sensitive = Vec::new();
    let mut is_config_sensitive = vec![false; n_features];
    if !big_groups.is_empty() {
        // Step A: modal value per (group, feature).
        let mut modes: Vec<Vec<f64>> = Vec::with_capacity(big_groups.len());
        for g in &big_groups {
            let mut group_modes = Vec::with_capacity(n_features);
            for f in 0..n_features {
                let mut counts: HashMap<u64, (f64, usize)> = HashMap::new();
                for &i in g.iter() {
                    let v = data.rows()[i][f];
                    let e = counts.entry(v.to_bits()).or_insert((v, 0));
                    e.1 += 1;
                }
                let (mode, _) = counts
                    .values()
                    .max_by_key(|(_, c)| *c)
                    .copied()
                    .expect("non-empty group");
                group_modes.push(mode);
            }
            modes.push(group_modes);
        }

        // Step B: whole-row anomalies (fraud browsers, Tor, mid-update
        // skew) deviate from their group mode on a large share of columns.
        let breadth_limit = (n_features as f64 * 0.15).ceil() as usize;
        let mut anomalous = vec![false; data.len()];
        for (gi, g) in big_groups.iter().enumerate() {
            for &i in g.iter() {
                let breadth = (0..n_features)
                    .filter(|&f| data.rows()[i][f] != modes[gi][f])
                    .count();
                if breadth > breadth_limit {
                    anomalous[i] = true;
                }
            }
        }

        // Step C: per deviation feature, the relative deviation of the
        // remaining (configuration-driven) deviants.
        let deviation_cols: std::collections::HashSet<usize> = candidates
            .indices_of_kind(FeatureKind::DeviationBased)
            .into_iter()
            .collect();
        for f in 0..n_features {
            if is_constant[f] || !deviation_cols.contains(&f) {
                continue;
            }
            let mut rel_deviations: Vec<f64> = Vec::new();
            for (gi, g) in big_groups.iter().enumerate() {
                let mode = modes[gi][f];
                let max_dev = g
                    .iter()
                    .filter(|&&i| !anomalous[i])
                    .map(|&i| (data.rows()[i][f] - mode).abs())
                    .fold(0.0f64, f64::max);
                if max_dev > 0.0 {
                    rel_deviations.push(max_dev / mode.abs().max(1.0));
                }
            }
            if rel_deviations.is_empty() {
                continue;
            }
            let frac = rel_deviations.len() as f64 / big_groups.len() as f64;
            rel_deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = rel_deviations[rel_deviations.len() / 2];
            if frac >= config.min_disagreeing_fraction
                && median >= config.relative_deviation_threshold
            {
                config_sensitive.push(f);
                is_config_sensitive[f] = true;
            }
        }
    }

    // Pass 3: rank surviving deviation features by standard deviation,
    // optionally replaying the paper's manual curation.
    let names = candidates.names();
    let mut deviation_survivors: Vec<(usize, f64)> = candidates
        .indices_of_kind(FeatureKind::DeviationBased)
        .into_iter()
        .filter(|&f| !is_constant[f] && !is_config_sensitive[f])
        .filter(|&f| {
            !config.manual_review
                || TABLE8_PROTOTYPES.iter().any(|p| {
                    names[f] == format!("Object.getOwnPropertyNames({p}.prototype).length")
                })
        })
        .map(|f| (f, stds[f]))
        .collect();
    deviation_survivors.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite std")
            .then(a.0.cmp(&b.0))
    });
    deviation_survivors.truncate(config.keep_deviation);
    // Restore candidate order within the block (Table 8 lists features in
    // candidate order, not ranked order).
    let mut selected: Vec<usize> = deviation_survivors.into_iter().map(|(f, _)| f).collect();
    selected.sort_unstable();

    let time_survivors: Vec<usize> = candidates
        .indices_of_kind(FeatureKind::TimeBased)
        .into_iter()
        .filter(|&f| !is_constant[f] && !is_config_sensitive[f])
        .collect();
    selected.extend(time_survivors);

    let feature_set = candidates.subset(&selected);
    Ok(PreprocessReport {
        constant_features,
        config_sensitive,
        selected,
        feature_set,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::catalog::legitimate_releases;
    use browser_engine::{BrowserInstance, Perturbation, UserAgent, Vendor};
    use fingerprint::FeatureSet;

    /// A small candidate-stage dataset: each catalogued release observed
    /// several times, with realistic configuration noise mixed in.
    fn candidate_data(candidates: &FeatureSet) -> TrainingSet {
        let mut set = TrainingSet::new(candidates.len());
        for (i, release) in legitimate_releases().into_iter().enumerate() {
            for copy in 0..4 {
                let mut b = BrowserInstance::genuine(release.ua);
                match (copy, i % 3) {
                    // One copy per third release disables privacy surfaces.
                    (0, 0) => {
                        b = b
                            .perturbed(Perturbation::FirefoxDisableServiceWorkers)
                            .perturbed(Perturbation::DisableWebRtc);
                    }
                    // One copy per third release runs a benign extension.
                    (1, 1) => {
                        b = b.perturbed(Perturbation::ChromeExtensionDuckDuckGo);
                    }
                    _ => {}
                }
                set.push(candidates.extract(&b).as_f64(), release.ua)
                    .unwrap();
            }
        }
        set
    }

    fn test_config(manual: bool) -> PreprocessConfig {
        PreprocessConfig {
            min_group: 4,
            manual_review: manual,
            ..Default::default()
        }
    }

    #[test]
    fn canonical_funnel_lands_exactly_on_table8() {
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(true)).unwrap();
        assert_eq!(report.feature_set.names(), FeatureSet::table8().names());
    }

    #[test]
    fn automated_funnel_lands_on_28_features() {
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(false)).unwrap();
        assert_eq!(report.feature_set.len(), 28, "22 deviation + 6 time-based");
        assert_eq!(
            report
                .feature_set
                .indices_of_kind(FeatureKind::DeviationBased)
                .len(),
            22
        );
        assert_eq!(
            report
                .feature_set
                .indices_of_kind(FeatureKind::TimeBased)
                .len(),
            6
        );
    }

    #[test]
    fn automated_funnel_overlaps_manual_outcome_on_big_movers() {
        // Without the manual-review replay, the automated ranking must
        // still pick up the high-deviation Table 8 prototypes.
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(false)).unwrap();
        let got = report.feature_set.names();
        for big in [
            "Element",
            "Document",
            "HTMLElement",
            "WebGL2RenderingContext",
        ] {
            let expr = format!("Object.getOwnPropertyNames({big}.prototype).length");
            assert!(got.contains(&expr), "{big} must survive automated ranking");
        }
    }

    #[test]
    fn constants_are_detected() {
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(true)).unwrap();
        // The stale BrowserPrint probes and absent/constant prototypes are
        // a large block — the paper found 186 single-valued features.
        assert!(
            report.constant_features.len() > 150,
            "expected a large constant block, got {}",
            report.constant_features.len()
        );
    }

    #[test]
    fn zeroing_configs_are_dropped_but_small_shifts_tolerated() {
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(true)).unwrap();
        let names = candidates.names();
        // ServiceWorker*/RTC* are zeroed by privacy configs -> dropped.
        for proto in ["ServiceWorkerRegistration", "RTCPeerConnection"] {
            let idx = names
                .iter()
                .position(|n| n.contains(&format!("({proto}.")))
                .unwrap();
            assert!(
                report.config_sensitive.contains(&idx),
                "{proto} must be flagged config-sensitive"
            );
            assert!(!report.selected.contains(&idx));
        }
        // Element only shifts by ±2 under extensions -> kept.
        let element_idx = names
            .iter()
            .position(|n| n == "Object.getOwnPropertyNames(Element.prototype).length")
            .unwrap();
        assert!(!report.config_sensitive.contains(&element_idx));
        assert!(report.selected.contains(&element_idx));
    }

    #[test]
    fn width_mismatch_rejected() {
        let candidates = FeatureSet::candidates_513();
        let bad = TrainingSet::from_rows(
            vec![vec![1.0, 2.0]],
            vec![UserAgent::new(Vendor::Chrome, 100)],
        )
        .unwrap();
        assert!(preprocess(&candidates, &bad, PreprocessConfig::default()).is_err());
    }

    #[test]
    fn selected_indices_are_sorted_within_deviation_block() {
        let candidates = FeatureSet::candidates_513();
        let data = candidate_data(&candidates);
        let report = preprocess(&candidates, &data, test_config(true)).unwrap();
        let dev_block = &report.selected[..22];
        let mut sorted = dev_block.to_vec();
        sorted.sort_unstable();
        assert_eq!(dev_block, &sorted[..]);
    }
}
