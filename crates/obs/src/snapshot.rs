//! Point-in-time metric snapshots and their two stable renderings.
//!
//! Both renderings iterate `BTreeMap`s, so for identical recorded values
//! the output is byte-identical across runs, platforms, and hash seeds —
//! the property the golden-file test (`results/obs_exposition.txt`) and
//! the `cargo xtask lint` POLY-D rules enforce.
//!
//! Text exposition, one line per metric:
//!
//! ```text
//! # polygraph-obs exposition v1
//! counter server.frames.assessed 200
//! gauge pool.width 8
//! histogram server.assess.batch_micros count 200 sum 1400 buckets 0,0,0,200,0,…
//! ```
//!
//! Histogram bucket lists always carry all [`BUCKETS`] entries (bounds
//! `2^0..2^20` µs, then overflow), so the shape never depends on the
//! observed values.

use crate::metrics::{bucket_bound, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts, in bound order (overflow last).
    pub buckets: [u64; BUCKETS],
}

/// Frozen state of a whole registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The stable text exposition.
    pub fn render_text(&self) -> String {
        let mut out = String::from("# polygraph-obs exposition v1\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "histogram {name} count {} sum {} buckets ",
                h.count, h.sum
            );
            for (i, c) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push('\n');
        }
        out
    }

    /// The stable JSON rendering (object keys in name order, histogram
    /// buckets as `[bound-or-null, count]` pairs in bound order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum
            );
            for (b, c) in h.buckets.iter().enumerate() {
                if b > 0 {
                    out.push(',');
                }
                match bucket_bound(b) {
                    Some(bound) => {
                        let _ = write!(out, "[{bound},{c}]");
                    }
                    None => {
                        let _ = write!(out, "[null,{c}]");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a rendered text exposition back into a snapshot. The
    /// inverse of [`Snapshot::render_text`] for well-formed input; used
    /// by clients consuming `STATS` responses and by the golden-file
    /// test. Unrecognised lines are skipped rather than fatal so the
    /// format can grow new line kinds compatibly.
    pub fn parse_text(text: &str) -> Snapshot {
        let mut snap = Snapshot::default();
        for line in text.lines() {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("counter") => {
                    if let (Some(name), Some(v)) = (parts.next(), parts.next()) {
                        if let Ok(v) = v.parse() {
                            snap.counters.insert(name.to_string(), v);
                        }
                    }
                }
                Some("gauge") => {
                    if let (Some(name), Some(v)) = (parts.next(), parts.next()) {
                        if let Ok(v) = v.parse() {
                            snap.gauges.insert(name.to_string(), v);
                        }
                    }
                }
                Some("histogram") => {
                    let fields: Vec<&str> = parts.collect();
                    if let [name, "count", count, "sum", sum, "buckets", list] = fields.as_slice() {
                        let (Ok(count), Ok(sum)) = (count.parse(), sum.parse()) else {
                            continue;
                        };
                        let mut buckets = [0u64; BUCKETS];
                        let parsed: Vec<u64> =
                            list.split(',').filter_map(|c| c.parse().ok()).collect();
                        if parsed.len() != BUCKETS {
                            continue;
                        }
                        for (dst, src) in buckets.iter_mut().zip(&parsed) {
                            *dst = *src;
                        }
                        snap.histograms.insert(
                            name.to_string(),
                            HistogramSnapshot {
                                count,
                                sum,
                                buckets,
                            },
                        );
                    }
                }
                _ => {}
            }
        }
        snap
    }

    /// Parses a rendered JSON snapshot back into a `Snapshot` — the
    /// inverse of [`Snapshot::render_json`], used by clients consuming
    /// `STATS` responses. Returns `None` on malformed input. Unknown
    /// top-level keys are skipped so the format can grow compatibly.
    pub fn parse_json(json: &str) -> Option<Snapshot> {
        let mut p = JsonCursor::new(json);
        let mut snap = Snapshot::default();
        p.ws();
        p.eat(b'{')?;
        loop {
            p.ws();
            if p.eat(b'}').is_some() {
                break;
            }
            let key = p.string()?;
            p.ws();
            p.eat(b':')?;
            p.ws();
            match key.as_str() {
                "counters" => {
                    p.object(|p, name| {
                        let v = p.uint()?;
                        snap.counters.insert(name, v);
                        Some(())
                    })?;
                }
                "gauges" => {
                    p.object(|p, name| {
                        let v = p.int()?;
                        snap.gauges.insert(name, v);
                        Some(())
                    })?;
                }
                "histograms" => {
                    p.object(|p, name| {
                        let h = parse_histogram(p)?;
                        snap.histograms.insert(name, h);
                        Some(())
                    })?;
                }
                _ => p.skip_value()?,
            }
            p.ws();
            if p.eat(b',').is_some() {
                continue;
            }
            p.eat(b'}')?;
            break;
        }
        Some(snap)
    }
}

fn parse_histogram(p: &mut JsonCursor<'_>) -> Option<HistogramSnapshot> {
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut buckets = [0u64; BUCKETS];
    p.eat(b'{')?;
    loop {
        p.ws();
        if p.eat(b'}').is_some() {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.eat(b':')?;
        p.ws();
        match key.as_str() {
            "count" => count = p.uint()?,
            "sum" => sum = p.uint()?,
            "buckets" => {
                p.eat(b'[')?;
                let mut i = 0usize;
                loop {
                    p.ws();
                    if p.eat(b']').is_some() {
                        break;
                    }
                    // Each entry is `[bound-or-null, count]`.
                    p.eat(b'[')?;
                    p.ws();
                    if !p.eat_keyword("null") {
                        p.uint()?;
                    }
                    p.ws();
                    p.eat(b',')?;
                    p.ws();
                    let c = p.uint()?;
                    p.ws();
                    p.eat(b']')?;
                    if let Some(slot) = buckets.get_mut(i) {
                        *slot = c;
                    }
                    i += 1;
                    p.ws();
                    if p.eat(b',').is_some() {
                        continue;
                    }
                    p.eat(b']')?;
                    break;
                }
            }
            _ => p.skip_value()?,
        }
        p.ws();
        if p.eat(b',').is_some() {
            continue;
        }
        p.eat(b'}')?;
        break;
    }
    Some(HistogramSnapshot {
        count,
        sum,
        buckets,
    })
}

/// A minimal cursor over the subset of JSON [`Snapshot::render_json`]
/// emits (objects, arrays, strings, integers, `null`), kept here so the
/// crate stays dependency-free.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes.get(self.pos..self.pos + kw.len()) == Some(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(self.bytes.get(self.pos..)?).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn uint(&mut self) -> Option<u64> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(self.bytes.get(start..self.pos)?)
            .ok()?
            .parse()
            .ok()
    }

    fn int(&mut self) -> Option<i64> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(self.bytes.get(start..self.pos)?)
            .ok()?
            .parse()
            .ok()
    }

    /// Walks the `name: value` pairs of an object, invoking `entry` for
    /// each.
    fn object(&mut self, mut entry: impl FnMut(&mut Self, String) -> Option<()>) -> Option<()> {
        self.eat(b'{')?;
        loop {
            self.ws();
            if self.eat(b'}').is_some() {
                return Some(());
            }
            let name = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            entry(self, name)?;
            self.ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(());
        }
    }

    /// Skips any well-formed value (forward compatibility with new keys).
    fn skip_value(&mut self) -> Option<()> {
        self.ws();
        match self.peek()? {
            b'"' => {
                self.string()?;
            }
            b'{' => {
                self.object(|p, _| p.skip_value())?;
            }
            b'[' => {
                self.eat(b'[')?;
                loop {
                    self.ws();
                    if self.eat(b']').is_some() {
                        break;
                    }
                    self.skip_value()?;
                    self.ws();
                    if self.eat(b',').is_some() {
                        continue;
                    }
                    self.eat(b']')?;
                    break;
                }
            }
            _ => {
                if !(self.eat_keyword("null")
                    || self.eat_keyword("true")
                    || self.eat_keyword("false"))
                {
                    self.int()?;
                }
            }
        }
        Some(())
    }
}

/// Minimal JSON string encoder. Registry names are pre-sanitized to
/// `[a-z0-9_.]`, but escape defensively so the renderer is total.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("b.requests".into(), 3);
        snap.counters.insert("a.requests".into(), 1);
        snap.gauges.insert("width".into(), -2);
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = 2;
        snap.histograms.insert(
            "latency_micros".into(),
            HistogramSnapshot {
                count: 2,
                sum: 11,
                buckets,
            },
        );
        snap
    }

    #[test]
    fn text_is_sorted_and_stable() {
        let text = sample().render_text();
        let again = sample().render_text();
        assert_eq!(text, again);
        let a = text.find("counter a.requests 1").unwrap();
        let b = text.find("counter b.requests 3").unwrap();
        assert!(a < b, "names must render in sorted order");
        assert!(text.contains("histogram latency_micros count 2 sum 11 buckets "));
        // All BUCKETS entries present.
        let bucket_line = text.lines().find(|l| l.starts_with("histogram")).unwrap();
        let list = bucket_line.rsplit(' ').next().unwrap();
        assert_eq!(list.split(',').count(), BUCKETS);
    }

    #[test]
    fn text_round_trips_through_parse() {
        let snap = sample();
        assert_eq!(Snapshot::parse_text(&snap.render_text()), snap);
    }

    #[test]
    fn json_shape() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"counters\":{\"a.requests\":1,\"b.requests\":3}"));
        assert!(json.contains("\"gauges\":{\"width\":-2}"));
        assert!(json.contains(
            "\"latency_micros\":{\"count\":2,\"sum\":11,\"buckets\":[[1,0],[2,0],[4,0],[8,2],"
        ));
        assert!(json.ends_with("[null,0]]}}}"));
    }

    #[test]
    fn json_round_trips_through_parse() {
        let snap = sample();
        assert_eq!(Snapshot::parse_json(&snap.render_json()), Some(snap));
        assert_eq!(
            Snapshot::parse_json("{\"counters\":{},\"gauges\":{},\"histograms\":{}}"),
            Some(Snapshot::default())
        );
    }

    #[test]
    fn parse_json_rejects_malformed_and_skips_unknown_keys() {
        assert_eq!(Snapshot::parse_json("{\"counters\":{"), None);
        assert_eq!(Snapshot::parse_json("not json"), None);
        // Unknown top-level keys are skipped, known ones still parse.
        let grown = "{\"meta\":{\"v\":[1,null,\"x\"]},\"counters\":{\"a\":7},\"gauges\":{},\"histograms\":{}}";
        let snap = Snapshot::parse_json(grown).unwrap();
        assert_eq!(snap.counters.get("a"), Some(&7));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Snapshot::default();
        assert_eq!(snap.render_text(), "# polygraph-obs exposition v1\n");
        assert_eq!(
            snap.render_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
