//! Fixture: key-determinism-clean code — a fixed FNV-1a hash and an
//! ordered map, both reproducible in every process.

use std::collections::BTreeMap;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn keyed(frames: &[&[u8]]) -> BTreeMap<u64, usize> {
    frames
        .iter()
        .enumerate()
        .map(|(i, f)| (fnv1a64(f), i))
        .collect()
}
