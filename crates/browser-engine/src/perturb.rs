//! Configuration perturbations: why identical browsers disagree.
//!
//! The paper's pre-processing stage (§6.3) traces inconsistent feature
//! values among *identical* browser versions to user configuration:
//! Firefox `about:config` switches, Chrome extensions, Chromium forks such
//! as Brave, and the Tor Browser. This module models each named example so
//! the pipeline has the same noise to contend with — and the same reason
//! to drop config-sensitive features.

use crate::engine::EngineFamily;
use crate::protodb::shape_class;
use crate::protodb::ShapeClass;
use serde::{Deserialize, Serialize};

/// A modification a user (or a derivative product) applies on top of a
/// stock engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Perturbation {
    /// Firefox `dom.serviceWorkers.enabled = false`: zeroes every
    /// `ServiceWorker*` interface (the paper's first example).
    FirefoxDisableServiceWorkers,
    /// Firefox `dom.element.transform-getters.enabled` toggled: shifts
    /// properties exposed through `Element` (the paper's second example).
    FirefoxTransformGetters,
    /// The DuckDuckGo Chrome extension: adds two custom properties to
    /// `Element` (the paper's measured example — "+2 on one feature").
    ChromeExtensionDuckDuckGo,
    /// A generic WebRTC-blocking configuration: zeroes `RTC*` interfaces.
    DisableWebRtc,
    /// Brave's fingerprinting shields: small deltas on a few interfaces
    /// while the UA still claims plain Chrome (§6.3 "Brave").
    BraveShields,
    /// Brave's *aggressive* shield level: heavier API trimming that can
    /// push the shape a whole release-era over — a benign source of
    /// flagged sessions.
    BraveAggressiveShields,
    /// Tor Browser patches on top of an (older) Gecko: aggressive API
    /// removal while the UA claims the current Firefox ESR (§6.3 "Tor").
    TorPatches,
    /// A staged Blink field-trial arm: Chrome rolls some shape changes out
    /// gradually, so a slice of a release's population reports shifted
    /// counts (models the Chrome 119 accuracy dip of Table 6).
    BlinkFieldTrial,
    /// One of the long tail of browser extensions that add properties to
    /// DOM prototypes (password managers, ad blockers, accessibility
    /// tools). Each `seed` stands for a different extension, bumping one
    /// or two interfaces by a couple of properties — the population-level
    /// diversity behind the paper's anonymity-set histogram (Figure 5).
    MiscExtension {
        /// Which extension of the tail this is.
        seed: u8,
    },
    /// A category-1 fraud product's home-grown spoofing layer: shifts many
    /// prototype counts by product-specific pseudo-random deltas, yielding
    /// a fingerprint that matches *no* legitimate browser (§2.3, Cat. 1).
    /// The seed distinguishes products (Linken Sphere vs ClonBrowser).
    FingerprintDistortion {
        /// Product-specific distortion seed.
        seed: u8,
    },
}

impl Perturbation {
    /// Whether this perturbation can occur on the given engine family.
    pub fn applies_to(self, family: EngineFamily) -> bool {
        match self {
            Perturbation::FirefoxDisableServiceWorkers | Perturbation::FirefoxTransformGetters => {
                family == EngineFamily::Gecko
            }
            Perturbation::ChromeExtensionDuckDuckGo
            | Perturbation::BraveShields
            | Perturbation::BraveAggressiveShields
            | Perturbation::BlinkFieldTrial => family == EngineFamily::Blink,
            Perturbation::DisableWebRtc => family != EngineFamily::EdgeHtml,
            Perturbation::TorPatches => family == EngineFamily::Gecko,
            Perturbation::MiscExtension { .. } => family != EngineFamily::EdgeHtml,
            Perturbation::FingerprintDistortion { .. } => true,
        }
    }

    /// The delta this perturbation applies to `proto`'s own-property count.
    ///
    /// `Zero` forces the count to 0 (interface removed); `Add` shifts it
    /// (clamped at zero by the caller).
    pub fn count_effect(self, proto: &str) -> CountEffect {
        use CountEffect::*;
        match self {
            Perturbation::FirefoxDisableServiceWorkers => {
                if proto.starts_with("ServiceWorker") {
                    Zero
                } else {
                    Add(0)
                }
            }
            Perturbation::FirefoxTransformGetters => match proto {
                "Element" => Add(-3),
                _ => Add(0),
            },
            Perturbation::ChromeExtensionDuckDuckGo => match proto {
                "Element" => Add(2),
                _ => Add(0),
            },
            Perturbation::DisableWebRtc => {
                if proto.starts_with("RTC") {
                    Zero
                } else {
                    Add(0)
                }
            }
            Perturbation::BraveShields => match proto {
                "Element" => Add(-4),
                "Navigator" => Add(-2),
                "CanvasRenderingContext2D" => Add(-1),
                _ => Add(0),
            },
            Perturbation::BraveAggressiveShields => match proto {
                "Element" => Add(-12),
                "Document" => Add(-7),
                "HTMLElement" => Add(-5),
                "SVGElement" => Add(-4),
                "CanvasRenderingContext2D" => Add(-3),
                "WebGL2RenderingContext" => Add(-6),
                "Navigator" => Add(-3),
                _ => Add(0),
            },
            Perturbation::TorPatches => {
                // Tor strips every config-sensitive surface and trims
                // fingerprinting-prone interfaces.
                if shape_class(proto) == ShapeClass::ConfigSensitive {
                    Zero
                } else {
                    match proto {
                        "Element" => Add(-6),
                        "Navigator" => Add(-5),
                        "CanvasRenderingContext2D" => Add(-4),
                        "WebGLRenderingContext" | "WebGL2RenderingContext" => Add(-8),
                        _ => Add(0),
                    }
                }
            }
            Perturbation::BlinkFieldTrial => match proto {
                // Mid-rollout shape churn on the hot interfaces.
                "Element" => Add(-9),
                "Document" => Add(-5),
                "HTMLElement" => Add(-4),
                "SVGElement" => Add(-3),
                _ => Add(0),
            },
            Perturbation::MiscExtension { seed } => {
                // Each extension touches one or two of the commonly
                // content-scripted interfaces by +1..+3 properties.
                const TOUCHABLE: [&str; 8] = [
                    "Element",
                    "Document",
                    "HTMLElement",
                    "HTMLInputElement",
                    "HTMLMediaElement",
                    "CanvasRenderingContext2D",
                    "ShadowRoot",
                    "Range",
                ];
                let h = crate::protodb::fnv1a_pair(seed as u64, 0xE87);
                let first = (h % 8) as usize;
                let second = ((h >> 8) % 8) as usize;
                let delta1 = 1 + (h >> 16) % 3;
                let delta2 = (h >> 24) % 2; // often zero: single-surface extensions
                if proto == TOUCHABLE[first] {
                    Add(delta1 as i32)
                } else if proto == TOUCHABLE[second] && second != first {
                    Add(delta2 as i32)
                } else {
                    Add(0)
                }
            }
            Perturbation::FingerprintDistortion { seed } => {
                // Product-specific pseudo-random shift in -3..=3 per
                // prototype; across the 22 deviation features this lands
                // the fingerprint between the legitimate shapes.
                let h = crate::protodb::fnv1a_pair(
                    crate::protodb::fnv1a(proto.as_bytes()),
                    seed as u64,
                );
                Add((h % 7) as i32 - 3)
            }
        }
    }
}

/// Effect of a perturbation on one prototype's count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountEffect {
    /// Remove the interface entirely.
    Zero,
    /// Shift the count by a signed delta.
    Add(i32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_worker_disable_zeroes_sw_interfaces() {
        let p = Perturbation::FirefoxDisableServiceWorkers;
        assert_eq!(
            p.count_effect("ServiceWorkerRegistration"),
            CountEffect::Zero
        );
        assert_eq!(p.count_effect("ServiceWorkerContainer"), CountEffect::Zero);
        assert_eq!(p.count_effect("Element"), CountEffect::Add(0));
    }

    #[test]
    fn duckduckgo_adds_two_to_element() {
        let p = Perturbation::ChromeExtensionDuckDuckGo;
        assert_eq!(p.count_effect("Element"), CountEffect::Add(2));
        assert_eq!(p.count_effect("Document"), CountEffect::Add(0));
    }

    #[test]
    fn family_applicability() {
        use EngineFamily::*;
        assert!(Perturbation::FirefoxDisableServiceWorkers.applies_to(Gecko));
        assert!(!Perturbation::FirefoxDisableServiceWorkers.applies_to(Blink));
        assert!(Perturbation::ChromeExtensionDuckDuckGo.applies_to(Blink));
        assert!(!Perturbation::ChromeExtensionDuckDuckGo.applies_to(Gecko));
        assert!(Perturbation::DisableWebRtc.applies_to(Blink));
        assert!(Perturbation::DisableWebRtc.applies_to(Gecko));
        assert!(!Perturbation::DisableWebRtc.applies_to(EdgeHtml));
    }

    #[test]
    fn tor_zeroes_config_sensitive_surfaces() {
        let p = Perturbation::TorPatches;
        assert_eq!(p.count_effect("RTCPeerConnection"), CountEffect::Zero);
        assert_eq!(p.count_effect("PushManager"), CountEffect::Zero);
        assert_eq!(p.count_effect("Element"), CountEffect::Add(-6));
    }

    #[test]
    fn brave_shields_touch_few_features() {
        let p = Perturbation::BraveShields;
        let touched = crate::protodb::DEVIATION_PROTOTYPES
            .iter()
            .filter(|proto| p.count_effect(proto) != CountEffect::Add(0))
            .count();
        assert!(
            touched <= 4,
            "Brave must stay a *small* deviation, touched {touched}"
        );
    }
}
