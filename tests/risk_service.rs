//! Integration: the deployed stack — risk service, policy, registry and
//! orchestrator — over a paper-scale model and live TCP.

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{BrowserInstance, Engine, UserAgent, Vendor};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::fraud::{scan_markers, FraudProfile};
use browser_polygraph::service::{
    start_risk_server, AuthAction, ModelRegistry, Orchestrator, OrchestratorConfig, RetrainOutcome,
    RiskClient, RiskPolicy, VerdictStatus,
};
use browser_polygraph::traffic::{generate, TrafficConfig};

const SESSIONS: usize = 15_000;

fn spring_model() -> (FeatureSet, TrainedModel) {
    let features = FeatureSet::table8();
    let data = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(SESSIONS),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model =
        TrainedModel::fit(features.clone(), &training, TrainConfig::default()).expect("train");
    (features, model)
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir = std::env::temp_dir().join(format!(
        "polygraph-it-registry-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ModelRegistry::open(&dir).expect("registry")
}

#[test]
fn service_policy_separates_login_attempts() {
    let (features, model) = spring_model();
    let server = start_risk_server("127.0.0.1:0", Detector::new(model)).expect("bind");
    let mut client = RiskClient::connect(server.local_addr()).expect("connect");
    let policy = RiskPolicy::default();

    // Genuine browsers pass.
    for ua in [
        UserAgent::new(Vendor::Chrome, 112),
        UserAgent::new(Vendor::Firefox, 105),
    ] {
        let verdict = client
            .assess_browser(&features, &BrowserInstance::genuine(ua))
            .expect("assess");
        assert_eq!(verdict.status, VerdictStatus::Assessed);
        assert_eq!(policy.decide(&verdict), AuthAction::Allow, "{}", ua.label());
    }

    // A cross-vendor lie is denied.
    let fraud =
        BrowserInstance::with_engine(Engine::blink(108), UserAgent::new(Vendor::Firefox, 108));
    let verdict = client.assess_browser(&features, &fraud).expect("assess");
    assert!(verdict.flagged);
    assert_eq!(policy.decide(&verdict), AuthAction::Deny);

    // A deep same-vendor version lie at least steps up.
    let stale =
        BrowserInstance::with_engine(Engine::blink(75), UserAgent::new(Vendor::Chrome, 112));
    let verdict = client.assess_browser(&features, &stale).expect("assess");
    assert!(verdict.flagged);
    assert!(policy.decide(&verdict) >= AuthAction::StepUp);

    drop(client);
    server.shutdown();
}

#[test]
fn orchestrator_handles_the_autumn_drift_live() {
    let (features, model) = spring_model();
    let registry = temp_registry("autumn");
    registry.publish(&model).expect("publish spring model");
    let server = start_risk_server("127.0.0.1:0", Detector::new(model)).expect("bind");

    // Before the swap: genuine Firefox 119 trips the (stale) spring model.
    let mut client = RiskClient::connect(server.local_addr()).expect("connect");
    let fx119 = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 119));
    let before = client.assess_browser(&features, &fx119).expect("assess");
    assert!(
        before.flagged,
        "spring model mistakes the Firefox 119 overhaul for a lie"
    );

    // Autumn checkpoint: drift -> retrain -> publish -> hot swap.
    let autumn = generate(
        &features,
        &TrafficConfig::drift_window().with_sessions(SESSIONS),
    );
    let (rows, uas) = autumn.rows_and_user_agents();
    let fresh = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let mut orchestrator = Orchestrator::new(&server, registry, OrchestratorConfig::default());
    let releases = [
        UserAgent::new(Vendor::Chrome, 119),
        UserAgent::new(Vendor::Firefox, 119),
        UserAgent::new(Vendor::Edge, 119),
    ];
    let outcome = orchestrator
        .checkpoint(&fresh, &releases)
        .expect("checkpoint");
    let version = match outcome {
        RetrainOutcome::Retrained {
            triggers,
            version,
            accuracy,
        } => {
            assert!(
                triggers.contains(&UserAgent::new(Vendor::Firefox, 119)),
                "Firefox 119 drives the retrain, got {triggers:?}"
            );
            assert!(accuracy > 0.98);
            version
        }
        other => panic!("expected a retrain, got {other:?}"),
    };
    assert_eq!(
        orchestrator.registry().latest_version().expect("io"),
        Some(version)
    );

    // Same connection, new model: Firefox 119 passes, fraud still fails.
    let after = client.assess_browser(&features, &fx119).expect("assess");
    assert!(!after.flagged, "retrained model knows Firefox 119");
    let fraud =
        BrowserInstance::with_engine(Engine::blink(110), UserAgent::new(Vendor::Firefox, 117));
    assert!(
        client
            .assess_browser(&features, &fraud)
            .expect("assess")
            .flagged
    );

    // The published model reloads into an equivalent detector.
    let reloaded = orchestrator.registry().load(version).expect("reload");
    let detector = Detector::new(reloaded);
    let fp = features.extract(&fx119);
    assert!(
        !detector
            .assess(&fp.as_f64(), fx119.claimed_user_agent())
            .expect("assess")
            .flagged
    );

    drop(client);
    server.shutdown();
}

#[test]
fn markers_catch_what_clustering_cannot() {
    let (features, model) = spring_model();
    let detector = Detector::new(model);

    // AdsPower (category 3) swaps engines: the fingerprint looks genuine.
    let ads = browser_polygraph::fraud::catalog::product_by_name("AdsPower").expect("catalogued");
    let instance = FraudProfile::new(ads, UserAgent::new(Vendor::Firefox, 110))
        .instantiate()
        .polluted("adspower_helper");
    let verdict = detector.assess_browser(&instance).expect("assess");
    assert!(
        !verdict.flagged,
        "category 3 beats coarse-grained clustering (by design)"
    );

    // ... but the §8 software-marker scan names the product.
    let hits = scan_markers(&instance);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].marker.product, "AdsPower");

    // Genuine browsers trip neither.
    let genuine = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    assert!(!detector.assess_browser(&genuine).expect("assess").flagged);
    assert!(scan_markers(&genuine).is_empty());
    let _ = features;
}
