//! Bad fixture: a fleet router that breaks the fleet zone disciplines —
//! ambient hashing for ring placement and a wall-clock read on the
//! routing path (determinism), a socket write under the ring guard, and
//! a Relaxed publish of a node's rollout model version (concurrency).
use std::collections::HashMap;

pub fn build_ring(nodes: usize) -> HashMap<u64, usize> {
    let started = Instant::now();
    let mut ring = HashMap::new();
    ring.insert(started.elapsed().as_nanos() as u64, nodes);
    ring
}

pub fn failover_write(ring: &RwLock<Ring>, stream: &mut TcpStream, frame: &[u8]) {
    let guard = ring.read();
    stream.write_all(frame);
    guard.route(0);
}

pub fn publish_node_version(version: &AtomicU64) {
    version.store(2, Ordering::Relaxed);
}
