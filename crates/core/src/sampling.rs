//! Stratified sampling for oversized training sets (§8, "Scale of the
//! database").
//!
//! When the collected dataset outgrows what retraining can chew through,
//! the paper proposes stratified sampling: shrink the data while keeping
//! every stratum — here, every user-agent — represented. Uniform
//! subsampling would do the opposite: the sparse old browsers that already
//! need lab alignment (Edge 17, the enterprise pins) would vanish first.
//!
//! [`stratified_sample`] keeps a fixed fraction of each user-agent's
//! sessions but never fewer than `min_per_stratum` (or the stratum's full
//! size, if smaller) — so a 10× reduction of the bulk leaves the rare
//! strata untouched.
//!
//! [`ReservoirWindow`] is the streaming counterpart: Vitter's Algorithm R
//! over the live serving traffic, so the retrain window is a uniform
//! sample of everything seen since the last promotion without ever
//! holding more than `capacity` sessions.

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use browser_engine::UserAgent;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;
use std::collections::HashMap;

/// Configuration for [`stratified_sample`].
#[derive(Debug, Clone, Copy)]
pub struct StratifiedConfig {
    /// Fraction of each stratum to keep (0, 1].
    pub fraction: f64,
    /// Keep at least this many sessions per user-agent (clamped to the
    /// stratum size).
    pub min_per_stratum: usize,
    /// RNG seed for the within-stratum choice.
    pub seed: u64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        Self {
            fraction: 0.1,
            min_per_stratum: 200,
            seed: 0x57A7,
        }
    }
}

/// Draws a stratified subsample of `data`, stratified by user-agent.
pub fn stratified_sample(
    data: &TrainingSet,
    config: StratifiedConfig,
) -> Result<TrainingSet, PolygraphError> {
    if !(0.0..=1.0).contains(&config.fraction) || config.fraction == 0.0 {
        return Err(PolygraphError::BadTrainingSet(format!(
            "fraction must be in (0, 1], got {}",
            config.fraction
        )));
    }
    let mut strata: HashMap<UserAgent, Vec<usize>> = HashMap::new();
    for (i, ua) in data.user_agents().iter().enumerate() {
        strata.entry(*ua).or_default().push(i);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut keep: Vec<usize> = Vec::new();
    // Deterministic iteration order: sort strata by user-agent.
    let mut uas: Vec<UserAgent> = strata.keys().copied().collect();
    uas.sort();
    for ua in uas {
        let members = &strata[&ua];
        let target = ((members.len() as f64 * config.fraction).round() as usize)
            .max(config.min_per_stratum)
            .min(members.len());
        let mut chosen: Vec<usize> = members.choose_multiple(&mut rng, target).copied().collect();
        keep.append(&mut chosen);
    }
    keep.sort_unstable();
    let keep_set: std::collections::HashSet<usize> = keep.into_iter().collect();
    Ok(data.filtered(|i| keep_set.contains(&i)))
}

/// A seeded uniform reservoir over streaming sessions (Algorithm R).
///
/// Every session ever offered has the same `capacity / seen` probability
/// of being resident, so the retrain window stays an unbiased sample of
/// the whole stream while memory stays bounded. All randomness comes
/// from one ChaCha stream seeded at construction: the same seed and the
/// same offer sequence reproduce the same window bit for bit.
#[derive(Debug, Clone)]
pub struct ReservoirWindow {
    capacity: usize,
    width: usize,
    rng: ChaCha8Rng,
    window: Vec<(Vec<f64>, UserAgent)>,
    seen: u64,
    /// Times the window was copied out into a [`TrainingSet`]. The
    /// checkpoint loop must answer Stable decisions from counters alone;
    /// the no-allocation-on-stable regression test pins this at zero
    /// across stable checkpoints.
    materializations: Cell<u64>,
}

impl ReservoirWindow {
    /// An empty reservoir holding at most `capacity` sessions of `width`
    /// features each.
    pub fn new(capacity: usize, width: usize, seed: u64) -> Result<Self, PolygraphError> {
        if capacity == 0 {
            return Err(PolygraphError::BadTrainingSet(
                "reservoir capacity must be at least 1".into(),
            ));
        }
        Ok(Self {
            capacity,
            width,
            rng: ChaCha8Rng::seed_from_u64(seed),
            window: Vec::new(),
            seen: 0,
            materializations: Cell::new(0),
        })
    }

    /// Offers one session to the reservoir. The first `capacity` offers
    /// always land; offer `t` then replaces a uniformly chosen resident
    /// with probability `capacity / t`.
    pub fn offer(&mut self, values: Vec<f64>, claimed: UserAgent) -> Result<(), PolygraphError> {
        if values.len() != self.width {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        self.seen += 1;
        if self.window.len() < self.capacity {
            self.window.push((values, claimed));
            return Ok(());
        }
        let j = self.rng.gen_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.window[j as usize] = (values, claimed);
        }
        Ok(())
    }

    /// Sessions currently resident.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no session has landed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Maximum resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total sessions offered since construction.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Borrows the resident window — the stable-checkpoint path, which
    /// must never copy.
    pub fn window(&self) -> &[(Vec<f64>, UserAgent)] {
        &self.window
    }

    /// Copies the resident window out into a [`TrainingSet`] — the
    /// drift-triggered path only.
    pub fn to_training_set(&self) -> Result<TrainingSet, PolygraphError> {
        self.materializations.set(self.materializations.get() + 1);
        let mut set = TrainingSet::new(self.width);
        for (values, claimed) in &self.window {
            set.push(values.clone(), *claimed)?;
        }
        Ok(set)
    }

    /// Times [`ReservoirWindow::to_training_set`] ran — the regression
    /// hook for the no-allocation-on-stable test.
    pub fn materializations(&self) -> u64 {
        self.materializations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    fn ua(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Chrome, v)
    }

    /// 3000 sessions of a popular UA, 40 of a rare one.
    fn skewed_set() -> TrainingSet {
        let mut set = TrainingSet::new(1);
        for i in 0..3000 {
            set.push(vec![i as f64], ua(110)).unwrap();
        }
        for i in 0..40 {
            set.push(vec![i as f64], ua(17)).unwrap();
        }
        set
    }

    fn count(set: &TrainingSet, target: UserAgent) -> usize {
        set.user_agents().iter().filter(|&&u| u == target).count()
    }

    #[test]
    fn bulk_shrinks_but_rare_strata_survive_whole() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 0.1,
                min_per_stratum: 200,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(count(&sampled, ua(110)), 300, "10% of the bulk");
        assert_eq!(
            count(&sampled, ua(17)),
            40,
            "the rare stratum is kept whole"
        );
    }

    #[test]
    fn min_per_stratum_floors_the_draw() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 0.01,
                min_per_stratum: 100,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(count(&sampled, ua(110)), 100, "floored at min_per_stratum");
        assert_eq!(count(&sampled, ua(17)), 40);
    }

    #[test]
    fn fraction_one_is_identity_sized() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 1.0,
                min_per_stratum: 1,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(sampled.len(), data.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = skewed_set();
        let cfg = StratifiedConfig {
            fraction: 0.2,
            min_per_stratum: 10,
            seed: 9,
        };
        let a = stratified_sample(&data, cfg).unwrap();
        let b = stratified_sample(&data, cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn reservoir_fills_then_stays_at_capacity() {
        let mut r = ReservoirWindow::new(8, 1, 7).unwrap();
        for i in 0..100u32 {
            r.offer(vec![i as f64], ua(110)).unwrap();
            assert!(r.len() <= 8);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 100);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn reservoir_inclusion_frequency_is_uniform() {
        // Algorithm R promises every item the same k/n residency
        // probability. Replay 10 000 independently seeded streams of
        // n = 50 items through a k = 10 reservoir and check each
        // position's empirical inclusion frequency against k/n = 0.2.
        const STREAMS: u64 = 10_000;
        const N: usize = 50;
        const K: usize = 10;
        let mut included = [0u32; N];
        for seed in 0..STREAMS {
            let mut r = ReservoirWindow::new(K, 1, seed).unwrap();
            for i in 0..N {
                r.offer(vec![i as f64], ua(110)).unwrap();
            }
            for (values, _) in r.window() {
                included[values[0] as usize] += 1;
            }
        }
        let expected = K as f64 / N as f64;
        // Binomial std-dev over 10k streams is ~0.004; 0.02 is 5 sigma.
        for (i, &count) in included.iter().enumerate() {
            let freq = count as f64 / STREAMS as f64;
            assert!(
                (freq - expected).abs() < 0.02,
                "position {i}: inclusion frequency {freq} vs expected {expected}"
            );
        }
    }

    #[test]
    fn reservoir_deterministic_given_seed() {
        let mut a = ReservoirWindow::new(16, 2, 0xDEED).unwrap();
        let mut b = ReservoirWindow::new(16, 2, 0xDEED).unwrap();
        for i in 0..500u32 {
            let row = vec![i as f64, (i * 3) as f64];
            a.offer(row.clone(), ua(100 + i % 4)).unwrap();
            b.offer(row, ua(100 + i % 4)).unwrap();
        }
        assert_eq!(a.window(), b.window());
        let sa = a.to_training_set().unwrap();
        let sb = b.to_training_set().unwrap();
        assert_eq!(sa.rows(), sb.rows());
        assert_eq!(sa.user_agents(), sb.user_agents());
    }

    #[test]
    fn reservoir_counts_materializations_and_rejects_bad_input() {
        assert!(ReservoirWindow::new(0, 1, 1).is_err());
        let mut r = ReservoirWindow::new(4, 2, 1).unwrap();
        assert!(r.offer(vec![1.0], ua(110)).is_err());
        r.offer(vec![1.0, 2.0], ua(110)).unwrap();
        assert_eq!(r.materializations(), 0);
        let set = r.to_training_set().unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(r.materializations(), 1);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let data = skewed_set();
        for fraction in [0.0, -0.5, 1.5] {
            assert!(stratified_sample(
                &data,
                StratifiedConfig {
                    fraction,
                    min_per_stratum: 1,
                    seed: 1
                }
            )
            .is_err());
        }
    }
}
