//! Training data: fingerprints paired with their claimed user-agents.

use crate::error::PolygraphError;
use browser_engine::UserAgent;
use polygraph_ml::Matrix;

/// A labelled fingerprint dataset.
///
/// The paper's training data is exactly this shape: 205k rows of 513 (or,
/// post-pre-processing, 28) integer outputs, each with the
/// `navigator.userAgent` it arrived with (§6.2). Session identifiers are
/// deliberately *not* part of the training set — the model never sees
/// anything user-linked.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    rows: Vec<Vec<f64>>,
    user_agents: Vec<UserAgent>,
    width: usize,
}

impl TrainingSet {
    /// Creates an empty set expecting `width`-feature rows.
    pub fn new(width: usize) -> Self {
        Self {
            rows: Vec::new(),
            user_agents: Vec::new(),
            width,
        }
    }

    /// Builds a set from parallel vectors.
    pub fn from_rows(
        rows: Vec<Vec<f64>>,
        user_agents: Vec<UserAgent>,
    ) -> Result<Self, PolygraphError> {
        if rows.is_empty() {
            return Err(PolygraphError::BadTrainingSet("no rows".into()));
        }
        if rows.len() != user_agents.len() {
            return Err(PolygraphError::BadTrainingSet(format!(
                "{} rows but {} user-agents",
                rows.len(),
                user_agents.len()
            )));
        }
        let width = rows[0].len();
        let mut set = Self::new(width);
        for (row, ua) in rows.into_iter().zip(user_agents) {
            set.push(row, ua)?;
        }
        Ok(set)
    }

    /// Appends one observation.
    pub fn push(&mut self, row: Vec<f64>, ua: UserAgent) -> Result<(), PolygraphError> {
        if row.len() != self.width {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: row.len(),
                expected: self.width,
            });
        }
        self.rows.push(row);
        self.user_agents.push(ua);
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the set holds no observations.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The user-agents, parallel to [`TrainingSet::rows`].
    pub fn user_agents(&self) -> &[UserAgent] {
        &self.user_agents
    }

    /// Number of distinct user-agents (the paper's "113 different browser
    /// releases").
    pub fn distinct_user_agents(&self) -> usize {
        let mut uas: Vec<&UserAgent> = self.user_agents.iter().collect();
        uas.sort();
        uas.dedup();
        uas.len()
    }

    /// The features as a matrix.
    pub fn to_matrix(&self) -> Result<Matrix, PolygraphError> {
        Matrix::from_rows(&self.rows).map_err(Into::into)
    }

    /// A copy with only the rows whose index satisfies `keep` — used to
    /// drop Isolation-Forest outliers before the final fit.
    pub fn filtered(&self, keep: impl Fn(usize) -> bool) -> TrainingSet {
        let mut out = TrainingSet::new(self.width);
        for (i, (row, ua)) in self.rows.iter().zip(&self.user_agents).enumerate() {
            if keep(i) {
                out.rows.push(row.clone());
                out.user_agents.push(*ua);
            }
        }
        out
    }

    /// A copy keeping only the listed feature columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> Result<TrainingSet, PolygraphError> {
        if cols.iter().any(|&c| c >= self.width) {
            return Err(PolygraphError::BadTrainingSet(
                "column index out of range".into(),
            ));
        }
        let mut out = TrainingSet::new(cols.len());
        for (row, ua) in self.rows.iter().zip(&self.user_agents) {
            out.rows.push(cols.iter().map(|&c| row[c]).collect());
            out.user_agents.push(*ua);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    fn ua(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Chrome, v)
    }

    #[test]
    fn construction_validates_shape() {
        assert!(TrainingSet::from_rows(vec![], vec![]).is_err());
        assert!(TrainingSet::from_rows(vec![vec![1.0]], vec![]).is_err());
        let mut set = TrainingSet::new(2);
        assert!(set.push(vec![1.0], ua(100)).is_err());
        assert!(set.push(vec![1.0, 2.0], ua(100)).is_ok());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn distinct_user_agents_counts_unique() {
        let set = TrainingSet::from_rows(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![ua(100), ua(100), ua(101)],
        )
        .unwrap();
        assert_eq!(set.distinct_user_agents(), 2);
    }

    #[test]
    fn filtered_drops_rows() {
        let set = TrainingSet::from_rows(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![ua(1), ua(2), ua(3)],
        )
        .unwrap();
        let f = set.filtered(|i| i != 1);
        assert_eq!(f.len(), 2);
        assert_eq!(f.user_agents()[1], ua(3));
    }

    #[test]
    fn select_columns_projects() {
        let set = TrainingSet::from_rows(
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            vec![ua(1), ua(2)],
        )
        .unwrap();
        let s = set.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.rows()[0], vec![3.0, 1.0]);
        assert!(set.select_columns(&[9]).is_err());
    }

    #[test]
    fn to_matrix_round_trips() {
        let set = TrainingSet::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![ua(1), ua(2)])
            .unwrap();
        let m = set.to_matrix().unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(1, 0)], 3.0);
    }
}
