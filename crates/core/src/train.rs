//! Training (§6.4): scale → outlier removal → PCA → k-means → cluster
//! table.

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use browser_engine::{BrowserInstance, UserAgent, Vendor};
use fingerprint::FeatureSet;
use polygraph_ml::iforest::IsolationForestConfig;
use polygraph_ml::kmeans::minibatch::{MiniBatchConfig, MiniBatchKMeans};
use polygraph_ml::kmeans::KMeansConfig;
use polygraph_ml::metrics::majority_cluster_accuracy;
use polygraph_ml::{IsolationForest, KMeans, Matrix, Pca, StandardScaler, ThreadPool};
use polygraph_obs::Registry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Metric names an observed fit ([`TrainedModel::fit_observed`]) records
/// into its registry: one span histogram per §6.4 phase plus run/task
/// counters.
pub mod fit_metric_names {
    /// Fits completed (counter).
    pub const RUNS: &str = "fit.runs";
    /// Thread-pool tasks executed during the fit (counter). Read as a
    /// process-wide delta, so concurrent fits blur into each other.
    pub const POOL_TASKS: &str = "fit.pool_tasks";
    /// Scaling phase duration in µs (histogram).
    pub const SCALE_MICROS: &str = "fit.scale_micros";
    /// Isolation-Forest outlier-removal phase duration in µs (histogram).
    pub const OUTLIER_MICROS: &str = "fit.outlier_micros";
    /// PCA phase duration in µs (histogram).
    pub const PCA_MICROS: &str = "fit.pca_micros";
    /// k-means phase duration in µs (histogram).
    pub const KMEANS_MICROS: &str = "fit.kmeans_micros";
    /// Cluster-table + accuracy phase duration in µs (histogram).
    pub const TABLE_MICROS: &str = "fit.table_micros";
    /// Whole-pipeline duration in µs (histogram).
    pub const TOTAL_MICROS: &str = "fit.total_micros";
}

/// Hyper-parameters of the training pipeline. The defaults are the
/// paper's chosen operating point: 7 PCA components, k = 11, and an
/// outlier fraction sized to the 172-of-205k rows the paper removed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of PCA components (7 in the paper — Figure 2).
    pub n_components: usize,
    /// Number of k-means clusters (11 in the paper — Figures 3/4).
    pub k: usize,
    /// Isolation-Forest contamination: fraction of rows removed as
    /// outliers before fitting. The paper quotes a "0.002%" threshold and
    /// removed 172 of ~205k rows (≈ 0.08%); we default to the measured
    /// fraction rather than the quoted one.
    pub contamination: f64,
    /// RNG seed for k-means++ and the isolation forest.
    pub seed: u64,
    /// User-agents with fewer training samples than this get their cluster
    /// aligned from a genuine lab instance instead of the (noisy) majority
    /// vote — the paper's manual adjustment for Chrome 81 / Edge 17 (§6.4.3).
    pub min_samples_for_majority: usize,
    /// k-means restarts.
    pub n_init: usize,
    /// Whether to align sparse/vanished user-agents from genuine lab
    /// instances (§6.4.3's manual adjustment). Disabled only by the
    /// ablation study; production keeps it on.
    pub lab_alignment: bool,
    /// Whether to standard-scale the time-based (binary) columns too.
    /// The paper deliberately leaves them raw (§6.4.1); scaling them blows
    /// rare bits up into dominant axes — kept as an ablation switch.
    pub scale_time_based: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            n_components: 7,
            k: 11,
            contamination: 172.0 / 205_000.0,
            seed: 0xB01D_FACE,
            min_samples_for_majority: 100,
            n_init: 4,
            lab_alignment: true,
            scale_time_based: false,
        }
    }
}

/// The cluster ↔ user-agent association of Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTable {
    k: usize,
    /// `(user-agent, cluster)` pairs, sorted by user-agent.
    entries: Vec<(UserAgent, usize)>,
}

impl ClusterTable {
    /// Builds a table from explicit pairs.
    pub fn from_entries(k: usize, mut entries: Vec<(UserAgent, usize)>) -> Self {
        entries.sort_by_key(|(ua, _)| *ua);
        entries.dedup_by_key(|(ua, _)| *ua);
        Self { k, entries }
    }

    /// Number of clusters in the underlying model (including unpopulated
    /// ones).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The cluster a known user-agent belongs to.
    pub fn cluster_of(&self, ua: UserAgent) -> Option<usize> {
        self.entries
            .binary_search_by_key(&ua, |(u, _)| *u)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The cluster a claim is *expected* to land in: the exact entry if
    /// known, otherwise the entry of the nearest same-vendor version (the
    /// rule the drift analysis of §6.6 applies to brand-new releases).
    pub fn expected_cluster(&self, ua: UserAgent) -> Option<usize> {
        if let Some(c) = self.cluster_of(ua) {
            return Some(c);
        }
        self.entries
            .iter()
            .filter(|(u, _)| u.vendor == ua.vendor)
            .min_by_key(|(u, _)| u.version.abs_diff(ua.version))
            .map(|(_, c)| *c)
    }

    /// Every user-agent resident in `cluster`, ascending.
    pub fn user_agents_in(&self, cluster: usize) -> Vec<UserAgent> {
        self.entries
            .iter()
            .filter(|(_, c)| *c == cluster)
            .map(|(u, _)| *u)
            .collect()
    }

    /// All `(cluster, residents)` rows with at least one resident,
    /// ascending by cluster — the shape of Table 3.
    pub fn rows(&self) -> Vec<(usize, Vec<UserAgent>)> {
        (0..self.k)
            .map(|c| (c, self.user_agents_in(c)))
            .filter(|(_, uas)| !uas.is_empty())
            .collect()
    }

    /// Renders a cluster's residents in the paper's compact range form,
    /// e.g. `"Chrome 110-113, Edge 110-113"`.
    pub fn describe_cluster(&self, cluster: usize) -> String {
        let mut by_vendor: BTreeMap<Vendor, Vec<u32>> = BTreeMap::new();
        for ua in self.user_agents_in(cluster) {
            by_vendor.entry(ua.vendor).or_default().push(ua.version);
        }
        let mut parts = Vec::new();
        for vendor in Vendor::ALL {
            let Some(mut versions) = by_vendor.remove(&vendor) else {
                continue;
            };
            versions.sort_unstable();
            let mut start = versions[0];
            let mut prev = versions[0];
            for &v in &versions[1..] {
                if v == prev + 1 {
                    prev = v;
                    continue;
                }
                parts.push(render_range(vendor, start, prev));
                start = v;
                prev = v;
            }
            parts.push(render_range(vendor, start, prev));
        }
        parts.join(", ")
    }

    /// All entries as a slice.
    pub fn entries(&self) -> &[(UserAgent, usize)] {
        &self.entries
    }
}

fn render_range(vendor: Vendor, start: u32, end: u32) -> String {
    if start == end {
        format!("{vendor} {start}")
    } else {
        format!("{vendor} {start}-{end}")
    }
}

/// A fully trained Browser Polygraph model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    feature_set: FeatureSet,
    scaler: StandardScaler,
    pca: Pca,
    kmeans: KMeans,
    cluster_table: ClusterTable,
    /// Majority-cluster accuracy on the training data (the paper's 99.6%).
    train_accuracy: f64,
    /// Rows removed as outliers before fitting (the paper's 172).
    outliers_removed: usize,
    config: TrainConfig,
}

impl TrainedModel {
    /// Runs the full §6.4 pipeline on `data`, whose columns must follow
    /// `feature_set`.
    pub fn fit(
        feature_set: FeatureSet,
        data: &TrainingSet,
        config: TrainConfig,
    ) -> Result<Self, PolygraphError> {
        Self::fit_with_pool(feature_set, data, config, &ThreadPool::serial())
    }

    /// [`TrainedModel::fit`] with the heavy stages (isolation forest,
    /// covariance accumulation, k-means restarts) run on a thread pool.
    ///
    /// Produces a bit-identical model to the serial fit for any pool
    /// width: every stage below splits work by index with per-index RNG
    /// streams and folds reductions in a fixed order.
    pub fn fit_with_pool(
        feature_set: FeatureSet,
        data: &TrainingSet,
        config: TrainConfig,
        pool: &ThreadPool,
    ) -> Result<Self, PolygraphError> {
        // Unobserved fits record into a throwaway registry: a handful of
        // atomic writes per phase, dropped on return.
        Self::fit_observed(feature_set, data, config, pool, &Registry::monotonic())
    }

    /// [`TrainedModel::fit_with_pool`] with per-phase span timers and
    /// run/task counters recorded into `registry` (see
    /// [`fit_metric_names`]). The orchestrator passes the risk server's
    /// registry so retrain phase timings ride the same `STATS` snapshot
    /// as the serving metrics.
    pub fn fit_observed(
        feature_set: FeatureSet,
        data: &TrainingSet,
        config: TrainConfig,
        pool: &ThreadPool,
        registry: &Registry,
    ) -> Result<Self, PolygraphError> {
        if data.width() != feature_set.len() {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: data.width(),
                expected: feature_set.len(),
            });
        }
        if data.len() <= config.k {
            return Err(PolygraphError::BadTrainingSet(format!(
                "{} rows cannot support k={}",
                data.len(),
                config.k
            )));
        }

        let tasks_before = polygraph_ml::total_tasks_executed();
        let total_span = registry.span(fit_metric_names::TOTAL_MICROS);

        // 6.4.1: scale the deviation-based columns only — "the time-based
        // attributes were already in the binary format which was
        // suitable" — then drop Isolation-Forest outliers.
        let scale_span = registry.span(fit_metric_names::SCALE_MICROS);
        let raw = data.to_matrix()?;
        let mut scaler = StandardScaler::fit(&raw)?;
        if !config.scale_time_based {
            scaler.neutralize_columns(
                &feature_set.indices_of_kind(fingerprint::FeatureKind::TimeBased),
            );
        }
        let scaled = scaler.transform(&raw)?;
        scale_span.finish();

        let outlier_span = registry.span(fit_metric_names::OUTLIER_MICROS);
        let forest = IsolationForest::fit_with_pool(
            &scaled,
            IsolationForestConfig {
                n_trees: 100,
                sample_size: 256,
                seed: config.seed,
            },
            pool,
        )?;
        let outlier_idx = forest.outlier_indices_with_pool(&scaled, config.contamination, pool)?;
        let outliers_removed = outlier_idx.len();
        let is_outlier: BTreeSet<usize> = outlier_idx.into_iter().collect();
        let kept = data.filtered(|i| !is_outlier.contains(&i));
        let kept_scaled = scaled.filter_rows(|i| !is_outlier.contains(&i))?;
        outlier_span.finish();

        // 6.4.2: PCA.
        let pca_span = registry.span(fit_metric_names::PCA_MICROS);
        let pca = Pca::fit_with_pool(&kept_scaled, config.n_components, pool)?;
        let projected = pca.transform(&kept_scaled)?;
        pca_span.finish();

        // 6.4.3: k-means.
        let kmeans_span = registry.span(fit_metric_names::KMEANS_MICROS);
        let kmeans = KMeans::fit_with_pool(
            &projected,
            KMeansConfig::new(config.k)
                .with_seed(config.seed)
                .with_n_init(config.n_init),
            pool,
        )?;
        let assignments = kmeans.predict(&projected)?;
        kmeans_span.finish();

        // Semi-supervised table + accuracy.
        let table_span = registry.span(fit_metric_names::TABLE_MICROS);
        let (cluster_table, train_accuracy) = build_cluster_table(
            &feature_set,
            &scaler,
            &pca,
            &kmeans,
            &kept,
            data,
            &assignments,
            &config,
        )?;
        table_span.finish();
        total_span.finish();
        registry.counter(fit_metric_names::RUNS).inc();
        registry
            .counter(fit_metric_names::POOL_TASKS)
            .add(polygraph_ml::total_tasks_executed().saturating_sub(tasks_before));

        Ok(Self {
            feature_set,
            scaler,
            pca,
            kmeans,
            cluster_table,
            train_accuracy,
            outliers_removed,
            config,
        })
    }

    /// The streaming-checkpoint refit (§6.6 without the stop-the-world
    /// snapshot): freezes this model's scaler and PCA stages, warm-starts
    /// mini-batch k-means from the serving centroids, absorbs `epochs`
    /// seeded epochs of `data`, and rebuilds the cluster table and
    /// majority accuracy on the same window.
    ///
    /// Skipping the Isolation-Forest pass and the PCA eigensolve — plus
    /// replacing `n_init` full Lloyd restarts with a few warm-started
    /// mini-batch epochs — is what makes a per-checkpoint candidate cheap
    /// enough to run continuously; `bench_retrain` gates the cost at
    /// ≤ 0.5x a full-window [`TrainedModel::fit`].
    pub fn refit_streaming(
        &self,
        data: &TrainingSet,
        epochs: usize,
        pool: &ThreadPool,
    ) -> Result<Self, PolygraphError> {
        if data.width() != self.feature_set.len() {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: data.width(),
                expected: self.feature_set.len(),
            });
        }
        if data.len() <= self.config.k {
            return Err(PolygraphError::BadTrainingSet(format!(
                "{} rows cannot support k={}",
                data.len(),
                self.config.k
            )));
        }
        let scaled = self.scaler.transform(&data.to_matrix()?)?;
        let projected = self.pca.transform(&scaled)?;
        let mut minibatch = MiniBatchKMeans::warm_start(
            self.kmeans.centroids().clone(),
            MiniBatchConfig::new(self.config.k).with_seed(self.config.seed),
        )?;
        for _ in 0..epochs {
            minibatch.step_with_pool(&projected, pool)?;
        }
        let kmeans = minibatch.into_kmeans(&projected, pool)?;
        let assignments = kmeans.predict(&projected)?;
        let (cluster_table, train_accuracy) = build_cluster_table(
            &self.feature_set,
            &self.scaler,
            &self.pca,
            &kmeans,
            data,
            data,
            &assignments,
            &self.config,
        )?;
        Ok(Self {
            feature_set: self.feature_set.clone(),
            scaler: self.scaler.clone(),
            pca: self.pca.clone(),
            kmeans,
            cluster_table,
            train_accuracy,
            outliers_removed: 0,
            config: self.config,
        })
    }

    /// The feature schema this model expects.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.feature_set
    }

    /// The Table 3 association.
    pub fn cluster_table(&self) -> &ClusterTable {
        &self.cluster_table
    }

    /// Majority-cluster training accuracy (the paper's 99.6%).
    pub fn train_accuracy(&self) -> f64 {
        self.train_accuracy
    }

    /// Rows removed as Isolation-Forest outliers (the paper's 172).
    pub fn outliers_removed(&self) -> usize {
        self.outliers_removed
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The fitted PCA stage (for variance reporting — Figure 2).
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// The fitted scaler stage.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Compiles the scaler + PCA + k-means pipeline into the fused
    /// fixed-point form used by the serving fast path
    /// (see [`polygraph_ml::quant`]).
    pub fn quantize(&self) -> Result<polygraph_ml::QuantModel, PolygraphError> {
        Ok(polygraph_ml::QuantModel::compile(
            &self.scaler,
            &self.pca,
            &self.kmeans,
        )?)
    }

    /// The fitted k-means stage (for WCSS reporting — Figures 3/4).
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Predicts the cluster of a raw fingerprint row.
    pub fn predict_cluster(&self, values: &[f64]) -> Result<usize, PolygraphError> {
        if values.len() != self.feature_set.len() {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: values.len(),
                expected: self.feature_set.len(),
            });
        }
        predict_cluster_inner(&self.scaler, &self.pca, &self.kmeans, values)
    }

    /// Predicts clusters for a whole set (drift analysis, sweeps).
    pub fn predict_clusters(&self, data: &TrainingSet) -> Result<Vec<usize>, PolygraphError> {
        data.rows()
            .iter()
            .map(|r| self.predict_cluster(r))
            .collect()
    }

    /// The populated cluster whose centroid is nearest to `cluster`'s.
    ///
    /// With k = 11 over ~9 natural release groups, k-means' spare
    /// centroids settle on sub-structure (extension variants of a popular
    /// release) and end up holding no user-agent majority. A session
    /// landing there still deserves a *sized* risk factor — the paper
    /// attributes such flags to "certain extensions or browser
    /// configurations" and reports them at low risk — so Algorithm 1 runs
    /// against the nearest populated neighbourhood instead of an empty
    /// one. Returns `cluster` itself when it is populated (or nothing is).
    pub fn nearest_populated_cluster(&self, cluster: usize) -> usize {
        if !self.cluster_table.user_agents_in(cluster).is_empty() {
            return cluster;
        }
        let centroids = self.kmeans.centroids();
        if cluster >= centroids.rows() {
            return cluster;
        }
        let own = centroids.row(cluster);
        let mut best: Option<(usize, f64)> = None;
        for c in 0..centroids.rows() {
            if c == cluster || self.cluster_table.user_agents_in(c).is_empty() {
                continue;
            }
            let d = polygraph_ml::Matrix::sq_dist(own, centroids.row(c));
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        best.map_or(cluster, |(c, _)| c)
    }
}

/// The semi-supervised table-building tail shared by the full fit and
/// the streaming refit: majority vote per user-agent, then the §6.4.3
/// manual alignments — sparse user-agents predicted from a genuine lab
/// fingerprint instead of a thin majority, and user-agents that vanished
/// from `kept` entirely (every session dropped as an outlier) aligned
/// from the lab instance too.
#[allow(clippy::too_many_arguments)] // the fitted stages travel together
fn build_cluster_table(
    feature_set: &FeatureSet,
    scaler: &StandardScaler,
    pca: &Pca,
    kmeans: &KMeans,
    kept: &TrainingSet,
    observed: &TrainingSet,
    assignments: &[usize],
    config: &TrainConfig,
) -> Result<(ClusterTable, f64), PolygraphError> {
    let accuracy = majority_cluster_accuracy(kept.user_agents(), assignments)?;
    let mut counts: BTreeMap<UserAgent, usize> = BTreeMap::new();
    for ua in kept.user_agents() {
        *counts.entry(*ua).or_default() += 1;
    }
    let mut entries: Vec<(UserAgent, usize)> = Vec::new();
    for (ua, cluster) in &accuracy.label_clusters {
        let cluster = if config.lab_alignment && counts[ua] < config.min_samples_for_majority {
            let lab = feature_set.extract(&BrowserInstance::genuine(*ua));
            predict_cluster_inner(scaler, pca, kmeans, &lab.as_f64()).unwrap_or(*cluster)
        } else {
            *cluster
        };
        entries.push((*ua, cluster));
    }
    if config.lab_alignment {
        let seen: BTreeSet<UserAgent> = entries.iter().map(|(ua, _)| *ua).collect();
        let mut observed_uas: Vec<UserAgent> = observed.user_agents().to_vec();
        observed_uas.sort();
        observed_uas.dedup();
        for ua in observed_uas {
            if seen.contains(&ua) {
                continue;
            }
            let lab = feature_set.extract(&BrowserInstance::genuine(ua));
            if let Ok(cluster) = predict_cluster_inner(scaler, pca, kmeans, &lab.as_f64()) {
                entries.push((ua, cluster));
            }
        }
    }
    Ok((
        ClusterTable::from_entries(config.k, entries),
        accuracy.accuracy,
    ))
}

fn predict_cluster_inner(
    scaler: &StandardScaler,
    pca: &Pca,
    kmeans: &KMeans,
    values: &[f64],
) -> Result<usize, PolygraphError> {
    let scaled = scaler.transform_row(values)?;
    let projected = pca.transform_row(&scaled)?;
    Ok(kmeans.predict_row(&projected)?)
}

/// Picks the smallest component count whose cumulative explained variance
/// reaches `threshold` — the Figure 2 reading that chose 7 components.
pub fn pick_pca_components(scaled: &Matrix, threshold: f64) -> Result<usize, PolygraphError> {
    let spectrum = Pca::variance_spectrum(scaled)?;
    let mut acc = 0.0;
    for (i, r) in spectrum.iter().enumerate() {
        acc += r;
        if acc >= threshold {
            return Ok(i + 1);
        }
    }
    Ok(spectrum.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    /// A compact but structured training set: three separable synthetic
    /// "eras" with two user-agents each.
    fn toy_training_set() -> TrainingSet {
        let mut set = TrainingSet::new(3);
        let eras: [(f64, Vec<UserAgent>); 3] = [
            (0.0, vec![ua(Vendor::Chrome, 60), ua(Vendor::Chrome, 61)]),
            (10.0, vec![ua(Vendor::Chrome, 100), ua(Vendor::Edge, 100)]),
            (
                20.0,
                vec![ua(Vendor::Firefox, 100), ua(Vendor::Firefox, 101)],
            ),
        ];
        for (base, uas) in eras {
            for u in uas {
                for j in 0..30 {
                    let jitter = (j % 3) as f64 * 0.1;
                    set.push(vec![base + jitter, base * 2.0, base + 1.0 - jitter], u)
                        .unwrap();
                }
            }
        }
        set
    }

    #[test]
    fn fit_produces_high_accuracy_on_separable_data() {
        let set = toy_training_set();
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            ..Default::default()
        };
        let model = TrainedModel::fit(FeatureSet::new(vec![]), &set, config);
        // Width mismatch: feature set is empty but data has 3 columns.
        assert!(model.is_err());

        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        assert!(
            model.train_accuracy() > 0.99,
            "got {}",
            model.train_accuracy()
        );
    }

    #[test]
    fn cluster_table_groups_same_era_uas() {
        let set = toy_training_set();
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1, // no lab alignment for toy UAs
            ..Default::default()
        };
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        let t = model.cluster_table();
        assert_eq!(
            t.cluster_of(ua(Vendor::Chrome, 100)),
            t.cluster_of(ua(Vendor::Edge, 100)),
            "same-era Chrome and Edge must share a cluster"
        );
        assert_ne!(
            t.cluster_of(ua(Vendor::Chrome, 60)),
            t.cluster_of(ua(Vendor::Firefox, 100))
        );
    }

    #[test]
    fn predict_cluster_matches_training_assignment() {
        let set = toy_training_set();
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        let c = model.predict_cluster(&[10.0, 20.0, 11.0]).unwrap();
        assert_eq!(
            Some(c),
            model.cluster_table().cluster_of(ua(Vendor::Chrome, 100))
        );
        assert!(model.predict_cluster(&[1.0]).is_err());
    }

    #[test]
    fn expected_cluster_falls_back_to_nearest_version() {
        let t = ClusterTable::from_entries(
            4,
            vec![
                (ua(Vendor::Chrome, 100), 1),
                (ua(Vendor::Chrome, 110), 2),
                (ua(Vendor::Firefox, 100), 3),
            ],
        );
        assert_eq!(t.expected_cluster(ua(Vendor::Chrome, 100)), Some(1));
        // 104 is nearer 100 than 110.
        assert_eq!(t.expected_cluster(ua(Vendor::Chrome, 104)), Some(1));
        assert_eq!(t.expected_cluster(ua(Vendor::Chrome, 108)), Some(2));
        // No Edge entries at all.
        assert_eq!(t.expected_cluster(ua(Vendor::Edge, 100)), None);
    }

    #[test]
    fn describe_cluster_renders_ranges() {
        let t = ClusterTable::from_entries(
            2,
            vec![
                (ua(Vendor::Chrome, 110), 0),
                (ua(Vendor::Chrome, 111), 0),
                (ua(Vendor::Chrome, 112), 0),
                (ua(Vendor::Edge, 110), 0),
                (ua(Vendor::Chrome, 99), 1),
            ],
        );
        assert_eq!(t.describe_cluster(0), "Chrome 110-112, Edge 110");
        assert_eq!(t.describe_cluster(1), "Chrome 99");
        assert_eq!(t.describe_cluster(9), "");
    }

    #[test]
    fn rows_skip_empty_clusters() {
        let t = ClusterTable::from_entries(5, vec![(ua(Vendor::Chrome, 100), 4)]);
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0].0, 4);
    }

    #[test]
    fn too_small_dataset_rejected() {
        let mut set = TrainingSet::new(2);
        for i in 0..5 {
            set.push(vec![i as f64, 0.0], ua(Vendor::Chrome, 100))
                .unwrap();
        }
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 11,
            ..Default::default()
        };
        assert!(TrainedModel::fit(fs, &set, config).is_err());
    }

    #[test]
    fn refit_streaming_preserves_structure_on_a_stable_window() {
        let set = toy_training_set();
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        let refit = model
            .refit_streaming(&set, 4, &ThreadPool::serial())
            .unwrap();
        // Warm-started on the very window the model was fit on, the
        // candidate keeps the era structure and the accuracy bar.
        assert!(refit.train_accuracy() > 0.99, "{}", refit.train_accuracy());
        assert_eq!(
            refit.cluster_table().cluster_of(ua(Vendor::Chrome, 100)),
            refit.cluster_table().cluster_of(ua(Vendor::Edge, 100)),
        );
        assert_eq!(refit.outliers_removed(), 0);
        // Deterministic: the same serving model + window give the same
        // candidate.
        let again = model
            .refit_streaming(&set, 4, &ThreadPool::serial())
            .unwrap();
        assert_eq!(again.cluster_table(), refit.cluster_table());
    }

    #[test]
    fn refit_streaming_rejects_bad_windows() {
        let set = toy_training_set();
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        let narrow = TrainingSet::new(2);
        assert!(model
            .refit_streaming(&narrow, 1, &ThreadPool::serial())
            .is_err());
        let mut tiny = TrainingSet::new(3);
        for i in 0..3 {
            tiny.push(vec![i as f64, 0.0, 0.0], ua(Vendor::Chrome, 100))
                .unwrap();
        }
        assert!(model
            .refit_streaming(&tiny, 1, &ThreadPool::serial())
            .is_err());
    }

    #[test]
    fn model_serde_round_trip() {
        let set = toy_training_set();
        let fs = fingerprint::FeatureSet::table8().subset(&[0, 1, 2]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let model = TrainedModel::fit(fs, &set, config).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cluster_table(), model.cluster_table());
        assert_eq!(
            back.predict_cluster(&[10.0, 20.0, 11.0]).unwrap(),
            model.predict_cluster(&[10.0, 20.0, 11.0]).unwrap()
        );
    }

    #[test]
    fn pick_pca_components_thresholds() {
        // Two informative dimensions, one constant.
        let m = Matrix::from_rows(&[
            vec![0.0, 0.0, 5.0],
            vec![1.0, 10.0, 5.0],
            vec![2.0, 20.0, 5.0],
            vec![3.0, 29.0, 5.0],
        ])
        .unwrap();
        let n = pick_pca_components(&m, 0.985).unwrap();
        assert!(n <= 2, "two real dimensions suffice, got {n}");
        assert_eq!(pick_pca_components(&m, 1.1).unwrap(), 3);
    }
}
