//! Offline vendored crossbeam subset.
//!
//! Provides `crossbeam::deque::{Injector, Worker, Stealer, Steal}` with
//! the real crate's shapes and semantics, implemented on
//! `Mutex<VecDeque>` rather than lock-free arrays (no `unsafe` allowed in
//! this workspace's vendored code, and the polygraph workloads hand out
//! coarse-grained tasks where lock overhead is immaterial).

#![forbid(unsafe_code)]

pub mod deque {
    //! Work-stealing double-ended queues.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A shared FIFO injector queue: any thread may push or steal.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Steal one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal a batch into `dest`'s local queue and pop one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            let take = (q.len() / 2).clamp(usize::from(!q.is_empty()), 16);
            let mut batch: Vec<T> = Vec::with_capacity(take);
            for _ in 0..take {
                match q.pop_front() {
                    Some(t) => batch.push(t),
                    None => break,
                }
            }
            drop(q);
            let mut first = None;
            for t in batch {
                if first.is_none() {
                    first = Some(t);
                } else {
                    dest.push(t);
                }
            }
            match first {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Queue length.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    /// A worker-owned deque. The owner pushes/pops one end; [`Stealer`]s
    /// take from the other.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    impl<T> Worker<T> {
        /// A FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// A LIFO worker queue.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Pop a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Queue length.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    /// A stealing handle to a [`Worker`] queue: takes from the front
    /// (the end opposite a LIFO owner).
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }
}

pub mod utils {
    //! Minimal concurrency helpers.

    /// An exponential spin/yield backoff for contended loops.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: u32,
    }

    impl Backoff {
        /// A fresh backoff.
        pub fn new() -> Self {
            Backoff::default()
        }

        /// Spin briefly (cheap contention).
        pub fn spin(&mut self) {
            for _ in 0..(1u32 << self.step.min(6)) {
                std::hint::spin_loop();
            }
            self.step = self.step.saturating_add(1);
        }

        /// Yield to the scheduler (likely waiting on another thread).
        pub fn snooze(&mut self) {
            if self.step < 4 {
                self.spin();
            } else {
                std::thread::yield_now();
            }
            self.step = self.step.saturating_add(1);
        }

        /// Whether callers should switch to blocking/parking.
        pub fn is_completed(&self) -> bool {
            self.step > 10
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn injector_fifo_order() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn worker_lifo_and_stealer_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(w.pop(), Some(3), "owner pops the hot end");
        assert_eq!(s.steal(), Steal::Success(1), "thief takes the cold end");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_batch_and_pop_moves_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let got = inj.steal_batch_and_pop(&w);
        assert_eq!(got, Steal::Success(0));
        assert!(!w.is_empty());
        assert_eq!(w.len() + inj.len() + 1, 10, "no task lost or duplicated");
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        let inj = Arc::new(Injector::new());
        const N: usize = 10_000;
        for i in 0..N {
            inj.push(i);
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let w = Worker::<usize>::new_fifo();
                    loop {
                        let task = w.pop().or_else(|| inj.steal_batch_and_pop(&w).success());
                        match task {
                            Some(_) => {
                                seen.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::Relaxed), N);
    }
}
