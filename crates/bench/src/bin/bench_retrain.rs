//! `bench_retrain`: cost and fidelity of the streaming retrain pipeline —
//! the `BENCH_retrain.json` artifact the CI retrain gate consumes.
//!
//! Methodology:
//!
//! 1. Train the paper model on one seeded traffic window (the serving
//!    model), then generate a second, same-distribution window — the
//!    retrain window a [`polygraph_core::DriftStream`] reservoir would
//!    hand the orchestrator at a checkpoint.
//! 2. Timing leg: fit a model on the retrain window from scratch
//!    (`TrainedModel::fit` — scaler, isolation forest, PCA, k-means
//!    restarts) and via the warm-started streaming path
//!    (`refit_streaming` — reuse scaler/PCA, mini-batch k-means from the
//!    serving centroids). Best of `reps` runs each. The gate asserts the
//!    mini-batch checkpoint costs ≤ 0.5× the full refit
//!    (`refit_speedup ≥ 2`).
//! 3. Shadow leg: replay a seeded frame pool through a live risk server
//!    three times — serving model alone (baseline stream + throughput),
//!    with the candidate attached as a shadow scorer (shadow-path
//!    throughput and the `compared`/`diverged` agreement counters), and
//!    after a checkpoint promotes the candidate (the promoted verdict
//!    stream). The gate asserts the live agreement rate stays above the
//!    configured floor.
//! 4. Fidelity leg: recompute the candidate from scratch with a second,
//!    independent `refit_streaming` call on the same window, serve it
//!    from a fresh server, and replay the same pool. Its verdict stream
//!    must be byte-identical to the promoted shadow's — promotion through
//!    the shadow path must be invisible in the verdicts.
//!
//! `--smoke` selects the small deterministic configuration CI runs.

use polygraph_bench::{train_paper_model, ExpOptions};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_ml::ThreadPool;
use polygraph_service::proto::VERDICT_LEN;
use polygraph_service::{
    start_risk_server_with, ModelRegistry, Orchestrator, OrchestratorConfig, RetrainOutcome,
    RiskServerConfig, RiskServerHandle, ShadowConfig, SwapPolicy, MAX_BATCH_PER_GUARD,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;
use traffic::TrafficConfig;

#[derive(Debug, Clone)]
struct Options {
    seed: u64,
    /// Sessions in the serving model's training window.
    sessions: usize,
    /// Sessions in the retrain window (the reservoir the checkpoint
    /// hands the orchestrator).
    window: usize,
    /// Warm-start epochs for the streaming refit.
    epochs: usize,
    /// Timing repetitions per fit path (best-of).
    reps: usize,
    /// Frames in each serve-path replay.
    frames: usize,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: TrafficConfig::paper_training().seed,
            sessions: 20_000,
            window: 8_000,
            epochs: 4,
            reps: 3,
            frames: 20_000,
            out: Some("results/BENCH_retrain.json".to_string()),
        }
    }
}

/// The CI smoke configuration: the same serving/window/replay structure,
/// smaller everywhere. The speedup claim survives shrinking because both
/// fit paths shrink with the window.
fn smoke_options() -> Options {
    Options {
        sessions: 5_000,
        window: 2_500,
        reps: 1,
        frames: 8_000,
        ..Options::default()
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_retrain: {msg}");
    eprintln!(
        "usage: bench_retrain [--smoke] [--seed S] [--sessions N] [--window N] [--epochs N] \
         [--reps N] [--frames N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = if args.iter().any(|a| a == "--smoke") {
        smoke_options()
    } else {
        Options::default()
    };
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--smoke" {
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            usage_error(&format!("{flag} needs a value"));
        };
        match flag {
            "--seed" => opts.seed = parse(flag, value),
            "--sessions" => opts.sessions = parse(flag, value),
            "--window" => opts.window = parse(flag, value),
            "--epochs" => opts.epochs = parse(flag, value),
            "--reps" => opts.reps = parse(flag, value),
            "--frames" => opts.frames = parse(flag, value),
            "--out" => opts.out = Some(value.clone()),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    if opts.window == 0 || opts.frames == 0 || opts.reps == 0 {
        usage_error("--window, --frames and --reps must be positive");
    }
    opts
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("invalid {flag} value {value:?}")))
}

/// Generates a same-distribution traffic window as a [`TrainingSet`].
fn generate_window(sessions: usize, seed: u64) -> TrainingSet {
    let feature_set = fingerprint::FeatureSet::table8();
    let config = TrafficConfig::paper_training()
        .with_sessions(sessions)
        .with_seed(seed);
    let data = traffic::generate(&feature_set, &config);
    let (rows, uas) = data.rows_and_user_agents();
    TrainingSet::from_rows(rows, uas).expect("generated window is well-formed")
}

/// Best-of-`reps` wall time of `f`, in seconds, plus the last product.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let value = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps is positive"))
}

/// Windows kept in flight per replay — under the server's shed limit so
/// shedding can never perturb the verdict streams the fidelity leg
/// compares.
const PIPELINE_DEPTH: usize = 4;

/// Replays the pool once through one server in pipelined
/// [`MAX_BATCH_PER_GUARD`]-frame windows; returns the concatenated
/// verdict bytes (pool order) and the frames/sec of the pass.
fn replay(server: &RiskServerHandle, pool: &[Vec<u8>], sequence: &[usize]) -> (Vec<u8>, f64) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect to risk server");
    stream.set_nodelay(true).expect("set nodelay");
    let windows: Vec<&[usize]> = sequence.chunks(MAX_BATCH_PER_GUARD).collect();
    let mut verdicts = vec![0u8; sequence.len() * VERDICT_LEN];
    let mut wire = Vec::new();
    let mut write_window = |stream: &mut TcpStream, window: &[usize]| {
        wire.clear();
        for &idx in window {
            let frame = &pool[idx];
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).expect("write window");
    };
    let started = Instant::now();
    for window in windows.iter().take(PIPELINE_DEPTH) {
        write_window(&mut stream, window);
    }
    let mut offset = 0;
    for (r, window) in windows.iter().enumerate() {
        let bytes = window.len() * VERDICT_LEN;
        stream
            .read_exact(&mut verdicts[offset..offset + bytes])
            .expect("read window verdicts");
        offset += bytes;
        if let Some(next) = windows.get(r + PIPELINE_DEPTH) {
            write_window(&mut stream, next);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    (verdicts, sequence.len() as f64 / elapsed.max(1e-9))
}

fn main() {
    let opts = parse_options();
    println!(
        "bench_retrain: seed {:#x}, {} training sessions, {} window sessions, {} epochs, \
         best of {}, {} replay frames",
        opts.seed, opts.sessions, opts.window, opts.epochs, opts.reps, opts.frames
    );

    let (serving, _data) = train_paper_model(ExpOptions {
        sessions: opts.sessions,
        seed: opts.seed,
    });
    let window = generate_window(opts.window, opts.seed.wrapping_add(1));

    // Timing leg: the same retrain window through both fit paths.
    let (full_secs, _full) = time_best(opts.reps, || {
        TrainedModel::fit(
            fingerprint::FeatureSet::table8(),
            &window,
            TrainConfig::default(),
        )
        .expect("full fit on the retrain window")
    });
    let (refit_secs, candidate) = time_best(opts.reps, || {
        serving
            .refit_streaming(&window, opts.epochs, &ThreadPool::serial())
            .expect("streaming refit on the retrain window")
    });
    let refit_speedup = full_secs / refit_secs.max(1e-9);
    println!(
        "  full fit {:>8.3}s   streaming refit {:>8.3}s   speedup {:.1}x",
        full_secs, refit_secs, refit_speedup
    );

    // The replay pool: same-distribution live traffic, a third seed.
    let traffic_config = TrafficConfig::paper_training()
        .with_sessions(opts.frames)
        .with_seed(opts.seed.wrapping_add(2));
    let replay_traffic = traffic::generate(&fingerprint::FeatureSet::table8(), &traffic_config);
    let pool: Vec<Vec<u8>> = replay_traffic
        .sessions
        .iter()
        .map(|s| {
            let sub = fingerprint::Submission {
                session_id: s.session_id,
                user_agent: s.claimed.to_ua_string(),
                values: s.values.clone(),
            };
            fingerprint::encode_submission(&sub)
                .expect("generated submission encodes")
                .to_vec()
        })
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x5EED);
    let sequence: Vec<usize> = (0..opts.frames)
        .map(|_| rng.gen_range(0..pool.len()))
        .collect();

    // Shadow leg: no verdict cache, so every replay frame is assessed —
    // and, while the shadow is attached, double-scored.
    let server = start_risk_server_with(
        "127.0.0.1:0",
        Detector::new(serving.clone()),
        RiskServerConfig::default(),
    )
    .expect("start risk server");
    let registry_dir =
        std::env::temp_dir().join(format!("polygraph-bench-retrain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let mut orch = Orchestrator::new(
        &server,
        ModelRegistry::open(&registry_dir).expect("open bench registry"),
        OrchestratorConfig {
            train: TrainConfig::default(),
            refit_epochs: opts.epochs,
            swap: SwapPolicy::PublishAndSwap,
            shadow: Some(ShadowConfig {
                max_divergence: 1.0, // the bench *measures* agreement; the gate judges it
                required_checkpoints: 1,
                min_compared: 1,
            }),
            ..Default::default()
        },
    );

    let (baseline_verdicts, baseline_fps) = replay(&server, &pool, &sequence);
    orch.adopt_shadow(candidate);
    let (shadow_verdicts, shadow_fps) = replay(&server, &pool, &sequence);
    assert_eq!(
        shadow_verdicts, baseline_verdicts,
        "attaching a shadow changed the live verdict stream"
    );
    let (compared, diverged) = server.shadow_counts().expect("shadow attached");
    let agreement = if compared > 0 {
        1.0 - diverged as f64 / compared as f64
    } else {
        0.0
    };
    println!(
        "  serve path: {:>9.0} frames/s alone, {:>9.0} frames/s shadowing \
         ({} compared, {} diverged, agreement {:.4})",
        baseline_fps, shadow_fps, compared, diverged, agreement
    );

    let outcome = orch
        .checkpoint(&window, &[])
        .expect("promotion checkpoint succeeds");
    let promoted_version = match outcome {
        RetrainOutcome::ShadowPromoted { version, .. } => version,
        other => panic!("expected a promotion, got {other:?}"),
    };
    let (promoted_verdicts, _) = replay(&server, &pool, &sequence);
    server.shutdown();

    // Fidelity leg: an independent from-scratch streaming refit on the
    // same window must serve the exact bytes the promoted shadow serves.
    let rerun = serving
        .refit_streaming(&window, opts.epochs, &ThreadPool::serial())
        .expect("from-scratch streaming refit");
    let control = start_risk_server_with(
        "127.0.0.1:0",
        Detector::new(rerun),
        RiskServerConfig::default(),
    )
    .expect("start control server");
    let (control_verdicts, _) = replay(&control, &pool, &sequence);
    control.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);
    let verdicts_identical = promoted_verdicts == control_verdicts;
    println!(
        "  promoted version {}: verdict stream identical to from-scratch refit: {}",
        promoted_version, verdicts_identical
    );
    assert!(
        verdicts_identical,
        "promoted shadow and from-scratch refit verdict streams diverged"
    );

    let json = serde_json::json!({
        "schema": "polygraph.bench_retrain.v1",
        "seed": opts.seed,
        "training_sessions": opts.sessions as u64,
        "window_sessions": opts.window as u64,
        "refit_epochs": opts.epochs as u64,
        "reps": opts.reps as u64,
        "full_fit_secs": full_secs,
        "refit_secs": refit_secs,
        "refit_speedup": refit_speedup,
        "shadow": {
            "frames": opts.frames as u64,
            "baseline_frames_per_sec": baseline_fps,
            "shadow_frames_per_sec": shadow_fps,
            "compared": compared,
            "diverged": diverged,
            "agreement": agreement,
            "promoted_version": promoted_version,
        },
        "verdicts_identical": verdicts_identical,
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render bench json");
    if let Some(path) = &opts.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(path, rendered + "\n").expect("write bench json");
        println!("  wrote {path}");
    } else {
        println!("{rendered}");
    }
}
