//! The risk-assessment TCP service.
//!
//! Each connection streams length-prefixed fingerprint submission frames
//! (the same format the collection service accepts) and receives one
//! fixed-size [`Verdict`] per frame. The serving detector sits behind an
//! `Arc<RwLock<…>>` so the [`crate::orchestrator`] can swap in a
//! retrained model without interrupting traffic — the paper's "ongoing
//! system enhancements … minimises delays during user interaction"
//! property (§6.5).
//!
//! ## Backends
//!
//! Two interchangeable connection cores sit behind
//! [`RiskServerConfig::backend`]:
//!
//! * [`ServerBackend::Threaded`] — one OS thread per connection (the
//!   original core, still the default).
//! * [`ServerBackend::Reactor`] — per-core acceptor shards, each running
//!   a readiness-driven event loop over non-blocking sockets
//!   ([`crate::reactor`]) with an explicit per-connection state machine
//!   ([`crate::reactor::ConnMachine`]), so one shard thread serves
//!   thousands of connections.
//!
//! Both backends run the same private batch path (`process_buffered`)
//! over the same [`crate::framing::FrameAccumulator`] parse state, so
//! their verdict byte streams and counter identities are exactly equal —
//! pinned by the backend-parametrized conformance suites and raced on
//! identical seeded traffic by `bench_serving`.
//!
//! ## Observability
//!
//! Every counter and latency measurement lives in a `polygraph-obs`
//! [`Registry`] (see [`metric_names`] for the full catalogue). Clients
//! can pull a snapshot over the wire with a `STATS` request frame
//! ([`fingerprint::wire::encode_stats_request`]), answered in request
//! order with a JSON snapshot; in-process callers use
//! [`RiskServerHandle::snapshot`]. The registry's clock is injected
//! ([`RiskServerConfig::clock`]), so tests drive a deterministic
//! `TestClock` and production uses the monotonic wall clock.
//!
//! ## Connection lifecycle
//!
//! * Finished connection workers are reaped (joined and counted) on
//!   every acceptor iteration — a long-running server does not
//!   accumulate dead `JoinHandle`s.
//! * An idle keep-alive client that triggers the read timeout with *no
//!   partial frame buffered* stays connected (`server.idle_timeouts`
//!   counts the ticks); only a stalled partial frame fails the
//!   connection.
//! * Workers observe the server's stop flag each loop, so shutdown is
//!   bounded by roughly one read-timeout tick even with connected
//!   clients.
//!
//! ## Overload shedding
//!
//! A connection may pipeline more frames than the detector can assess
//! promptly. Instead of queueing unboundedly, each guard cycle assesses
//! up to [`MAX_BATCH_PER_GUARD`] frames and then answers any backlog
//! beyond [`RiskServerConfig::shed_limit`] immediately with
//! [`VerdictStatus::Degraded`] (`server.frames.shed`) — the degradation
//! ladder's "fast non-answer beats a slow answer" rung, consumed by
//! `RiskPolicy::on_unassessable`.

use crate::framing::{FrameAccumulator, FrameStatus};
use crate::proto::{encode_stats_response, Verdict, VerdictStatus};
use crate::reactor::{ConnMachine, Events, Interest, Poll, Token, Waker, WAKE_TOKEN};
use browser_engine::UserAgent;
use fingerprint::{decode_submission_view, is_stats_request, submission_cache_key};
use parking_lot::RwLock;
use polygraph_cache::{Lookup, VerdictCache};
use polygraph_core::{Assessment, Detector, PolygraphError, TrainedModel};
use polygraph_obs::{Clock, Counter, Gauge, Histogram, MonotonicClock, Registry, Snapshot};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Frames a connection worker may assess under a single read-guard
/// acquisition. Bounds both verdict latency for the frames at the back of
/// a drained batch and how long a pending model swap can be starved by
/// one busy connection.
pub const MAX_BATCH_PER_GUARD: usize = 32;

/// The metric names the risk server registers, grouped here so the wire
/// consumers and the docs share one catalogue.
pub mod metric_names {
    /// Submissions assessed (counter).
    pub const ASSESSED: &str = "server.frames.assessed";
    /// Assessments that flagged the session (counter).
    pub const FLAGGED: &str = "server.frames.flagged";
    /// Malformed frames answered with an error verdict (counter).
    pub const MALFORMED: &str = "server.frames.malformed";
    /// Detector swaps performed (counter).
    pub const SWAPS: &str = "server.swaps";
    /// Detector read-guard acquisitions taken to assess frames (counter).
    pub const BATCHES: &str = "server.batches";
    /// Per-batch assessment latency in µs (histogram).
    pub const BATCH_MICROS: &str = "server.assess.batch_micros";
    /// Submission frames per drained batch (histogram).
    pub const BATCH_FRAMES: &str = "server.assess.batch_frames";
    /// Bytes read off client sockets (counter).
    pub const BYTES_READ: &str = "server.bytes.read";
    /// Bytes written back to clients (counter).
    pub const BYTES_WRITTEN: &str = "server.bytes.written";
    /// Connections accepted (counter).
    pub const CONNECTIONS_OPENED: &str = "server.connections.opened";
    /// Connections that ended cleanly (counter).
    pub const CONNECTIONS_CLOSED: &str = "server.connections.closed";
    /// Connections that ended with an I/O or framing error (counter).
    pub const CONNECTIONS_ERRORED: &str = "server.connections.errored";
    /// Finished worker handles reaped by the acceptor loop (counter).
    pub const CONNECTIONS_REAPED: &str = "server.connections.reaped";
    /// Currently connected clients (gauge): incremented on accept,
    /// decremented when the worker thread or reactor slot retires.
    pub const CONNECTIONS_OPEN: &str = "server.connections.open";
    /// Read-timeout ticks survived by idle keep-alive clients (counter).
    pub const IDLE_TIMEOUTS: &str = "server.idle_timeouts";
    /// `STATS` request frames answered (counter).
    pub const STATS_REQUESTS: &str = "server.stats_requests";
    /// Frames answered `Degraded` by overload shedding instead of being
    /// queued behind the detector (counter).
    pub const SHED: &str = "server.frames.shed";
    /// Submission frames answered straight from the verdict cache
    /// (counter). Only registered when the cache is enabled
    /// ([`super::RiskServerConfig::cache_capacity`] > 0).
    pub const CACHE_HITS: &str = "cache.hits";
    /// Normal-path submission frames that had to be assessed by the
    /// detector: no cache entry, a stale-epoch entry, or an unkeyable
    /// frame (counter). Every normal-path submission is either a hit or
    /// a miss, so `hits + misses` balances against the verdict counters
    /// (see DESIGN.md §5g).
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Entries evicted by the CLOCK sweep to make room (counter).
    pub const CACHE_EVICTIONS: &str = "cache.evictions";
    /// Lookups that found an entry from an older model epoch (counter);
    /// a sub-count of `cache.misses`. Grows after every detector swap
    /// until the working set is re-assessed.
    pub const CACHE_STALE_EPOCH: &str = "cache.stale_epoch";
    /// Backlog frames the shed path answered from the cache instead of
    /// answering `Degraded` (counter); a sub-count of `cache.hits`.
    pub const CACHE_SHED_EXEMPT: &str = "cache.shed_exempt";
    /// Cache entries at the *current* model epoch — the only ones a
    /// lookup can hit (gauge). Drops to zero at a detector swap and
    /// refills as the working set is re-assessed; stale slots awaiting
    /// CLOCK eviction are deliberately excluded (they used to be
    /// counted, overreporting live entries after every swap).
    pub const CACHE_OCCUPANCY: &str = "cache.occupancy";
    /// Per-hit cache lookup latency in µs (histogram).
    pub const CACHE_HIT_MICROS: &str = "cache.hit_micros";
}

/// Which connection core serves accepted sockets. Both cores run the
/// identical batch/cache/shed path, so verdict byte streams and counter
/// identities are equal — only the concurrency model differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerBackend {
    /// One OS thread per connection with blocking reads (the original
    /// core). Simple, and still the default; caps out at a few thousand
    /// concurrent connections.
    #[default]
    Threaded,
    /// Readiness-driven multiplexed event loops ([`crate::reactor`]):
    /// [`RiskServerConfig::reactor_shards`] acceptor shards, each a
    /// single thread serving every connection it accepted through an
    /// explicit per-connection state machine over non-blocking sockets.
    Reactor,
}

/// Configuration of a risk server.
#[derive(Debug, Clone)]
pub struct RiskServerConfig {
    /// Socket read timeout: the idle-tick length. Also bounds how long a
    /// worker can take to notice shutdown, and the write timeout.
    pub read_timeout: Duration,
    /// Time source for every latency metric. Production keeps the
    /// default monotonic clock; tests inject a deterministic
    /// `TestClock` so snapshots are byte-reproducible.
    pub clock: Arc<dyn Clock>,
    /// Overload-shedding threshold: after a batch is taken, any complete
    /// frames still queued beyond this count are answered immediately
    /// with a [`VerdictStatus::Degraded`] verdict (no assessment, no
    /// detector lock) instead of queueing unboundedly. Each guard cycle
    /// still assesses up to [`MAX_BATCH_PER_GUARD`] frames normally, so a
    /// flooding connection keeps bounded goodput while its backlog drains
    /// in constant time.
    pub shed_limit: usize,
    /// Shard count of the verdict cache (rounded up to a power of two,
    /// clamped to [`polygraph_cache::MAX_SHARDS`]). Ignored while the
    /// cache is disabled.
    pub cache_shards: usize,
    /// Total verdict-cache capacity in entries across all shards. `0`
    /// (the default) disables the cache entirely: no cache metrics are
    /// registered, so snapshots — including the byte-diffed exposition
    /// golden — are unchanged, and every frame takes the detector path.
    pub cache_capacity: usize,
    /// Which connection core serves accepted sockets (default
    /// [`ServerBackend::Threaded`]).
    pub backend: ServerBackend,
    /// Acceptor-shard count for [`ServerBackend::Reactor`]: each shard is
    /// one event-loop thread with its own clone of the listener. `0` (the
    /// default) sizes to the machine's available parallelism, capped at 8.
    /// Ignored by the threaded backend.
    pub reactor_shards: usize,
    /// Serve cache-missing frames on the quantized fast path: the
    /// detector is compiled ([`Detector::quantize`]) at startup and on
    /// every [`RiskServerHandle::publish_model`], and the batch drain
    /// dispatches each miss batch through the fused fixed-point kernel.
    /// Off by default. Verdict streams are byte-identical either way —
    /// the fixed-point margin certificate falls any uncertain frame back
    /// to the staged f64 path (see `polygraph_ml::quant`).
    pub quantized: bool,
}

impl Default for RiskServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(5),
            clock: Arc::new(MonotonicClock::new()),
            shed_limit: 8 * MAX_BATCH_PER_GUARD,
            cache_shards: 8,
            cache_capacity: 0,
            backend: ServerBackend::Threaded,
            reactor_shards: 0,
            quantized: false,
        }
    }
}

/// Point-in-time counters of a running risk server, read from the
/// metrics registry. Plain values — a comparison or assertion needs no
/// atomics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RiskServerStats {
    /// Submissions assessed.
    pub assessed: u64,
    /// Assessments that flagged the session.
    pub flagged: u64,
    /// Malformed frames answered with an error verdict.
    pub malformed: u64,
    /// Detector swaps performed.
    pub swaps: u64,
    /// Detector read-guard acquisitions taken to assess frames. With
    /// pipelined clients this grows slower than `assessed`: each batch of
    /// up to [`MAX_BATCH_PER_GUARD`] queued frames shares one acquisition.
    pub batches: u64,
    /// Read-timeout ticks survived by idle keep-alive clients.
    pub idle_timeouts: u64,
    /// `STATS` request frames answered.
    pub stats_requests: u64,
    /// Frames answered `Degraded` by overload shedding.
    pub shed: u64,
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections that ended cleanly.
    pub connections_closed: u64,
    /// Connections that ended with an error.
    pub connections_errored: u64,
    /// Finished worker handles reaped by the acceptor loop.
    pub connections_reaped: u64,
    /// Currently connected clients (gauge: returns to zero once every
    /// connection has retired).
    pub connections_open: i64,
    /// Bytes read off client sockets.
    pub bytes_read: u64,
    /// Bytes written back to clients.
    pub bytes_written: u64,
    /// Submission frames answered straight from the verdict cache
    /// (0 while the cache is disabled; likewise below).
    pub cache_hits: u64,
    /// Normal-path submission frames the cache could not answer.
    pub cache_misses: u64,
    /// Cache entries evicted by the CLOCK sweep.
    pub cache_evictions: u64,
    /// Lookups that found a stale-epoch entry (sub-count of misses).
    pub cache_stale_epoch: u64,
    /// Shed-path frames answered from cache instead of `Degraded`
    /// (sub-count of hits).
    pub cache_shed_exempt: u64,
}

/// The server's registered metric handles: resolved once at startup so
/// the per-frame path touches only atomics, never the registry map lock.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    assessed: Arc<Counter>,
    flagged: Arc<Counter>,
    malformed: Arc<Counter>,
    swaps: Arc<Counter>,
    batches: Arc<Counter>,
    batch_micros: Arc<Histogram>,
    batch_frames: Arc<Histogram>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    connections_opened: Arc<Counter>,
    connections_closed: Arc<Counter>,
    connections_errored: Arc<Counter>,
    connections_reaped: Arc<Counter>,
    connections_open: Arc<Gauge>,
    idle_timeouts: Arc<Counter>,
    stats_requests: Arc<Counter>,
    shed: Arc<Counter>,
}

impl ServerMetrics {
    /// Registers (or re-resolves) every server metric in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            assessed: registry.counter(metric_names::ASSESSED),
            flagged: registry.counter(metric_names::FLAGGED),
            malformed: registry.counter(metric_names::MALFORMED),
            swaps: registry.counter(metric_names::SWAPS),
            batches: registry.counter(metric_names::BATCHES),
            batch_micros: registry.histogram(metric_names::BATCH_MICROS),
            batch_frames: registry.histogram(metric_names::BATCH_FRAMES),
            bytes_read: registry.counter(metric_names::BYTES_READ),
            bytes_written: registry.counter(metric_names::BYTES_WRITTEN),
            connections_opened: registry.counter(metric_names::CONNECTIONS_OPENED),
            connections_closed: registry.counter(metric_names::CONNECTIONS_CLOSED),
            connections_errored: registry.counter(metric_names::CONNECTIONS_ERRORED),
            connections_reaped: registry.counter(metric_names::CONNECTIONS_REAPED),
            connections_open: registry.gauge(metric_names::CONNECTIONS_OPEN),
            idle_timeouts: registry.counter(metric_names::IDLE_TIMEOUTS),
            stats_requests: registry.counter(metric_names::STATS_REQUESTS),
            shed: registry.counter(metric_names::SHED),
            registry,
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn stats(&self) -> RiskServerStats {
        // Cache counters are filled in by `RiskServerHandle::stats` when
        // the cache layer exists; from here they are zero.
        RiskServerStats {
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_stale_epoch: 0,
            cache_shed_exempt: 0,
            assessed: self.assessed.get(),
            flagged: self.flagged.get(),
            malformed: self.malformed.get(),
            swaps: self.swaps.get(),
            batches: self.batches.get(),
            idle_timeouts: self.idle_timeouts.get(),
            stats_requests: self.stats_requests.get(),
            shed: self.shed.get(),
            connections_opened: self.connections_opened.get(),
            connections_closed: self.connections_closed.get(),
            connections_errored: self.connections_errored.get(),
            connections_reaped: self.connections_reaped.get(),
            connections_open: self.connections_open.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }
}

/// The verdict cache plus its resolved metric handles. Constructed (and
/// its metrics registered) only when [`RiskServerConfig::cache_capacity`]
/// is non-zero, so a cache-disabled server's snapshot is byte-identical
/// to the pre-cache exposition golden.
#[derive(Debug)]
struct CacheLayer {
    cache: VerdictCache<Verdict>,
    clock: Arc<dyn Clock>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    stale_epoch: Arc<Counter>,
    shed_exempt: Arc<Counter>,
    occupancy: Arc<Gauge>,
    hit_micros: Arc<Histogram>,
}

impl CacheLayer {
    fn new(registry: &Registry, clock: Arc<dyn Clock>, shards: usize, capacity: usize) -> Self {
        Self {
            cache: VerdictCache::new(shards, capacity),
            clock,
            hits: registry.counter(metric_names::CACHE_HITS),
            misses: registry.counter(metric_names::CACHE_MISSES),
            evictions: registry.counter(metric_names::CACHE_EVICTIONS),
            stale_epoch: registry.counter(metric_names::CACHE_STALE_EPOCH),
            shed_exempt: registry.counter(metric_names::CACHE_SHED_EXEMPT),
            occupancy: registry.gauge(metric_names::CACHE_OCCUPANCY),
            hit_micros: registry.histogram(metric_names::CACHE_HIT_MICROS),
        }
    }

    /// Normal-path lookup: every submission frame is charged as exactly
    /// one hit or one miss (unkeyable and stale-epoch frames are misses),
    /// so the cache counters balance against the verdict counters. A hit
    /// also charges `local` — to the client a cached answer *is* an
    /// assessment.
    fn lookup_for_assess(&self, frame: &[u8], local: &mut LocalCounters) -> Option<Verdict> {
        let Some(key) = submission_cache_key(frame) else {
            self.misses.inc();
            return None;
        };
        let start = self.clock.now_micros();
        match self.cache.lookup(key) {
            Lookup::Hit(v) => {
                self.hits.inc();
                self.hit_micros
                    .record(self.clock.now_micros().saturating_sub(start));
                local.assessed += 1;
                if v.flagged {
                    local.flagged += 1;
                }
                Some(v)
            }
            Lookup::Stale => {
                self.stale_epoch.inc();
                self.misses.inc();
                None
            }
            Lookup::Miss => {
                self.misses.inc();
                None
            }
        }
    }

    /// Shed-path lookup: a backlog frame the cache can answer is served
    /// (hit + shed-exempt) with no detector lock — consistent with the
    /// shedding contract, which only promises not to *queue*. A frame
    /// the cache cannot answer charges nothing here; the caller answers
    /// `Degraded` and charges `server.frames.shed`.
    fn lookup_shed(&self, frame: &[u8]) -> Option<Verdict> {
        let key = submission_cache_key(frame)?;
        let start = self.clock.now_micros();
        match self.cache.lookup(key) {
            Lookup::Hit(v) => {
                self.hits.inc();
                self.shed_exempt.inc();
                self.hit_micros
                    .record(self.clock.now_micros().saturating_sub(start));
                Some(v)
            }
            Lookup::Stale | Lookup::Miss => None,
        }
    }

    /// Caches an assessed verdict under the epoch read *before* the
    /// detector guard was taken. Error verdicts are never cached — a
    /// malformed frame must stay malformed-on-arrival, and a shed frame
    /// is never cached at all (it is never assessed).
    fn store(&self, frame: &[u8], epoch: u64, verdict: Verdict) {
        if verdict.status != VerdictStatus::Assessed {
            return;
        }
        let Some(key) = submission_cache_key(frame) else {
            return;
        };
        if self.cache.insert(key, epoch, verdict).evicted {
            self.evictions.inc();
        }
    }

    fn publish_occupancy(&self) {
        // Current-epoch entries only: stale slots cannot serve a hit, so
        // gauging them would overreport the live cache after every swap.
        let occ = self.cache.current_occupancy().min(i64::MAX as usize) as i64;
        self.occupancy.set(occ);
    }
}

/// Per-connection counters, folded into the shared [`ServerMetrics`]
/// once per drained batch instead of once per frame.
#[derive(Debug, Default)]
struct LocalCounters {
    assessed: usize,
    flagged: usize,
    malformed: usize,
}

impl LocalCounters {
    fn fold_into(&self, metrics: &ServerMetrics) {
        if self.assessed > 0 {
            metrics.assessed.add(self.assessed as u64);
        }
        if self.flagged > 0 {
            metrics.flagged.add(self.flagged as u64);
        }
        if self.malformed > 0 {
            metrics.malformed.add(self.malformed as u64);
        }
    }
}

/// Handle to a running risk server.
pub struct RiskServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    detector: Arc<RwLock<Detector>>,
    metrics: Arc<ServerMetrics>,
    cache: Option<Arc<CacheLayer>>,
    /// The shadow-candidate slot shared with every connection worker;
    /// `None` (the common case) costs one uncontended read-guard check
    /// per batch.
    shadow: Arc<RwLock<Option<ShadowScorer>>>,
    /// Whether published models are compiled onto the quantized fast
    /// path ([`RiskServerConfig::quantized`]).
    quantized: bool,
    /// Registry version of the serving model; `0` while the server still
    /// serves its boot detector (no versioned publish yet). Stored after
    /// the swap, so a reader observing version `v` is guaranteed the
    /// serving detector is at least `v` — fleet rollout relies on this
    /// to prove a node has (or has not) been reached.
    model_version: Arc<AtomicU64>,
    /// One self-pipe waker per reactor shard (empty for the threaded
    /// backend), fired at shutdown so every shard leaves its poll within
    /// one cycle instead of waiting out a tick.
    wakers: Vec<Waker>,
    /// The acceptor thread (threaded backend) or the shard event-loop
    /// threads (reactor backend).
    workers: Vec<thread::JoinHandle<()>>,
}

impl RiskServerHandle {
    /// The listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time copy of the shared counters.
    pub fn stats(&self) -> RiskServerStats {
        let mut stats = self.metrics.stats();
        if let Some(cache) = &self.cache {
            stats.cache_hits = cache.hits.get();
            stats.cache_misses = cache.misses.get();
            stats.cache_evictions = cache.evictions.get();
            stats.cache_stale_epoch = cache.stale_epoch.get();
            stats.cache_shed_exempt = cache.shed_exempt.get();
        }
        stats
    }

    /// The verdict-cache model epoch, or `None` while the cache is
    /// disabled. Advances on every [`Self::swap_detector`].
    pub fn cache_epoch(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.cache.epoch())
    }

    /// The server's metrics registry (counters, histograms, spans). The
    /// orchestrator records its drift/retrain metrics here so one `STATS`
    /// frame exposes the whole pipeline.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(self.metrics.registry())
    }

    /// A full metrics snapshot for in-process callers — the same data a
    /// `STATS` wire frame returns.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.registry().snapshot()
    }

    /// A handle to the serving detector slot (for the orchestrator).
    pub fn detector_slot(&self) -> Arc<RwLock<Detector>> {
        Arc::clone(&self.detector)
    }

    /// Atomically replaces the serving detector. In-flight assessments
    /// finish on the old model; the next frame uses the new one. With the
    /// verdict cache enabled this also invalidates every cached verdict
    /// by bumping the model epoch — O(1), no shard draining; stale
    /// entries lazily miss.
    ///
    /// Ordering matters: the epoch is bumped *after* the detector write
    /// guard is released. A concurrent batch that assessed under the old
    /// model read its insert epoch before taking the detector read guard
    /// — i.e. before this write guard could have been acquired — so its
    /// entries always carry a pre-bump epoch and can never be served at
    /// the new one. The benign race (a new-model verdict tagged with the
    /// old epoch) costs one extra miss, never a stale answer.
    pub fn swap_detector(&self, detector: Detector) {
        *self.detector.write() = detector;
        self.metrics.swaps.inc();
        if let Some(cache) = &self.cache {
            cache.cache.bump_epoch();
        }
    }

    /// Builds and publishes a fresh serving detector from a trained
    /// model — the quantize-at-publish step. On a server configured
    /// with [`RiskServerConfig::quantized`] the detector is compiled
    /// onto the fused fixed-point path before the swap; compilation is
    /// best-effort here, because a retrained model the compiler rejects
    /// must still replace the old one — it then serves on the staged
    /// path, which answers identically (just slower). Everything
    /// [`Self::swap_detector`] guarantees (atomic swap, epoch bump)
    /// applies unchanged.
    pub fn publish_model(&self, model: TrainedModel) {
        let mut detector = Detector::new(model);
        if self.quantized {
            let _ = detector.quantize();
        }
        self.swap_detector(detector);
    }

    /// [`Self::publish_model`] tagged with the registry version the
    /// model was published under, so fleet rollout (and its tests) can
    /// ask which model a node is serving. The version is stored *after*
    /// the swap: observing `active_model_version() == v` proves the
    /// serving detector is at least version `v`.
    pub fn publish_model_versioned(&self, model: TrainedModel, version: u64) {
        self.publish_model(model);
        self.model_version.store(version, Ordering::SeqCst);
    }

    /// The registry version stored by the last
    /// [`Self::publish_model_versioned`], or `0` while the server still
    /// serves its boot detector.
    pub fn active_model_version(&self) -> u64 {
        self.model_version.load(Ordering::SeqCst)
    }

    /// Attaches `model` as a shadow candidate on the live serve path.
    /// From the next batch on, every decoded session is scored by both
    /// the serving detector and the candidate; the candidate's verdicts
    /// are discarded after comparison, so nothing the client observes
    /// changes — only the `orchestrator.shadow.compared` /
    /// `orchestrator.shadow.diverged` counters move. On a
    /// [`RiskServerConfig::quantized`] server the candidate is compiled
    /// onto the same fast path (best-effort, exactly as
    /// [`Self::publish_model`] does), so the comparison exercises the
    /// code path the candidate would serve on if promoted.
    pub fn attach_shadow(&self, model: TrainedModel) {
        let mut detector = Detector::new(model);
        if self.quantized {
            let _ = detector.quantize();
        }
        let registry = self.metrics.registry();
        let scorer = ShadowScorer {
            detector: Arc::new(detector),
            compared: registry.counter(crate::orchestrator::metric_names::SHADOW_COMPARED),
            diverged: registry.counter(crate::orchestrator::metric_names::SHADOW_DIVERGED),
        };
        *self.shadow.write() = Some(scorer);
    }

    /// Detaches the shadow candidate, if any; double-scoring stops with
    /// the next batch. The shadow counters stay registered and keep
    /// their totals — callers track a candidate's window by delta from
    /// the values read at attach time.
    pub fn detach_shadow(&self) {
        *self.shadow.write() = None;
    }

    /// Whether a shadow candidate is currently attached.
    pub fn shadow_attached(&self) -> bool {
        self.shadow.read().is_some()
    }

    /// Cumulative `(compared, diverged)` shadow counters, or `None`
    /// when no candidate is attached.
    pub fn shadow_counts(&self) -> Option<(u64, u64)> {
        self.shadow
            .read()
            .as_ref()
            .map(|s| (s.compared.get(), s.diverged.get()))
    }

    /// Stops the acceptor *and* every connection worker, then joins them.
    /// Threaded workers check the stop flag on every loop, so this
    /// returns within roughly one read-timeout tick even with
    /// connected-but-silent clients; reactor shards are woken through
    /// their self-pipes and exit within one poll cycle.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            let _ = waker.wake();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A retrain candidate riding the live serve path. The candidate
/// assesses the same decoded sessions as the serving detector; its
/// verdicts are compared and then discarded — a shadow verdict never
/// reaches the wire. Both counters are resolved at attach time, so a
/// server that never shadows registers nothing and its metrics
/// exposition is byte-identical to a build without this feature.
struct ShadowScorer {
    /// Behind an `Arc` so the batch path can clone the handle out of
    /// the slot and assess with no lock held.
    detector: Arc<Detector>,
    /// `orchestrator.shadow.compared` — sessions double-scored.
    compared: Arc<Counter>,
    /// `orchestrator.shadow.diverged` — double-scored sessions where
    /// the candidate disagreed with the serving verdict.
    diverged: Arc<Counter>,
}

/// Everything a connection worker needs, cloned per accept.
#[derive(Clone)]
struct ConnContext {
    detector: Arc<RwLock<Detector>>,
    metrics: Arc<ServerMetrics>,
    cache: Option<Arc<CacheLayer>>,
    shadow: Arc<RwLock<Option<ShadowScorer>>>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    shed_limit: usize,
}

/// Starts a risk server on `addr` (use `127.0.0.1:0` for an ephemeral
/// port) serving `detector`, with the default production configuration.
pub fn start_risk_server(addr: &str, detector: Detector) -> io::Result<RiskServerHandle> {
    start_risk_server_with(addr, detector, RiskServerConfig::default())
}

/// [`start_risk_server`] with explicit timeouts and an injected clock.
pub fn start_risk_server_with(
    addr: &str,
    detector: Detector,
    config: RiskServerConfig,
) -> io::Result<RiskServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let mut detector = detector;
    if config.quantized {
        // The initial model is compiled up front; failure here is a
        // configuration error (the operator asked for the fast path and
        // this model cannot provide it), not something to paper over.
        detector
            .quantize()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let detector = Arc::new(RwLock::new(detector));
    let registry = Arc::new(Registry::new(Arc::clone(&config.clock)));
    let cache = (config.cache_capacity > 0).then(|| {
        Arc::new(CacheLayer::new(
            &registry,
            Arc::clone(&config.clock),
            config.cache_shards,
            config.cache_capacity,
        ))
    });
    let metrics = Arc::new(ServerMetrics::new(registry));
    let shadow: Arc<RwLock<Option<ShadowScorer>>> = Arc::new(RwLock::new(None));

    let ctx = ConnContext {
        detector: Arc::clone(&detector),
        metrics: Arc::clone(&metrics),
        cache: cache.clone(),
        shadow: Arc::clone(&shadow),
        stop: Arc::clone(&stop),
        read_timeout: config.read_timeout,
        shed_limit: config.shed_limit,
    };

    let mut wakers = Vec::new();
    let mut workers = Vec::new();
    match config.backend {
        ServerBackend::Threaded => {
            workers.push(thread::spawn(move || acceptor_loop(listener, ctx)));
        }
        ServerBackend::Reactor => {
            let shards = resolve_reactor_shards(config.reactor_shards);
            let clock = Arc::clone(&config.clock);
            for _ in 0..shards {
                let shard_listener = listener.try_clone()?;
                let poll = Poll::new()?;
                wakers.push(poll.waker()?);
                let shard_ctx = ctx.clone();
                let shard_clock = Arc::clone(&clock);
                workers.push(thread::spawn(move || {
                    reactor_shard_loop(shard_listener, poll, shard_ctx, shard_clock)
                }));
            }
        }
    }

    Ok(RiskServerHandle {
        addr: local,
        stop,
        detector,
        metrics,
        cache,
        shadow,
        quantized: config.quantized,
        model_version: Arc::new(AtomicU64::new(0)),
        wakers,
        workers,
    })
}

/// Shard count for the reactor backend: the configured value, or (at 0)
/// one shard per available core, capped at 8.
fn resolve_reactor_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

fn acceptor_loop(listener: TcpListener, ctx: ConnContext) {
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !ctx.stop.load(Ordering::SeqCst) {
        // Reap finished workers every iteration so a long-running server
        // holds handles only for live connections.
        reap_finished(&mut workers, &ctx.metrics);
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.metrics.connections_opened.inc();
                ctx.metrics.connections_open.add(1);
                let conn = ctx.clone();
                workers.push(thread::spawn(move || {
                    match serve_connection(stream, &conn) {
                        Ok(()) => conn.metrics.connections_closed.inc(),
                        Err(_) => conn.metrics.connections_errored.inc(),
                    }
                    conn.metrics.connections_open.add(-1);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    // Final joins at shutdown: workers observe the stop flag within one
    // read-timeout tick. These are not counted as reaps — `reaped` means
    // reclaimed while the server kept running.
    for w in workers {
        let _ = w.join();
    }
}

fn reap_finished(workers: &mut Vec<thread::JoinHandle<()>>, metrics: &ServerMetrics) {
    if workers.iter().all(|h| !h.is_finished()) {
        return;
    }
    let mut live = Vec::with_capacity(workers.len());
    for handle in workers.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
            metrics.connections_reaped.inc();
        } else {
            live.push(handle);
        }
    }
    *workers = live;
}

/// Whether a read error is the socket timeout firing (Unix reports
/// `WouldBlock` for `SO_RCVTIMEO`, Windows `TimedOut`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// How many buffered complete frames make both backends stop reading and
/// process: one batch plus the shed threshold plus one, so an overloaded
/// connection's backlog becomes *visible* instead of queueing invisibly
/// (and unboundedly) in kernel buffers.
fn drain_target(ctx: &ConnContext) -> usize {
    MAX_BATCH_PER_GUARD
        .saturating_add(ctx.shed_limit)
        .saturating_add(1)
}

fn serve_connection(mut stream: TcpStream, ctx: &ConnContext) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    // A peer that stops reading must not block shutdown forever either.
    stream.set_write_timeout(Some(ctx.read_timeout))?;
    stream.set_nodelay(true)?;
    let metrics = &ctx.metrics;
    let mut acc = FrameAccumulator::new();
    let mut memo = UaMemo::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Blocking phase: wait until at least one complete frame (or an
        // oversize header) is buffered. Timeout ticks with an empty
        // buffer are keep-alive idleness, not failures; a timeout with a
        // stalled partial frame is.
        while acc.status() == FrameStatus::NeedMore {
            if ctx.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // peer closed at (or mid-) frame boundary
                Ok(n) => {
                    metrics.bytes_read.add(n as u64);
                    acc.extend(chunk.get(..n).unwrap_or_default());
                }
                Err(e) if is_timeout(&e) => {
                    if acc.is_empty() {
                        metrics.idle_timeouts.inc();
                        continue;
                    }
                    return Err(e); // partial frame stalled past the timeout
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if ctx.stop.load(Ordering::SeqCst) {
            return Ok(());
        }

        // Drain phase: pull in whatever else the client already pipelined,
        // without blocking, so the whole backlog shares one read guard.
        let target = drain_target(ctx);
        stream.set_nonblocking(true)?;
        loop {
            if acc.ready_frames() >= target {
                break;
            }
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    metrics.bytes_read.add(n as u64);
                    acc.extend(chunk.get(..n).unwrap_or_default());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    stream.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        stream.set_nonblocking(false)?;

        let outcome = process_buffered(&mut acc, &mut memo, ctx);
        if outcome.close {
            // Cannot resynchronise past an unread oversize body: flush the
            // answered frames best-effort, then close cleanly.
            let _ = stream.write_all(&outcome.out);
            return Ok(());
        }
        stream.write_all(&outcome.out)?;
    }
}

/// Outcome of one shared batch cycle over a connection's buffered input.
struct BatchOutcome {
    /// Reply bytes in frame order: batch verdicts, then any shed-path
    /// answers, then (on oversize) the final malformed verdict.
    out: Vec<u8>,
    /// Parsing stopped at an oversize header: after flushing `out` the
    /// connection must close — there is no way to resynchronise.
    close: bool,
}

/// The assess–reply–shed cycle both backends run once at least one
/// complete frame (or an oversize header) is buffered. Splits one batch
/// off `acc`, answers it (cache lookups, then one detector read guard for
/// the misses, replies in frame order), sheds any backlog beyond the shed
/// limit, and appends the closing malformed verdict when parsing stopped
/// at an oversize header. Every counter is charged here, identically for
/// both cores — the backends differ only in how `out` reaches the socket.
fn process_buffered(
    acc: &mut FrameAccumulator,
    memo: &mut UaMemo,
    ctx: &ConnContext,
) -> BatchOutcome {
    let metrics = &ctx.metrics;
    let (frames, mut oversize) = acc.split(MAX_BATCH_PER_GUARD);

    // Cache lookup phase, then one detector read guard for whatever
    // the cache could not answer; a model swap therefore lands
    // between batches, never inside one. `STATS` frames are answered
    // outside the guard. `verdicts` stays in submission order: a
    // `Some` is a cache hit, a `None` a miss the detector phase
    // fills in place.
    let n_submissions = frames.iter().filter(|f| !is_stats_request(f)).count();
    let mut verdicts: Vec<Option<Verdict>> = Vec::with_capacity(n_submissions);
    if n_submissions > 0 {
        let mut local = LocalCounters::default();
        match ctx.cache.as_deref() {
            Some(cache) => {
                for f in frames.iter().filter(|f| !is_stats_request(f)) {
                    verdicts.push(cache.lookup_for_assess(f, &mut local));
                }
            }
            None => verdicts.resize_with(n_submissions, || None),
        }

        let n_misses = verdicts.iter().filter(|v| v.is_none()).count();
        if n_misses > 0 {
            let span = polygraph_obs::Span::on(
                Arc::clone(&metrics.batch_micros),
                Arc::clone(metrics.registry().clock()),
            );
            // Decode the missed frames BEFORE taking the guard: frames
            // that fail to decode never need the detector at all, and
            // the surviving sessions feed one batched dispatch, so the
            // read guard is held for exactly one `assess_many` call per
            // batch — on a quantized server that is one fused
            // fixed-point pass over the whole batch.
            let mut sessions: Vec<(Vec<f64>, UserAgent)> = Vec::with_capacity(n_misses);
            let mut miss_decoded: Vec<bool> = Vec::with_capacity(n_misses);
            {
                let mut slots = verdicts.iter();
                for f in frames.iter().filter(|f| !is_stats_request(f)) {
                    let Some(slot) = slots.next() else { break };
                    if slot.is_none() {
                        match decode_session(f, memo) {
                            Some(session) => {
                                sessions.push(session);
                                miss_decoded.push(true);
                            }
                            None => miss_decoded.push(false),
                        }
                    }
                }
            }
            // The insert epoch is read BEFORE the detector guard is
            // taken: if a swap lands in between, these verdicts are
            // tagged with the pre-swap epoch and harmlessly miss
            // forever — a stale verdict can never be served at the
            // new epoch (see `RiskServerHandle::swap_detector`).
            let insert_epoch = ctx.cache.as_deref().map(|c| c.cache.epoch());
            let assessments = {
                let guard = ctx.detector.read();
                guard.assess_many(&sessions)
            };
            shadow_compare(ctx, &sessions, &assessments);
            // Fill the miss slots in frame order, charging exactly the
            // counters the single-frame path charges.
            let mut results = assessments.into_iter();
            let mut was_decoded = miss_decoded.into_iter();
            let mut slots = verdicts.iter_mut();
            for f in frames.iter().filter(|f| !is_stats_request(f)) {
                let Some(slot) = slots.next() else { break };
                if slot.is_some() {
                    continue;
                }
                let v = if was_decoded.next() == Some(true) {
                    match results.next() {
                        Some(result) => verdict_from_assessment(result, &mut local),
                        // Unreachable: `assess_many` returns one result
                        // per session, in order.
                        None => {
                            local.malformed += 1;
                            Verdict::error(VerdictStatus::Malformed)
                        }
                    }
                } else {
                    local.malformed += 1;
                    Verdict::error(VerdictStatus::Malformed)
                };
                if let (Some(cache), Some(epoch)) = (ctx.cache.as_deref(), insert_epoch) {
                    cache.store(f, epoch, v);
                }
                *slot = Some(v);
            }
            span.finish();
            metrics.batches.inc();
            metrics.batch_frames.record(n_misses as u64);
        }
        if let Some(cache) = ctx.cache.as_deref() {
            cache.publish_occupancy();
        }
        local.fold_into(metrics);
    }

    // Replies go back in frame order. A `STATS` frame sees every
    // assessment of its own batch: the local counters fold before the
    // snapshot renders.
    let mut out = Vec::with_capacity(verdicts.len() * crate::proto::VERDICT_LEN);
    // Every slot is `Some` by now (hits filled in the lookup phase,
    // misses in the detector phase), so flattening preserves order.
    let mut next_verdict = verdicts.iter().flatten();
    let mut stats_json: Option<Vec<u8>> = None;
    for f in &frames {
        if is_stats_request(f) {
            metrics.stats_requests.inc();
            let json = stats_json
                .get_or_insert_with(|| metrics.registry().snapshot().render_json().into_bytes());
            out.extend_from_slice(&encode_stats_response(json));
        } else if let Some(v) = next_verdict.next() {
            out.extend_from_slice(&v.encode());
        }
    }
    metrics.bytes_written.add(out.len() as u64);

    // Overload shedding: complete frames still queued beyond the shed
    // threshold after this batch are answered *now* with `Degraded` —
    // no assessment, no detector lock — instead of waiting behind
    // future batches. The risk verdict is one signal in a risk-based
    // authentication flow; under overload a fast "could not assess"
    // beats an unbounded queue. `STATS` frames in the backlog are
    // still answered with a real snapshot (they are cheap and lock
    // nothing). A backlog frame the verdict cache can answer is
    // served from cache — also detector-free, so it respects the
    // shedding contract — while a cache-missed shed frame is never
    // assessed and therefore never cached.
    if !oversize && acc.ready_frames() > ctx.shed_limit {
        let (backlog, backlog_oversize) = acc.split(usize::MAX);
        let mut shed_out = Vec::with_capacity(backlog.len() * crate::proto::VERDICT_LEN);
        let mut shed_count = 0u64;
        for f in &backlog {
            if is_stats_request(f) {
                metrics.stats_requests.inc();
                let json = metrics.registry().snapshot().render_json().into_bytes();
                shed_out.extend_from_slice(&encode_stats_response(&json));
            } else if let Some(v) = ctx.cache.as_deref().and_then(|c| c.lookup_shed(f)) {
                shed_out.extend_from_slice(&v.encode());
            } else {
                shed_out.extend_from_slice(&Verdict::error(VerdictStatus::Degraded).encode());
                shed_count += 1;
            }
        }
        metrics.shed.add(shed_count);
        metrics.bytes_written.add(shed_out.len() as u64);
        out.extend_from_slice(&shed_out);
        if backlog_oversize {
            oversize = true;
        }
    }

    if oversize {
        metrics.malformed.inc();
        let err = Verdict::error(VerdictStatus::Malformed).encode();
        metrics.bytes_written.add(err.len() as u64);
        out.extend_from_slice(&err);
        return BatchOutcome { out, close: true };
    }
    BatchOutcome { out, close: false }
}

/// Double-scores one batch's decoded sessions against the shadow
/// candidate, if one is attached. The slot guard is released before the
/// candidate assesses (the detector handle is cloned out), so shadow
/// scoring never holds a lock and can never extend a pending model
/// swap's wait. Shadow verdicts are discarded after comparison — only
/// the agreement counters survive.
fn shadow_compare(
    ctx: &ConnContext,
    sessions: &[(Vec<f64>, UserAgent)],
    live: &[Result<Assessment, PolygraphError>],
) {
    if sessions.is_empty() {
        return;
    }
    let Some((detector, compared, diverged)) = ({
        let slot = ctx.shadow.read();
        slot.as_ref().map(|s| {
            (
                Arc::clone(&s.detector),
                Arc::clone(&s.compared),
                Arc::clone(&s.diverged),
            )
        })
    }) else {
        return;
    };
    let shadow = detector.assess_many(sessions);
    let disagreements = live
        .iter()
        .zip(&shadow)
        .filter(|(a, b)| !verdicts_agree(a, b))
        .count();
    compared.add(sessions.len() as u64);
    if disagreements > 0 {
        diverged.add(disagreements as u64);
    }
}

/// Whether a live and a shadow assessment would encode the same wire
/// verdict — the same comparison shape the fleet rollout divergence
/// probe uses, so shadow agreement and rollout agreement measure one
/// thing.
fn verdicts_agree(
    live: &Result<Assessment, PolygraphError>,
    shadow: &Result<Assessment, PolygraphError>,
) -> bool {
    match (live, shadow) {
        (Ok(a), Ok(b)) => a.flagged == b.flagged && a.risk_factor == b.risk_factor,
        (Err(_), Err(_)) => true,
        _ => false,
    }
}

/// Poll granularity of a reactor shard: bounds accept latency and the
/// idle-sweep granularity. Shutdown is *not* coupled to this tick — the
/// self-pipe waker interrupts a poll within one scan interval.
const REACTOR_TICK: Duration = Duration::from_millis(5);

/// One reactor connection slot: the owned non-blocking socket plus its
/// state machine and activity bookkeeping.
struct ConnSlot {
    stream: TcpStream,
    machine: ConnMachine,
    /// Per-connection user-agent parse memo (see [`UaMemo`]).
    memo: UaMemo,
    /// Clock micros of the last read/write progress (or idle tick).
    last_activity: u64,
    /// The interest currently registered with the poll.
    interest: Interest,
}

/// How a slot leaves (or stays in) the connection table.
enum SlotFate {
    Keep,
    Closed,
    Errored,
}

/// One reactor shard: accepts from its clone of the shared non-blocking
/// listener and serves every accepted connection on this single thread
/// through per-connection [`ConnMachine`]s. Counter semantics mirror the
/// threaded backend exactly: idle keep-alive ticks survive, stalled
/// partial frames and stuck writes error, slots reclaimed while serving
/// count as reaped, and slots closed by shutdown count only as closed.
fn reactor_shard_loop(
    listener: TcpListener,
    mut poll: Poll,
    ctx: ConnContext,
    clock: Arc<dyn Clock>,
) {
    let mut events = Events::new();
    let mut conns: BTreeMap<usize, ConnSlot> = BTreeMap::new();
    let mut next_token: usize = 0;
    let timeout_us = ctx.read_timeout.as_micros().min(u64::MAX as u128) as u64;
    'run: while !ctx.stop.load(Ordering::SeqCst) {
        // Accept every pending connection. All shards share the
        // non-blocking listener, so `WouldBlock` may just mean another
        // shard got there first.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    ctx.metrics.connections_opened.inc();
                    let token = Token(next_token);
                    next_token = next_token.wrapping_add(1);
                    if next_token == WAKE_TOKEN.0 {
                        next_token = 0;
                    }
                    let prepared = stream
                        .set_nonblocking(true)
                        .and_then(|()| stream.set_nodelay(true))
                        .and_then(|()| poll.register(&stream, token, Interest::READABLE));
                    if prepared.is_err() {
                        ctx.metrics.connections_errored.inc();
                        continue;
                    }
                    ctx.metrics.connections_open.add(1);
                    conns.insert(
                        token.0,
                        ConnSlot {
                            stream,
                            machine: ConnMachine::new(),
                            memo: UaMemo::new(),
                            last_activity: clock.now_micros(),
                            interest: Interest::READABLE,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break 'run,
            }
        }

        if poll.poll(&mut events, REACTOR_TICK).is_err() {
            break 'run; // self-pipe broken: the shard cannot be woken safely
        }
        if ctx.stop.load(Ordering::SeqCst) {
            break 'run;
        }

        let now = clock.now_micros();
        let mut retired: Vec<(usize, SlotFate)> = Vec::new();
        for event in events.iter() {
            if event.token == WAKE_TOKEN {
                continue;
            }
            let Some(slot) = conns.get_mut(&event.token.0) else {
                continue;
            };
            match drive_slot(slot, event.readable, &ctx, now) {
                SlotFate::Keep => {}
                fate => retired.push((event.token.0, fate)),
            }
        }

        // Idle / stall sweep — the reactor mirror of the threaded
        // backend's read-timeout semantics: an idle keep-alive client
        // survives (and is counted); a stalled partial frame or a write
        // the peer will not drain fails the connection.
        for (&token, slot) in conns.iter_mut() {
            if now.saturating_sub(slot.last_activity) < timeout_us {
                continue;
            }
            if slot.machine.has_partial_input() || slot.machine.wants_write() {
                retired.push((token, SlotFate::Errored));
            } else {
                ctx.metrics.idle_timeouts.inc();
                slot.last_activity = now;
            }
        }

        for (token, fate) in retired {
            // A slot can be nominated twice (event + sweep); the first
            // removal wins.
            if conns.remove(&token).is_none() {
                continue;
            }
            poll.deregister(Token(token));
            match fate {
                SlotFate::Errored => ctx.metrics.connections_errored.inc(),
                SlotFate::Closed | SlotFate::Keep => ctx.metrics.connections_closed.inc(),
            }
            ctx.metrics.connections_open.add(-1);
            // Reclaimed while the shard kept serving — the reactor's
            // analogue of the threaded backend's worker reap.
            ctx.metrics.connections_reaped.inc();
        }

        // Re-arm interests to match what each surviving machine needs.
        for (&token, slot) in conns.iter_mut() {
            let desired = Interest {
                readable: !slot.machine.saw_eof() && !slot.machine.close_requested(),
                writable: slot.machine.wants_write(),
            };
            if desired != slot.interest && poll.reregister(Token(token), desired).is_ok() {
                slot.interest = desired;
            }
        }
    }

    // Shutdown (or a fatal listener/self-pipe error): remaining
    // connections close cleanly, exactly like threaded workers observing
    // the stop flag. Not counted as reaped — `reaped` means reclaimed
    // while the server kept running.
    for _slot in conns.into_values() {
        ctx.metrics.connections_closed.inc();
        ctx.metrics.connections_open.add(-1);
    }
}

/// Runs one readiness event's worth of work on a slot: non-blocking
/// reads into the state machine, the shared batch path over whatever
/// frames became complete, and a flush of queued output.
fn drive_slot(slot: &mut ConnSlot, readable: bool, ctx: &ConnContext, now: u64) -> SlotFate {
    let metrics = &ctx.metrics;
    if readable && !slot.machine.saw_eof() && !slot.machine.close_requested() {
        let target = drain_target(ctx);
        let mut chunk = [0u8; 4096];
        loop {
            if slot.machine.frames_ready() >= target {
                break;
            }
            match slot.stream.read(&mut chunk) {
                Ok(0) => {
                    slot.machine.on_eof();
                    break;
                }
                Ok(n) => {
                    metrics.bytes_read.add(n as u64);
                    slot.machine.on_bytes(chunk.get(..n).unwrap_or_default());
                    slot.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return SlotFate::Errored,
            }
        }
    }

    // Process every complete frame now buffered, one batch cycle at a
    // time — identical batch/shed accounting to the threaded backend.
    while (slot.machine.frames_ready() > 0 || slot.machine.input_oversize())
        && !slot.machine.close_requested()
    {
        let outcome = process_buffered(slot.machine.accumulator_mut(), &mut slot.memo, ctx);
        slot.machine.queue_output(&outcome.out, outcome.close);
        if outcome.close {
            break;
        }
    }

    // Flush whatever is queued; `WouldBlock` pauses and re-arms write
    // interest, so a slow reader never blocks the shard.
    if slot.machine.wants_write() {
        let mut sink = &slot.stream;
        match slot.machine.flush_into(&mut sink) {
            Ok(progress) => {
                if progress.wrote > 0 {
                    slot.last_activity = now;
                }
            }
            Err(_) => {
                // A write failure after a close was requested matches the
                // threaded path's best-effort final flush: a clean close.
                return if slot.machine.close_requested() {
                    SlotFate::Closed
                } else {
                    SlotFate::Errored
                };
            }
        }
    }

    if slot.machine.should_close() {
        return SlotFate::Closed;
    }
    if slot.machine.saw_eof() && !slot.machine.wants_write() && slot.machine.frames_ready() == 0 {
        // Peer closed and everything answerable is answered — a clean
        // close even mid-partial-frame, matching the threaded `Ok(0)`.
        return SlotFate::Closed;
    }
    SlotFate::Keep
}

/// Decodes a submission frame and assesses it against the serving model.
/// Shared by the TCP path and in-process callers (the CLI). Takes the
/// detector lock for the single frame and charges the counters in
/// `registry`; the TCP path amortises both over whole batches.
pub fn assess_frame(frame: &[u8], detector: &RwLock<Detector>, registry: &Registry) -> Verdict {
    let mut local = LocalCounters::default();
    let verdict = {
        let guard = detector.read();
        assess_frame_with(frame, &guard, &mut local)
    };
    if local.assessed > 0 {
        registry
            .counter(metric_names::ASSESSED)
            .add(local.assessed as u64);
    }
    if local.flagged > 0 {
        registry
            .counter(metric_names::FLAGGED)
            .add(local.flagged as u64);
    }
    if local.malformed > 0 {
        registry
            .counter(metric_names::MALFORMED)
            .add(local.malformed as u64);
    }
    verdict
}

/// Slots in a connection's [`UaMemo`]. The distinct user-agent
/// population per connection is tiny (a few dozen catalogue releases),
/// so a small direct-mapped table hits almost always.
const UA_MEMO_SLOTS: usize = 64;

/// FNV-1a 64-bit over `bytes` — the same fixed, platform-independent
/// hash family the verdict cache keys on (POLY-D004): never
/// `RandomState`, so replays behave identically in every process.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-connection memo of parsed user-agent strings, direct-mapped by
/// FNV-1a of the raw bytes.
///
/// Submission traffic repeats a tiny distinct UA population (the
/// paper's coarse-fingerprint premise), so the serve path pays the
/// multi-token sniffing parse once per distinct string per connection
/// instead of once per frame. Deterministic by construction: the fixed
/// hash picks a slot and an exact string comparison guards the hit, so
/// a collision merely re-parses — it can never mis-attribute a result.
#[derive(Debug)]
struct UaMemo {
    slots: Vec<Option<(String, UserAgent)>>,
}

impl UaMemo {
    fn new() -> Self {
        Self {
            slots: vec![None; UA_MEMO_SLOTS],
        }
    }

    /// Parses `ua`, answering from the memo when the exact string was
    /// seen before. Parse failures are not memoised (malformed frames
    /// are the rare path and already charged as such).
    fn parse(&mut self, ua: &str) -> Option<UserAgent> {
        let slot = (fnv1a64(ua.as_bytes()) % UA_MEMO_SLOTS as u64) as usize;
        if let Some(Some((cached, parsed))) = self.slots.get(slot) {
            if cached == ua {
                return Some(*parsed);
            }
        }
        let parsed = ua.parse::<UserAgent>().ok()?;
        if let Some(entry) = self.slots.get_mut(slot) {
            *entry = Some((ua.to_string(), parsed));
        }
        Some(parsed)
    }
}

/// Decodes a submission frame into an assessable session: feature row
/// plus claimed user-agent. `None` covers both failure modes the single
/// frame path answers `Malformed` for (undecodable frame, unparseable
/// user-agent string). Works from the borrowed wire view, so the only
/// per-frame allocation is the feature row itself.
fn decode_session(frame: &[u8], memo: &mut UaMemo) -> Option<(Vec<f64>, UserAgent)> {
    let view = decode_submission_view(frame).ok()?;
    let claimed = memo.parse(view.user_agent())?;
    let mut values = Vec::with_capacity(view.value_count());
    values.extend(view.values_u32().map(f64::from));
    Some((values, claimed))
}

/// Maps one assessment result onto the wire verdict, charging the local
/// counters — the single source of the verdict/counter semantics for
/// both the single-frame path and the batched miss drain.
fn verdict_from_assessment(
    result: Result<Assessment, PolygraphError>,
    local: &mut LocalCounters,
) -> Verdict {
    match result {
        Ok(a) => {
            local.assessed += 1;
            if a.flagged {
                local.flagged += 1;
            }
            Verdict {
                status: VerdictStatus::Assessed,
                flagged: a.flagged,
                risk_factor: a.risk_factor.min(u8::MAX as u32) as u8,
                predicted_cluster: a.predicted_cluster.min(u8::MAX as usize) as u8,
                expected_cluster: a.expected_cluster.map(|c| c.min(u8::MAX as usize) as u8),
            }
        }
        Err(_) => {
            local.malformed += 1;
            Verdict::error(VerdictStatus::SchemaMismatch)
        }
    }
}

/// Frame assessment against an already-borrowed detector, charging a local
/// counter set instead of the shared atomics.
fn assess_frame_with(frame: &[u8], detector: &Detector, local: &mut LocalCounters) -> Verdict {
    let mut memo = UaMemo::new();
    match decode_session(frame, &mut memo) {
        Some((values, claimed)) => {
            verdict_from_assessment(detector.assess(&values, claimed), local)
        }
        None => {
            local.malformed += 1;
            Verdict::error(VerdictStatus::Malformed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;
    use fingerprint::{encode_submission, FeatureSet, Submission};
    use polygraph_core::{TrainConfig, TrainedModel, TrainingSet};

    fn tiny_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (0.0, UserAgent::new(Vendor::Chrome, 60)),
            (10.0, UserAgent::new(Vendor::Chrome, 100)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    fn frame_for(values: Vec<u32>, ua: UserAgent) -> Vec<u8> {
        let sub = Submission {
            session_id: [9u8; 16],
            user_agent: ua.to_ua_string(),
            values,
        };
        encode_submission(&sub).unwrap().to_vec()
    }

    #[test]
    fn assess_frame_honest_and_lying() {
        let detector = RwLock::new(tiny_detector());
        let registry = Registry::monotonic();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&honest, &detector, &registry);
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);

        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&lying, &detector, &registry);
        assert!(v.flagged);
        assert_eq!(v.risk_factor, 20);
        assert_eq!(registry.counter(metric_names::ASSESSED).get(), 2);
        assert_eq!(registry.counter(metric_names::FLAGGED).get(), 1);
    }

    #[test]
    fn assess_frame_rejects_garbage_and_bad_ua() {
        let detector = RwLock::new(tiny_detector());
        let registry = Registry::monotonic();
        let v = assess_frame(&[1, 2, 3], &detector, &registry);
        assert_eq!(v.status, VerdictStatus::Malformed);

        let sub = Submission {
            session_id: [0u8; 16],
            user_agent: "curl/8.0".into(),
            values: vec![1, 2],
        };
        let frame = encode_submission(&sub).unwrap();
        let v = assess_frame(&frame, &detector, &registry);
        assert_eq!(v.status, VerdictStatus::Malformed);
        assert_eq!(registry.counter(metric_names::MALFORMED).get(), 2);
    }

    #[test]
    fn assess_frame_schema_mismatch() {
        let detector = RwLock::new(tiny_detector());
        let registry = Registry::monotonic();
        let frame = frame_for(vec![1, 2, 3, 4], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&frame, &detector, &registry);
        assert_eq!(v.status, VerdictStatus::SchemaMismatch);
    }

    #[test]
    fn pipelined_frames_drain_in_batches() {
        // Write many frames before reading a single verdict: the server
        // should answer all of them, in order, using far fewer guard
        // acquisitions than frames.
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let total = 100usize;
        let mut wire = Vec::new();
        for i in 0..total {
            let frame = if i % 2 == 0 { &honest } else { &lying };
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).unwrap();

        for i in 0..total {
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            let v = Verdict::decode(&buf).unwrap();
            assert_eq!(v.status, VerdictStatus::Assessed, "frame {i}");
            assert_eq!(v.flagged, i % 2 == 1, "verdicts must come back in order");
        }
        drop(stream);

        // Let the connection worker finish folding before reading stats.
        thread::sleep(Duration::from_millis(20));
        let stats = server.stats();
        assert_eq!(stats.assessed, total as u64);
        assert_eq!(stats.flagged, (total / 2) as u64);
        assert!(
            stats.batches >= 1 && stats.batches <= total as u64,
            "got {} batches",
            stats.batches
        );
        // The batch-size histogram reconciles with the counters exactly.
        let snap = server.snapshot();
        let h = snap.histograms.get(metric_names::BATCH_FRAMES).unwrap();
        assert_eq!(h.sum, stats.assessed);
        assert_eq!(h.count, stats.batches);
        assert!(stats.bytes_read as usize >= wire.len());
        assert!(stats.bytes_written as usize >= total * crate::proto::VERDICT_LEN);
        server.shutdown();
    }

    /// A server on the quantized fast path must answer the exact same
    /// reply bytes — and charge the exact same counters — as the staged
    /// default, across honest, lying, malformed, bad-UA, and
    /// wrong-width traffic.
    #[test]
    fn quantized_server_answers_byte_identically() {
        let frames = [
            frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100)),
            frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100)),
            frame_for(vec![0, 0], UserAgent::new(Vendor::Firefox, 100)),
            vec![9, 9, 9], // undecodable → Malformed
            frame_for(vec![1, 2, 3, 4], UserAgent::new(Vendor::Chrome, 100)), // width → SchemaMismatch
            frame_for(vec![10, 10], UserAgent::new(Vendor::Firefox, 100)),
        ];
        let run = |quantized: bool| {
            let config = RiskServerConfig {
                quantized,
                ..Default::default()
            };
            let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut wire = Vec::new();
            for _ in 0..8 {
                for frame in &frames {
                    wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
                    wire.extend_from_slice(frame);
                }
            }
            stream.write_all(&wire).unwrap();
            let mut replies = vec![0u8; 8 * frames.len() * crate::proto::VERDICT_LEN];
            stream.read_exact(&mut replies).unwrap();
            drop(stream);
            thread::sleep(Duration::from_millis(20));
            let stats = server.stats();
            server.shutdown();
            (replies, stats)
        };
        let (staged_bytes, staged_stats) = run(false);
        let (quant_bytes, quant_stats) = run(true);
        assert_eq!(
            staged_bytes, quant_bytes,
            "verdict streams must be byte-identical"
        );
        assert_eq!(staged_stats.assessed, quant_stats.assessed);
        assert_eq!(staged_stats.flagged, quant_stats.flagged);
        assert_eq!(staged_stats.malformed, quant_stats.malformed);
    }

    #[test]
    fn overload_backlog_is_shed_with_degraded() {
        // shed_limit 0: after each assessed batch, every frame still
        // queued is answered `Degraded` instead of waiting.
        let config = RiskServerConfig {
            shed_limit: 0,
            ..Default::default()
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let total = 400usize;
        let mut wire = Vec::new();
        for i in 0..total {
            let frame = if i % 2 == 0 { &honest } else { &lying };
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).unwrap();

        let mut assessed = 0usize;
        let mut degraded = 0usize;
        for i in 0..total {
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            let v = Verdict::decode(&buf).unwrap();
            match v.status {
                VerdictStatus::Assessed => {
                    // Responses stay in frame order, so an assessed
                    // frame's verdict is position-determined — shedding
                    // must never produce a garbage verdict.
                    assert_eq!(v.flagged, i % 2 == 1, "frame {i} out of order");
                    assessed += 1;
                }
                VerdictStatus::Degraded => {
                    assert!(!v.flagged);
                    degraded += 1;
                }
                other => panic!("frame {i}: unexpected status {other:?}"),
            }
        }
        assert_eq!(assessed + degraded, total);
        assert!(degraded > 0, "a 400-frame burst at shed_limit 0 must shed");
        assert!(assessed > 0, "each guard cycle still assesses a batch");

        drop(stream);
        thread::sleep(Duration::from_millis(20));
        let stats = server.stats();
        assert_eq!(stats.assessed as usize, assessed);
        assert_eq!(stats.shed as usize, degraded);
        assert_eq!(stats.malformed, 0);
        server.shutdown();
    }

    #[test]
    fn sequential_clients_never_shed() {
        let config = RiskServerConfig {
            shed_limit: 0,
            ..Default::default()
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let frame = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        // Strictly request/response: there is never a queued backlog, so
        // even the most aggressive shed_limit degrades nothing.
        for _ in 0..10 {
            stream
                .write_all(&(frame.len() as u16).to_le_bytes())
                .unwrap();
            stream.write_all(&frame).unwrap();
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            let v = Verdict::decode(&buf).unwrap();
            assert_eq!(v.status, VerdictStatus::Assessed);
        }
        drop(stream);
        thread::sleep(Duration::from_millis(20));
        assert_eq!(server.stats().shed, 0);
        server.shutdown();
    }

    #[test]
    fn server_round_trip_over_tcp() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let frame = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        stream
            .write_all(&(frame.len() as u16).to_le_bytes())
            .unwrap();
        stream.write_all(&frame).unwrap();
        let mut buf = [0u8; crate::proto::VERDICT_LEN];
        stream.read_exact(&mut buf).unwrap();
        let v = Verdict::decode(&buf).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn stats_frame_returns_snapshot_in_order() {
        use crate::proto::{decode_stats_response_header, STATS_RESPONSE_HEADER_LEN};
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        // verdict, STATS, verdict — pipelined in one write.
        let frame = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let stats_req = fingerprint::encode_stats_request();
        let mut wire = Vec::new();
        for body in [&frame[..], &stats_req[..], &frame[..]] {
            wire.extend_from_slice(&(body.len() as u16).to_le_bytes());
            wire.extend_from_slice(body);
        }
        stream.write_all(&wire).unwrap();

        let mut buf = [0u8; crate::proto::VERDICT_LEN];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(
            Verdict::decode(&buf).unwrap().status,
            VerdictStatus::Assessed
        );

        let mut header = [0u8; STATS_RESPONSE_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let len = decode_stats_response_header(&header).unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        let json = String::from_utf8(body).unwrap();
        assert!(json.contains("\"server.frames.assessed\""));
        assert!(json.contains("\"server.stats_requests\":1"));

        stream.read_exact(&mut buf).unwrap();
        assert_eq!(
            Verdict::decode(&buf).unwrap().status,
            VerdictStatus::Assessed,
            "the verdict after the STATS frame must still arrive, in order"
        );
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn detector_swap_changes_verdicts_live() {
        // Model A knows Chrome 60 at (0,0). Model B is trained with
        // Chrome 60 at (10,10) instead — after the swap the same frame
        // flips from honest to flagged.
        let detector_a = tiny_detector();
        let server = start_risk_server("127.0.0.1:0", detector_a).unwrap();

        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (10.0, UserAgent::new(Vendor::Chrome, 60)),
            (0.0, UserAgent::new(Vendor::Firefox, 60)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let detector_b = Detector::new(TrainedModel::fit(fs, &set, config).unwrap());

        let frame = frame_for(vec![0, 0], UserAgent::new(Vendor::Chrome, 60));
        let ask = |addr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            stream
                .write_all(&(frame.len() as u16).to_le_bytes())
                .unwrap();
            stream.write_all(&frame).unwrap();
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            Verdict::decode(&buf).unwrap()
        };

        assert!(
            !ask(server.local_addr()).flagged,
            "model A: (0,0) is Chrome 60"
        );
        server.swap_detector(detector_b);
        assert!(
            ask(server.local_addr()).flagged,
            "model B: (0,0) is Firefox territory"
        );
        assert_eq!(server.stats().swaps, 1);
        server.shutdown();
    }
}
