//! Offline vendored serde_json: text ⇄ [`Value`] plus the typed entry
//! points (`to_string`, `to_vec_pretty`, `from_str`, `from_slice`) and the
//! `json!` literal macro, all over the vendored `serde` tree model.
//!
//! Output is deterministic: objects are key-sorted maps, numbers print via
//! Rust's shortest-round-trip formatting, and the compact form never emits
//! newlines (the traffic store writes one JSON document per line).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Number, Value};

/// A parse or conversion failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises `value` to compact JSON (no newlines).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Compact JSON as bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Pretty JSON as bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses `s` and deserialises into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses UTF-8 `bytes` and deserialises into `T`.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// -------------------------------------------------------------- writing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (with optional surrounding whitespace).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected , or ] got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected , or }} got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?
            .char_indices();
        loop {
            let (idx, c) = chars
                .next()
                .ok_or_else(|| Error::new("unterminated string"))?;
            match c {
                '"' => {
                    self.pos += idx + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'u' => {
                            let hi = Self::hex4(&mut chars)?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                match (chars.next(), chars.next()) {
                                    (Some((_, '\\')), Some((_, 'u'))) => {
                                        let lo = Self::hex4(&mut chars)?;
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    }
                                    _ => return Err(Error::new("lone high surrogate")),
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{other}")));
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(chars: &mut std::str::CharIndices<'_>) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let (_, c) = chars.next().ok_or_else(|| Error::new("short \\u escape"))?;
            code = code * 16
                + c.to_digit(16)
                    .ok_or_else(|| Error::new(format!("bad hex digit {c:?}")))?;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

// ---------------------------------------------------------------- json!

/// Builds a [`Value`] from a JSON-shaped literal with interpolated Rust
/// expressions — the classic serde_json TT-muncher, trimmed to this
/// workspace's uses.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: @array [built elems] rest...
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entry munching: @object map (partial key) (rest) (copy)
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- primary forms
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": { "b": 1, "c": [true, "x"] },
            "d": null,
            "arr": [[1, 2], [3]],
            "f": 1.5,
            "trailing": 7,
        });
        assert_eq!(v["a"]["b"], json!(1));
        assert_eq!(v["a"]["c"][0], Value::Bool(true));
        assert_eq!(v["a"]["c"][1].as_str(), Some("x"));
        assert!(v["d"].is_null());
        assert_eq!(v["arr"][1][0], json!(3));
        assert_eq!(v["f"].as_f64(), Some(1.5));
    }

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "s": "line\nbreak \"quoted\" back\\slash",
            "n": [0, -7, 18446744073709551615u64, 0.25, 1e-3],
            "deep": { "x": {}, "y": [] },
        });
        let text = to_string(&v).unwrap();
        assert!(!text.contains('\n'), "compact output must be single-line");
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip() {
        let v = json!({ "a": [1, 2], "b": { "c": true } });
        let bytes = to_vec_pretty(&v).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x, "shortest round-trip must be exact");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<bool>("\"no\"").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        let round = to_string(&v).unwrap();
        assert_eq!(parse_value(&round).unwrap(), v);
    }
}
