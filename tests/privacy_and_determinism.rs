//! Integration: the privacy invariants of §7.4 and the reproducibility
//! guarantees the whole evaluation rests on.

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::ml::privacy::{anonymity_sets, normalized_entropy, shannon_entropy};
use browser_polygraph::traffic::{generate, TrafficConfig};

const SESSIONS: usize = 15_000;

fn window(seed_offset: u64) -> browser_polygraph::traffic::TrafficDataset {
    let features = FeatureSet::table8();
    let base = TrafficConfig::paper_training().with_sessions(SESSIONS);
    let seeded = base.clone().with_seed(base.seed + seed_offset);
    generate(&features, &seeded)
}

#[test]
fn fingerprints_cannot_track_users() {
    // §7.4 / Appendix A: coarse-grained fingerprints sit in large
    // anonymity sets; uniqueness is negligible.
    let data = window(0);
    let fingerprints: Vec<Vec<u32>> = data.sessions.iter().map(|s| s.values.clone()).collect();
    let report = anonymity_sets(&fingerprints);
    assert!(
        report.unique_fraction < 0.01,
        "unique fraction {} far above the paper's 0.3%",
        report.unique_fraction
    );
    assert!(
        report.large_set_fraction > 0.85,
        "large-set fraction {} too low (paper: 95.6%)",
        report.large_set_fraction
    );
}

#[test]
fn no_feature_outranks_the_user_agent() {
    // Table 7's headline: the user-agent string is the most diverse
    // attribute collected, so the fingerprint adds no tracking power.
    let data = window(0);
    let ua_labels: Vec<String> = data.sessions.iter().map(|s| s.claimed.label()).collect();
    let h_ua = shannon_entropy(&ua_labels);
    let features = FeatureSet::table8();
    for idx in 0..features.len() {
        let column: Vec<u32> = data.sessions.iter().map(|s| s.values[idx]).collect();
        let h = shannon_entropy(&column);
        assert!(
            h <= h_ua + 1e-9,
            "feature {} entropy {h} exceeds the user-agent's {h_ua}",
            features.names()[idx]
        );
    }
    // And normalised entropy keeps the same ordering.
    let hn_ua = normalized_entropy(&ua_labels);
    let element: Vec<u32> = data.sessions.iter().map(|s| s.values[0]).collect();
    assert!(normalized_entropy(&element) <= hn_ua);
}

#[test]
fn same_seed_same_world_same_verdicts() {
    let features = FeatureSet::table8();
    let run = |_: ()| {
        let data = window(0);
        let (rows, uas) = data.rows_and_user_agents();
        let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
        let model =
            TrainedModel::fit(features.clone(), &training, TrainConfig::default()).expect("fit");
        let detector = Detector::new(model);
        data.sessions
            .iter()
            .take(500)
            .map(|s| detector.assess(&s.row(), s.claimed).expect("assess"))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(()),
        run(()),
        "two identically-seeded runs must agree exactly"
    );
}

#[test]
fn model_survives_serialisation() {
    let features = FeatureSet::table8();
    let data = window(3);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model = TrainedModel::fit(features, &training, TrainConfig::default()).expect("fit");
    let json = serde_json::to_string(&model).expect("serialise");
    let restored: TrainedModel = serde_json::from_str(&json).expect("deserialise");

    let a = Detector::new(model);
    let b = Detector::new(restored);
    for s in data.sessions.iter().take(500) {
        assert_eq!(
            a.assess(&s.row(), s.claimed).expect("assess"),
            b.assess(&s.row(), s.claimed).expect("assess"),
            "restored model must assess identically"
        );
    }
}

#[test]
fn different_worlds_preserve_the_findings() {
    // The headline result is seed-robust: across worlds, flagged sessions
    // remain a sub-percent slice strongly enriched in detectable fraud.
    for offset in [11u64, 23] {
        let data = window(offset);
        let features = FeatureSet::table8();
        let (rows, uas) = data.rows_and_user_agents();
        let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
        let model = TrainedModel::fit(features, &training, TrainConfig::default()).expect("fit");
        let detector = Detector::new(model);

        let mut flagged = 0usize;
        let mut flagged_fraud = 0usize;
        for s in &data.sessions {
            if detector
                .assess(&s.row(), s.claimed)
                .expect("assess")
                .flagged
            {
                flagged += 1;
                flagged_fraud += s.truth.is_detectable_fraud() as usize;
            }
        }
        let rate = flagged as f64 / data.sessions.len() as f64;
        assert!(
            (0.001..0.02).contains(&rate),
            "seed {offset}: flag rate {rate}"
        );
        let precision_vs_base = (flagged_fraud as f64 / flagged.max(1) as f64)
            / (data
                .sessions
                .iter()
                .filter(|s| s.truth.is_detectable_fraud())
                .count() as f64
                / data.sessions.len() as f64);
        assert!(
            precision_vs_base > 20.0,
            "seed {offset}: flagged batch only {precision_vs_base}x enriched"
        );
    }
}
