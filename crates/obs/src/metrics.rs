//! The three metric kinds: counters, gauges, and fixed-bucket histograms.
//!
//! All of them are lock-free atomics, safe to hammer from connection
//! workers. The histogram layout is *fixed at compile time* —
//! power-of-two microsecond buckets — so a snapshot's shape never depends
//! on the values observed, which keeps the text exposition byte-stable
//! across platforms and runs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set / add / sub).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: upper bounds `2^0 .. 2^20` microseconds
/// (1 µs … ~1.05 s) plus one overflow bucket.
pub const BUCKETS: usize = 22;

/// Index of the overflow (`+inf`) bucket.
pub const OVERFLOW_BUCKET: usize = BUCKETS - 1;

/// The inclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i < OVERFLOW_BUCKET {
        Some(1u64 << i)
    } else {
        None
    }
}

/// The bucket a value lands in: the smallest `i` with
/// `value <= bucket_bound(i)`, or the overflow bucket.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2.
    let idx = (u64::BITS - (value - 1).leading_zeros()) as usize;
    idx.min(OVERFLOW_BUCKET)
}

/// A fixed-bucket histogram of `u64` observations (microseconds on the
/// latency paths, frame counts on the batch-size path).
/// The observation count is *derived* from the bucket array rather than
/// kept as a third independent atomic: `record` used to bump buckets,
/// `count`, and `sum` as three separate `Relaxed` operations, so a
/// concurrent reader could observe bucket totals that disagreed with
/// `count`. With the count defined as the sum of the buckets, any copy
/// of the bucket array is self-consistent by construction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(b) = self.buckets.get(bucket_index(value)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations: the sum of the bucket counts. Derive the
    /// count from [`Histogram::bucket_counts`] when both are needed
    /// consistently — one copy, one identity.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts, in bound order.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| {
            self.buckets
                .get(i)
                .map(|b| b.load(Ordering::Relaxed))
                .unwrap_or(0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), OVERFLOW_BUCKET);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(10), Some(1024));
        assert_eq!(bucket_bound(20), Some(1 << 20));
        assert_eq!(bucket_bound(OVERFLOW_BUCKET), None);
    }

    #[test]
    fn every_value_lands_in_its_bound() {
        for v in (0..4096u64).chain([1 << 19, (1 << 20) - 1, 1 << 20]) {
            let i = bucket_index(v);
            if let Some(bound) = bucket_bound(i) {
                assert!(v <= bound, "{v} must be <= {bound}");
                if i > 0 {
                    let below = bucket_bound(i - 1).unwrap();
                    assert!(v > below, "{v} must be > {below} (bucket {i})");
                }
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::default();
        for v in [0, 1, 2, 1000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2_001_003);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 1); // 2
        assert_eq!(counts[10], 1); // 1000 <= 1024
        assert_eq!(counts[OVERFLOW_BUCKET], 1); // 2s > ~1.05s cap
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn snapshot_count_equals_bucket_sum_under_concurrent_recording() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let h = Arc::new(Histogram::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = t as u64;
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 5000);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        // Mid-traffic reads: counts only grow, and the derived count is
        // definitionally the bucket total of the same copy — the old
        // third atomic could disagree with the buckets it claimed to
        // total.
        let mut last = 0u64;
        for _ in 0..2000 {
            let buckets = h.bucket_counts();
            let total: u64 = buckets.iter().sum();
            assert!(total >= last, "bucket totals must be monotone");
            last = total;
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(h.count(), total);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(-9);
        assert_eq!(g.get(), -2);
    }
}
