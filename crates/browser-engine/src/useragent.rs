//! User-agent strings: the identity a browser *claims*.
//!
//! The paper's threat model assumes the attacker always sets the victim's
//! user-agent correctly (§4), so the user-agent is the one field the
//! detector treats as a *claim* to be verified, never as evidence.
//!
//! We model the desktop browsers the paper covers (Chrome, Firefox, Edge —
//! §8 "Verification of new browsers" explicitly scopes out mobile and
//! exotic engines) with faithful UA string formatting and a tolerant
//! parser.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Browser vendor as reported in the user-agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// Google Chrome.
    Chrome,
    /// Mozilla Firefox.
    Firefox,
    /// Microsoft Edge (both EdgeHTML- and Chromium-based).
    Edge,
}

impl Vendor {
    /// All vendors the detector knows about.
    pub const ALL: [Vendor; 3] = [Vendor::Chrome, Vendor::Firefox, Vendor::Edge];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Chrome => "Chrome",
            Vendor::Firefox => "Firefox",
            Vendor::Edge => "Edge",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operating system as reported in the user-agent.
///
/// The coarse-grained features do not depend on the OS (property counts are
/// an engine attribute), which is exactly why the paper's fingerprints stay
/// below the user-agent's entropy. The OS still matters for UA formatting
/// and for the synthetic multi-OS sweeps of Appendix-5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Os {
    /// Windows 10.
    Windows10,
    /// Windows 11 (reported identically to Windows 10 in real UAs; kept
    /// distinct here for the Appendix-5 environment sweeps).
    Windows11,
    /// macOS Sonoma.
    MacOsSonoma,
    /// macOS Sequoia.
    MacOsSequoia,
    /// Desktop Linux.
    Linux,
}

impl Os {
    /// The UA platform token for this OS.
    pub fn ua_token(self) -> &'static str {
        match self {
            // Windows 11 deliberately reports "Windows NT 10.0".
            Os::Windows10 | Os::Windows11 => "Windows NT 10.0; Win64; x64",
            Os::MacOsSonoma => "Macintosh; Intel Mac OS X 10_15_7",
            Os::MacOsSequoia => "Macintosh; Intel Mac OS X 10_15_7",
            Os::Linux => "X11; Linux x86_64",
        }
    }
}

/// A parsed user-agent claim: vendor + major version + OS.
///
/// ```
/// use browser_engine::{UserAgent, Vendor};
///
/// let ua = UserAgent::new(Vendor::Chrome, 112);
/// let raw = ua.to_ua_string();
/// assert!(raw.contains("Chrome/112"));
/// let parsed: UserAgent = raw.parse().unwrap();
/// assert_eq!(parsed, ua);
/// assert_eq!(parsed.label(), "Chrome 112");
/// ```
///
/// Equality and hashing ignore the OS on purpose: the paper's cluster table
/// (Table 3) and the risk-factor algorithm (Algorithm 1) key on
/// vendor+version only.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UserAgent {
    /// Claimed vendor.
    pub vendor: Vendor,
    /// Claimed major version.
    pub version: u32,
    /// Claimed operating system.
    pub os: Os,
}

impl PartialEq for UserAgent {
    fn eq(&self, other: &Self) -> bool {
        self.vendor == other.vendor && self.version == other.version
    }
}
impl Eq for UserAgent {}

impl std::hash::Hash for UserAgent {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.vendor.hash(state);
        self.version.hash(state);
    }
}

impl PartialOrd for UserAgent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for UserAgent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.vendor, self.version).cmp(&(other.vendor, other.version))
    }
}

impl UserAgent {
    /// Creates a user-agent claim on Windows 10 (the dominant desktop OS in
    /// the paper's traffic; ~11% of daily sessions shared one Chrome-on-
    /// Windows-10 UA).
    pub fn new(vendor: Vendor, version: u32) -> Self {
        Self {
            vendor,
            version,
            os: Os::Windows10,
        }
    }

    /// Same claim on a specific OS.
    pub fn with_os(mut self, os: Os) -> Self {
        self.os = os;
        self
    }

    /// Short label such as `"Chrome 112"` — the form the paper's tables use.
    pub fn label(&self) -> String {
        format!("{} {}", self.vendor, self.version)
    }

    /// Renders the full `navigator.userAgent` string.
    pub fn to_ua_string(&self) -> String {
        let os = self.os.ua_token();
        match self.vendor {
            Vendor::Chrome => format!(
                "Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Chrome/{v}.0.0.0 Safari/537.36",
                v = self.version
            ),
            Vendor::Edge => {
                if self.version < 79 {
                    // EdgeHTML-era UA carries both Chrome and Edge tokens.
                    format!(
                        "Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) \
                         Chrome/64.0.3282.140 Safari/537.36 Edge/{v}.17134",
                        v = self.version
                    )
                } else {
                    format!(
                        "Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) \
                         Chrome/{v}.0.0.0 Safari/537.36 Edg/{v}.0.0.0",
                        v = self.version
                    )
                }
            }
            Vendor::Firefox => format!(
                "Mozilla/5.0 ({os}; rv:{v}.0) Gecko/20100101 Firefox/{v}.0",
                v = self.version
            ),
        }
    }
}

/// Error returned when a user-agent string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UaParseError {
    /// The offending input (truncated for display).
    pub input: String,
}

impl fmt::Display for UaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised user-agent: {:?}", self.input)
    }
}
impl std::error::Error for UaParseError {}

impl FromStr for UserAgent {
    type Err = UaParseError;

    /// Parses a raw `navigator.userAgent` string.
    ///
    /// Token priority follows real-world sniffing rules: `Edg/` and `Edge/`
    /// beat `Chrome/` (Chromium Edge carries both), and `Firefox/` is
    /// checked against a `Gecko/` engine token.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn version_after(s: &str, token: &str) -> Option<u32> {
            let start = s.find(token)? + token.len();
            let rest = &s[start..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        }
        let os = if s.contains("Windows NT") {
            Os::Windows10
        } else if s.contains("Mac OS X") {
            Os::MacOsSonoma
        } else {
            Os::Linux
        };
        let err = || UaParseError {
            input: s.chars().take(120).collect(),
        };

        if let Some(v) = version_after(s, "Edg/").or_else(|| version_after(s, "Edge/")) {
            return Ok(UserAgent {
                vendor: Vendor::Edge,
                version: v,
                os,
            });
        }
        if s.contains("Gecko/20100101") {
            if let Some(v) = version_after(s, "Firefox/") {
                return Ok(UserAgent {
                    vendor: Vendor::Firefox,
                    version: v,
                    os,
                });
            }
            return Err(err());
        }
        if let Some(v) = version_after(s, "Chrome/") {
            return Ok(UserAgent {
                vendor: Vendor::Chrome,
                version: v,
                os,
            });
        }
        Err(err())
    }
}

impl fmt::Display for UserAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_round_trip() {
        let ua = UserAgent::new(Vendor::Chrome, 112);
        let parsed: UserAgent = ua.to_ua_string().parse().unwrap();
        assert_eq!(parsed, ua);
        assert_eq!(parsed.version, 112);
    }

    #[test]
    fn firefox_round_trip() {
        let ua = UserAgent::new(Vendor::Firefox, 102).with_os(Os::Linux);
        let parsed: UserAgent = ua.to_ua_string().parse().unwrap();
        assert_eq!(parsed.vendor, Vendor::Firefox);
        assert_eq!(parsed.version, 102);
        assert_eq!(parsed.os, Os::Linux);
    }

    #[test]
    fn chromium_edge_not_mistaken_for_chrome() {
        let ua = UserAgent::new(Vendor::Edge, 110);
        let s = ua.to_ua_string();
        assert!(
            s.contains("Chrome/110"),
            "Edge UA carries a Chrome token: {s}"
        );
        let parsed: UserAgent = s.parse().unwrap();
        assert_eq!(parsed.vendor, Vendor::Edge);
        assert_eq!(parsed.version, 110);
    }

    #[test]
    fn edgehtml_ua_parses_as_edge() {
        let ua = UserAgent::new(Vendor::Edge, 18);
        let parsed: UserAgent = ua.to_ua_string().parse().unwrap();
        assert_eq!(parsed.vendor, Vendor::Edge);
        assert_eq!(parsed.version, 18);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!("curl/8.0".parse::<UserAgent>().is_err());
        assert!("".parse::<UserAgent>().is_err());
        assert!("Mozilla/5.0 Gecko/20100101".parse::<UserAgent>().is_err());
    }

    #[test]
    fn equality_ignores_os() {
        let a = UserAgent::new(Vendor::Chrome, 100).with_os(Os::Windows10);
        let b = UserAgent::new(Vendor::Chrome, 100).with_os(Os::MacOsSonoma);
        assert_eq!(a, b);
        use std::collections::HashSet;
        let set: HashSet<UserAgent> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn label_matches_paper_table_format() {
        assert_eq!(UserAgent::new(Vendor::Firefox, 119).label(), "Firefox 119");
    }

    #[test]
    fn windows_11_reports_nt_10() {
        let ua = UserAgent::new(Vendor::Chrome, 119).with_os(Os::Windows11);
        assert!(ua.to_ua_string().contains("Windows NT 10.0"));
    }

    #[test]
    fn ordering_is_vendor_then_version() {
        let mut v = [
            UserAgent::new(Vendor::Firefox, 50),
            UserAgent::new(Vendor::Chrome, 100),
            UserAgent::new(Vendor::Chrome, 60),
        ];
        v.sort();
        assert_eq!(v[0].label(), "Chrome 60");
        assert_eq!(v[2].label(), "Firefox 50");
    }
}
