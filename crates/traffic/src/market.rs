//! Release adoption: which browsers are actually in use on a given day.
//!
//! FinOrg's traffic is dominated by recent Chrome with a long tail of old
//! releases (the paper saw 113 distinct releases in 4.5 months, some with
//! fewer than 100 sessions — the Chrome 81 / Edge 17 problem of §6.4.3).
//! The model: a vendor share times an adoption curve that spikes on the
//! newest releases and decays into a heavy tail.

use browser_engine::catalog::{releases_by, SimDate};
use browser_engine::{UserAgent, Vendor};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Desktop vendor shares in the simulated traffic.
pub fn vendor_share(vendor: Vendor) -> f64 {
    match vendor {
        Vendor::Chrome => 0.62,
        Vendor::Firefox => 0.26,
        Vendor::Edge => 0.12,
    }
}

/// Relative adoption weight of a release at `date`.
///
/// Three regimes, matching what FinOrg-style traffic actually looks like:
/// a fast-decaying spike (auto-updating users on the newest releases), a
/// mid-age tail (update laggards), and *legacy pins* — a sparse set of old
/// versions kept alive by enterprise images and kiosks. Pins are what give
/// the paper its sparse old user-agents ("in some cases less than 100
/// instances", §6.4.3); EdgeHTML survives exclusively as a pin.
pub fn adoption_weight(ua: UserAgent, date: SimDate) -> f64 {
    let age = browser_engine::catalog::release_date(ua)
        .months_until(date)
        .max(0) as f64;
    let spike = (-age / 1.2).exp();
    let mid_tail = 0.01 * (-age / 9.0).exp();
    let pinned = if ua.vendor == Vendor::Edge && ua.version < 20 {
        0.004 // EdgeHTML kiosks
    } else if release_is_pinned(ua) {
        0.002
    } else {
        0.0
    };
    vendor_share(ua.vendor) * (spike + mid_tail + pinned)
}

/// Marks a release as enterprise-pinned: the well-known long-lived
/// builds (Firefox ESR line, last-XP Chrome, kiosk images) plus ~1 in 8
/// of the remaining releases, deterministically.
fn release_is_pinned(ua: UserAgent) -> bool {
    const KNOWN_PINS: [(Vendor, u32); 8] = [
        (Vendor::Chrome, 63),   // kiosk images
        (Vendor::Chrome, 72),   // last Win7-era enterprise rollout
        (Vendor::Chrome, 87),   // WebView-pinned
        (Vendor::Firefox, 52),  // last XP release
        (Vendor::Firefox, 68),  // ESR
        (Vendor::Firefox, 78),  // ESR
        (Vendor::Firefox, 91),  // ESR
        (Vendor::Firefox, 102), // ESR
    ];
    if KNOWN_PINS.contains(&(ua.vendor, ua.version)) {
        return true;
    }
    let code = match ua.vendor {
        Vendor::Chrome => 1u64,
        Vendor::Firefox => 2,
        Vendor::Edge => 3,
    } * 1_000
        + ua.version as u64;
    code.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61 == 0
}

/// The distribution of releases in use at `date`: `(release, weight)`
/// pairs with weights summing to 1.
pub fn market_at(date: SimDate) -> Vec<(UserAgent, f64)> {
    let mut entries: Vec<(UserAgent, f64)> = releases_by(date)
        .into_iter()
        .map(|r| (r.ua, adoption_weight(r.ua, date)))
        .collect();
    let total: f64 = entries.iter().map(|(_, w)| w).sum();
    for (_, w) in &mut entries {
        *w /= total;
    }
    entries
}

/// Samples one release from the market distribution at `date`.
pub fn sample_release(market: &[(UserAgent, f64)], rng: &mut ChaCha8Rng) -> UserAgent {
    let mut target = rng.gen::<f64>();
    for &(ua, w) in market {
        if target < w {
            return ua;
        }
        target -= w;
    }
    market
        .last()
        .expect("market is never empty after the first release")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn market_weights_sum_to_one() {
        let m = market_at(SimDate::new(2023, 3));
        let sum: f64 = m.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(m.len() > 100, "long catalog by 2023, got {}", m.len());
    }

    #[test]
    fn newest_releases_dominate() {
        let date = SimDate::new(2023, 3);
        let m = market_at(date);
        let newest_chrome = m
            .iter()
            .filter(|(ua, _)| ua.vendor == Vendor::Chrome && ua.version >= 109)
            .map(|(_, w)| w)
            .sum::<f64>();
        assert!(
            newest_chrome > 0.3,
            "recent Chrome must dominate, got {newest_chrome}"
        );
    }

    #[test]
    fn old_releases_form_a_thin_tail() {
        let date = SimDate::new(2023, 3);
        let m = market_at(date);
        let edgehtml: f64 = m
            .iter()
            .filter(|(ua, _)| ua.vendor == Vendor::Edge && ua.version < 20)
            .map(|(_, w)| w)
            .sum();
        assert!(edgehtml > 0.0, "EdgeHTML never fully dies");
        assert!(
            edgehtml < 0.02,
            "EdgeHTML stays under 2% (§6.4.3), got {edgehtml}"
        );
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        let date = SimDate::new(2023, 3);
        let m = market_at(date);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let chrome_frac = (0..n)
            .filter(|_| sample_release(&m, &mut rng).vendor == Vendor::Chrome)
            .count() as f64
            / n as f64;
        assert!((chrome_frac - 0.62).abs() < 0.03, "got {chrome_frac}");
    }

    #[test]
    fn market_produces_many_distinct_uas_in_sampling() {
        // The paper saw 113 distinct releases in its window.
        let date = SimDate::new(2023, 5);
        let m = market_at(date);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            seen.insert(sample_release(&m, &mut rng));
        }
        assert!(
            seen.len() > 90,
            "expected ~100+ distinct releases, got {}",
            seen.len()
        );
    }
}
