//! One logged-in user session, as the collection pipeline sees it — plus
//! the simulation-only ground truth the evaluation scores against.

use browser_engine::catalog::SimDate;
use browser_engine::UserAgent;
use serde::Serialize;

/// FinOrg's internal risk tags (§7.1). Provided for evaluation only; the
/// detector never reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct Tags {
    /// Session arrived from an IP FinOrg had not seen for this account.
    pub untrusted_ip: bool,
    /// Session carried a newly-established cookie.
    pub untrusted_cookie: bool,
    /// Account was involved in a confirmed ATO within 72 hours.
    pub ato: bool,
}

/// What actually produced a session — simulation-only ground truth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum GroundTruth {
    /// A genuine browser, possibly with benign configuration noise.
    Legitimate {
        /// Whether the instance carried config noise (extensions, prefs).
        perturbed: bool,
    },
    /// A privacy fork whose claim is technically truthful (Brave claims
    /// Chrome and runs the matching Blink).
    PrivacyFork {
        /// Product name, e.g. `"Brave"`.
        product: &'static str,
    },
    /// The Tor Browser: claims the current Firefox ESR while running an
    /// older, patched Gecko.
    TorBrowser,
    /// A genuine browser mid-update: the engine has moved one version
    /// ahead of what the cached user-agent still reports — the paper's
    /// "update inconsistencies" that explain benign low-risk flags (§7.1).
    UpdateSkew,
    /// A fraud browser loading a stolen profile.
    FraudBrowser {
        /// Product name from Table 1.
        product: String,
        /// The paper's category number (1–4).
        category: u8,
    },
}

impl GroundTruth {
    /// Whether this session is one the detector *should* flag: a
    /// category-1/2 fraud browser whose fingerprint cannot match its claim.
    pub fn is_detectable_fraud(&self) -> bool {
        matches!(self, GroundTruth::FraudBrowser { category, .. } if *category <= 2)
    }

    /// Whether this session is fraud of any category.
    pub fn is_fraud(&self) -> bool {
        matches!(self, GroundTruth::FraudBrowser { .. })
    }
}

/// One observed session.
#[derive(Debug, Clone, Serialize)]
pub struct Session {
    /// Opaque anonymised session identifier.
    pub session_id: [u8; 16],
    /// Month the session occurred (the generator also spreads sessions
    /// across days; day resolution is only used for ordering).
    pub date: SimDate,
    /// Day-of-window index for finer ordering (0-based).
    pub day: u16,
    /// The claimed `navigator.userAgent`, parsed.
    pub claimed: UserAgent,
    /// The coarse-grained fingerprint values, in feature-set order.
    pub values: Vec<u32>,
    /// FinOrg's risk tags (evaluation only).
    pub tags: Tags,
    /// Simulation ground truth (evaluation only).
    pub truth: GroundTruth,
}

impl Session {
    /// The fingerprint as an `f64` row for the ML pipeline.
    pub fn row(&self) -> Vec<f64> {
        self.values.iter().map(|&v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    #[test]
    fn detectable_fraud_is_category_1_and_2_only() {
        for (cat, expect) in [(1u8, true), (2, true), (3, false), (4, false)] {
            let t = GroundTruth::FraudBrowser {
                product: "X".into(),
                category: cat,
            };
            assert_eq!(t.is_detectable_fraud(), expect, "category {cat}");
            assert!(t.is_fraud());
        }
        assert!(!GroundTruth::Legitimate { perturbed: false }.is_detectable_fraud());
        assert!(!GroundTruth::TorBrowser.is_fraud());
    }

    #[test]
    fn session_row_converts_values() {
        let s = Session {
            session_id: [0; 16],
            date: SimDate::new(2023, 3),
            day: 0,
            claimed: UserAgent::new(Vendor::Chrome, 110),
            values: vec![1, 2, 3],
            tags: Tags::default(),
            truth: GroundTruth::Legitimate { perturbed: false },
        };
        assert_eq!(s.row(), vec![1.0, 2.0, 3.0]);
    }
}
