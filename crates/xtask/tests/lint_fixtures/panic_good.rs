//! Panic-safety fixture: the clean counterpart of `panic_bad.rs`.
//! Slice patterns and `.get` replace indexing; `?` replaces unwrap.

pub fn decode(frame: &[u8]) -> Option<u8> {
    let [first, _rest @ ..] = frame else { return None; };
    let second = frame.get(1)?;
    first.checked_add(*second)
}
