//! Online fraud detection (§6.5).
//!
//! The live path: extract the 28-feature fingerprint, predict its cluster,
//! compare against the cluster the claimed user-agent should land in, and
//! — on mismatch — run Algorithm 1 to size the divergence.

use crate::error::PolygraphError;
use crate::risk::risk_factor;
use crate::train::TrainedModel;
use browser_engine::{BrowserInstance, UserAgent};
use polygraph_ml::QuantModel;
use serde::{Deserialize, Serialize};

/// The verdict on one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assessment {
    /// Cluster the fingerprint landed in.
    pub predicted_cluster: usize,
    /// Cluster the claimed user-agent was expected to land in (`None` when
    /// the claim's vendor is entirely unknown to the model).
    pub expected_cluster: Option<usize>,
    /// Whether the session is flagged: predicted ≠ expected.
    pub flagged: bool,
    /// Algorithm 1's risk factor. Zero for unflagged sessions. Note that a
    /// *flagged* session can still score 0 when the claim sits within four
    /// versions of a resident of the predicted cluster (§6.5's tolerance
    /// for update inconsistencies).
    pub risk_factor: u32,
}

/// The compiled fast-path companion of a [`TrainedModel`]: the fused
/// fixed-point projection plus per-cluster lookups that the staged path
/// recomputes (and re-allocates) on every frame. Everything here is a
/// pure function of the model, so both paths answer identically.
#[derive(Debug, Clone)]
struct CompiledQuant {
    model: QuantModel,
    /// `effective[c] = nearest_populated_cluster(c)`.
    effective: Vec<usize>,
    /// `residents[c] = cluster_table.user_agents_in(effective[c])`.
    residents: Vec<Vec<UserAgent>>,
}

/// The online detector: a trained model plus the claim-verification rule.
///
/// Optionally carries a quantized compiled form ([`Detector::quantize`])
/// used by [`Detector::assess_many`]; the compiled form is derived state
/// and is deliberately not serialized — a deserialized detector
/// recompiles it on demand.
#[derive(Debug, Clone)]
pub struct Detector {
    model: TrainedModel,
    quant: Option<CompiledQuant>,
}

// Hand-written (de)serialization keeping the original derived shape,
// `{"model": …}`: the vendored derive has no `#[serde(skip)]`, and the
// compiled quant state must not travel — it is recompiled from the
// model after deserialization when the serving config asks for it.
impl Serialize for Detector {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(String::from("model"), self.model.to_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for Detector {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Object(map) => Ok(Detector::new(serde::field(map, "model")?)),
            _ => Err(serde::DeError::new("Detector: expected object")),
        }
    }
}

impl Detector {
    /// Wraps a trained model.
    pub fn new(model: TrainedModel) -> Self {
        Self { model, quant: None }
    }

    /// The wrapped model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Compiles (or refreshes) the quantized fast path from the model.
    ///
    /// Idempotent; fails only when the model cannot be compiled (see
    /// [`polygraph_ml::QuantModel::compile`]), leaving the detector
    /// serving on the staged path.
    pub fn quantize(&mut self) -> Result<(), PolygraphError> {
        let model = self.model.quantize()?;
        let k = model.k();
        let effective: Vec<usize> = (0..k)
            .map(|c| self.model.nearest_populated_cluster(c))
            .collect();
        let residents: Vec<Vec<UserAgent>> = effective
            .iter()
            .map(|&e| self.model.cluster_table().user_agents_in(e))
            .collect();
        self.quant = Some(CompiledQuant {
            model,
            effective,
            residents,
        });
        Ok(())
    }

    /// Whether the quantized fast path is compiled in.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Assesses one session from its raw feature row and claimed
    /// user-agent.
    pub fn assess(&self, values: &[f64], claimed: UserAgent) -> Result<Assessment, PolygraphError> {
        let predicted = self.model.predict_cluster(values)?;
        let expected = self.model.cluster_table().expected_cluster(claimed);
        // A spare centroid (k = 11 over ~9 natural groups) can hold a
        // configuration-variant *satellite* of a populated cluster —
        // extension users of one popular release. Claim verification runs
        // against the satellite's nearest populated cluster: a session in
        // a satellite of its own expected cluster is consistent, not
        // fraud (§7.1 attributes exactly these to "certain extensions or
        // browser configurations").
        let effective = self.model.nearest_populated_cluster(predicted);
        let flagged = expected != Some(effective);
        let risk = if flagged {
            risk_factor(
                claimed,
                &self.model.cluster_table().user_agents_in(effective),
            )
        } else {
            0
        };
        Ok(Assessment {
            predicted_cluster: predicted,
            expected_cluster: expected,
            flagged,
            risk_factor: risk,
        })
    }

    /// Assesses a batch of sessions in order, one result per session.
    ///
    /// This is the serving-side unit of work the risk server drains per
    /// lock acquisition: one detector borrow covers the whole slice, so a
    /// concurrent model swap lands between batches, never inside one.
    /// When the quantized fast path is compiled ([`Detector::quantize`]),
    /// the whole batch runs through one fused integer dispatch with
    /// shared scratch buffers; frames the fixed-point margin certificate
    /// cannot certify fall back to the staged f64 path individually, so
    /// the verdicts are identical either way — field for field,
    /// including error cases.
    pub fn assess_many(
        &self,
        sessions: &[(Vec<f64>, UserAgent)],
    ) -> Vec<Result<Assessment, PolygraphError>> {
        match &self.quant {
            Some(compiled) => {
                let mut scratch = compiled.model.scratch();
                sessions
                    .iter()
                    .map(|(values, claimed)| {
                        self.assess_quantized(compiled, values, *claimed, &mut scratch)
                    })
                    .collect()
            }
            None => sessions
                .iter()
                .map(|(values, claimed)| self.assess(values, *claimed))
                .collect(),
        }
    }

    /// One frame on the quantized path. Width errors are raised exactly
    /// like [`TrainedModel::predict_cluster`] raises them, and any frame
    /// the certificate cannot vouch for reruns on the staged path.
    fn assess_quantized(
        &self,
        compiled: &CompiledQuant,
        values: &[f64],
        claimed: UserAgent,
        scratch: &mut polygraph_ml::QuantScratch,
    ) -> Result<Assessment, PolygraphError> {
        let expected_width = self.model.feature_set().len();
        if values.len() != expected_width {
            return Err(PolygraphError::FeatureWidthMismatch {
                got: values.len(),
                expected: expected_width,
            });
        }
        let predicted = match compiled.model.predict_row(values, scratch)? {
            Some(cluster) => cluster,
            None => self.model.predict_cluster(values)?,
        };
        let expected = self.model.cluster_table().expected_cluster(claimed);
        let effective = compiled
            .effective
            .get(predicted)
            .copied()
            .unwrap_or(predicted);
        let flagged = expected != Some(effective);
        let risk = if flagged {
            match compiled.residents.get(predicted) {
                Some(residents) => risk_factor(claimed, residents),
                None => risk_factor(
                    claimed,
                    &self.model.cluster_table().user_agents_in(effective),
                ),
            }
        } else {
            0
        };
        Ok(Assessment {
            predicted_cluster: predicted,
            expected_cluster: expected,
            flagged,
            risk_factor: risk,
        })
    }

    /// Assesses a batch of sessions in order, failing on the first
    /// malformed row (the server maps per-frame errors before batching).
    pub fn assess_batch(
        &self,
        sessions: &[(Vec<f64>, UserAgent)],
    ) -> Result<Vec<Assessment>, PolygraphError> {
        self.assess_many(sessions).into_iter().collect()
    }

    /// Convenience: probes a live browser instance end-to-end, exactly as
    /// the deployed JavaScript + backend pair would.
    pub fn assess_browser(&self, browser: &BrowserInstance) -> Result<Assessment, PolygraphError> {
        let fp = self.model.feature_set().extract(browser);
        self.assess(&fp.as_f64(), browser.claimed_user_agent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TrainingSet;
    use crate::train::TrainConfig;
    use crate::train::TrainedModel;
    use browser_engine::Vendor;
    use fingerprint::FeatureSet;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    /// Synthetic model with three obvious clusters:
    /// era A (Chrome 60/61), era B (Chrome 100 + Edge 100), era C (Firefox 100).
    fn toy_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, u) in [
            (0.0, ua(Vendor::Chrome, 60)),
            (0.0, ua(Vendor::Chrome, 61)),
            (10.0, ua(Vendor::Chrome, 100)),
            (10.0, ua(Vendor::Edge, 100)),
            (20.0, ua(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], u)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    #[test]
    fn honest_session_not_flagged() {
        let d = toy_detector();
        let a = d.assess(&[10.0, 10.0], ua(Vendor::Chrome, 100)).unwrap();
        assert!(!a.flagged);
        assert_eq!(a.risk_factor, 0);
        assert_eq!(a.expected_cluster, Some(a.predicted_cluster));
    }

    #[test]
    fn cross_vendor_lie_scores_max_risk() {
        let d = toy_detector();
        // Fingerprint of era C (Firefox) claiming Chrome 60.
        let a = d.assess(&[20.0, 20.0], ua(Vendor::Chrome, 60)).unwrap();
        assert!(a.flagged);
        assert_eq!(a.risk_factor, crate::risk::MAX_RISK);
    }

    #[test]
    fn same_vendor_version_lie_scores_scaled_risk() {
        let d = toy_detector();
        // Fingerprint of era A (Chrome 60/61) claiming Chrome 100:
        // floor(|100-61|/4) = 9.
        let a = d.assess(&[0.0, 0.0], ua(Vendor::Chrome, 100)).unwrap();
        assert!(a.flagged);
        assert_eq!(a.risk_factor, 9);
    }

    #[test]
    fn unknown_claim_near_known_version_uses_fallback() {
        let d = toy_detector();
        // Chrome 102 is not in the table; nearest Chrome is 100 (era B).
        let honest = d.assess(&[10.0, 10.0], ua(Vendor::Chrome, 102)).unwrap();
        assert!(!honest.flagged);
        let lying = d.assess(&[0.0, 0.0], ua(Vendor::Chrome, 102)).unwrap();
        assert!(lying.flagged);
    }

    #[test]
    fn assess_batch_matches_individual_assessments() {
        let d = toy_detector();
        let sessions = vec![
            (vec![10.0, 10.0], ua(Vendor::Chrome, 100)),
            (vec![20.0, 20.0], ua(Vendor::Chrome, 60)),
            (vec![0.0, 0.0], ua(Vendor::Chrome, 100)),
        ];
        let batch = d.assess_batch(&sessions).unwrap();
        assert_eq!(batch.len(), 3);
        for ((values, claimed), b) in sessions.iter().zip(&batch) {
            assert_eq!(*b, d.assess(values, *claimed).unwrap());
        }
        // A malformed row anywhere fails the whole batch.
        let bad = vec![(vec![1.0], ua(Vendor::Chrome, 100))];
        assert!(d.assess_batch(&bad).is_err());
        assert!(d.assess_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn quantized_assess_many_matches_staged_field_for_field() {
        let staged = toy_detector();
        let mut quantized = staged.clone();
        assert!(!quantized.is_quantized());
        quantized.quantize().unwrap();
        assert!(quantized.is_quantized());

        let mut sessions = Vec::new();
        for claimed in [
            ua(Vendor::Chrome, 60),
            ua(Vendor::Chrome, 100),
            ua(Vendor::Edge, 100),
            ua(Vendor::Firefox, 100),
            ua(Vendor::Firefox, 1),
        ] {
            for base in [0.0, 10.0, 20.0, 3.0, 15.0] {
                sessions.push((vec![base, base], claimed));
                sessions.push((vec![base + 0.1, base], claimed)); // fractional → fallback
            }
            sessions.push((vec![1.0], claimed)); // wrong width → identical error
        }
        let a = staged.assess_many(&sessions);
        let b = quantized.assess_many(&sessions);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn detector_serde_round_trips_without_the_compiled_state() {
        use serde::{Deserialize, Serialize};
        let mut d = toy_detector();
        d.quantize().unwrap();
        let v = d.to_value();
        // The derived shape is preserved: a single "model" field.
        match &v {
            serde::Value::Object(map) => {
                assert_eq!(map.keys().collect::<Vec<_>>(), ["model"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        let back = Detector::from_value(&v).unwrap();
        assert!(!back.is_quantized(), "compiled state must not travel");
        let session = (vec![10.0, 10.0], ua(Vendor::Chrome, 100));
        assert_eq!(
            back.assess(&session.0, session.1).unwrap(),
            d.assess(&session.0, session.1).unwrap()
        );
    }

    #[test]
    fn assess_browser_runs_end_to_end() {
        // Full-size model over genuine lab data; a genuine browser must
        // pass and a category-2 fraud profile must flag.
        let fs = FeatureSet::table8();
        let mut set = TrainingSet::new(fs.len());
        for r in browser_engine::catalog::legitimate_releases() {
            let fp = fs.extract(&BrowserInstance::genuine(r.ua));
            for _ in 0..3 {
                set.push(fp.as_f64(), r.ua).unwrap();
            }
        }
        let config = TrainConfig {
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let d = Detector::new(TrainedModel::fit(fs.clone(), &set, config).unwrap());

        let honest = BrowserInstance::genuine(ua(Vendor::Chrome, 112));
        assert!(!d.assess_browser(&honest).unwrap().flagged);

        // Blink 61 engine claiming Firefox 110 (Sphere-style).
        let fraud = BrowserInstance::with_engine(
            browser_engine::Engine::blink(61),
            ua(Vendor::Firefox, 110),
        );
        let a = d.assess_browser(&fraud).unwrap();
        assert!(a.flagged);
        assert!(a.risk_factor >= 1);
    }
}
