//! The web-scale session generator — FinOrg's production traffic, in
//! simulation (§6.2, §7.1).
//!
//! The generator reproduces the *structure* the paper's evaluation
//! depends on:
//!
//! * a 4.5-month window of logged-in sessions over the live release
//!   market, with >100 distinct user-agents and a thin tail of sparse old
//!   releases;
//! * benign configuration noise (extensions, Firefox prefs, WebRTC
//!   blockers) plus privacy forks (Brave) and the Tor Browser — the §6.3
//!   sources of same-user-agent inconsistency;
//! * a small fraud-browser population loading stolen profiles (the
//!   detection target);
//! * FinOrg's risk tags with Table 4's base rates (≈51% `Untrusted_IP`,
//!   ≈49% `Untrusted_Cookie`, ≈0.43% `ATO`) and realistic enrichment on
//!   the fraud slice;
//! * the late-2023 drift window, where a slice of Chrome 119 runs a
//!   field-trial arm and Firefox 119 ships its Element overhaul
//!   (Table 6).

use crate::market::{market_at, sample_release};
use crate::session::{GroundTruth, Session, Tags};
use browser_engine::catalog::SimDate;
use browser_engine::{BrowserInstance, Engine, Perturbation, UserAgent, Vendor};
use fingerprint::FeatureSet;
use fraud_browsers::{table1_products, FraudProduct, FraudProfile};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of sessions to generate (205k in the paper's training data).
    pub sessions: usize,
    /// First month of the window.
    pub start: SimDate,
    /// Window length in days (135 ≈ the paper's 4.5 months).
    pub days: u16,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of sessions produced by fraud browsers.
    pub fraud_rate: f64,
    /// Fraction of sessions from the Tor Browser (claims current ESR,
    /// runs an older Gecko).
    pub tor_rate: f64,
    /// Fraction of sessions from Brave (claims Chrome, small shield
    /// deltas).
    pub brave_rate: f64,
    /// Fraction of genuine sessions whose engine has updated one version
    /// ahead of the user-agent they report (benign "update
    /// inconsistencies", §7.1).
    pub update_skew_rate: f64,
    /// Probability that a Chrome/Edge 119 session runs the staged
    /// field-trial arm (drives Table 6's Chrome 119 accuracy dip).
    pub field_trial_rate: f64,
    /// Last month whose releases are visible to the market model. The
    /// paper's training window ends mid-July 2023 with Chrome/Firefox 114
    /// as the newest releases; capping the market at June models that a
    /// release a few days old has no measurable share yet.
    pub market_horizon: SimDate,
}

impl TrafficConfig {
    /// The paper's training window: March to mid-July 2023, 205k sessions.
    pub fn paper_training() -> Self {
        Self {
            sessions: 205_000,
            start: SimDate::new(2023, 3),
            days: 135,
            seed: 0x5E55_1075,
            fraud_rate: 0.0028,
            tor_rate: 0.0005,
            brave_rate: 0.005,
            update_skew_rate: 0.012,
            field_trial_rate: 0.03,
            market_horizon: SimDate::new(2023, 6),
        }
    }

    /// The drift-analysis window: late July through October 2023 (§7.3).
    pub fn drift_window() -> Self {
        Self {
            sessions: 60_000,
            start: SimDate::new(2023, 7),
            days: 110,
            seed: 0xD41F7,
            fraud_rate: 0.0028,
            tor_rate: 0.0005,
            brave_rate: 0.005,
            update_skew_rate: 0.012,
            field_trial_rate: 0.03,
            market_horizon: SimDate::new(2023, 12),
        }
    }

    /// Scales the session count (for fast tests and CI).
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated traffic window.
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    /// The sessions, ordered by day.
    pub sessions: Vec<Session>,
    /// The feature schema `Session::values` follows.
    pub feature_set: FeatureSet,
}

impl TrafficDataset {
    /// The dataset as parallel `(rows, user-agents)` vectors — the shape
    /// `polygraph_core::TrainingSet::from_rows` consumes.
    pub fn rows_and_user_agents(&self) -> (Vec<Vec<f64>>, Vec<UserAgent>) {
        let rows = self.sessions.iter().map(Session::row).collect();
        let uas = self.sessions.iter().map(|s| s.claimed).collect();
        (rows, uas)
    }

    /// Number of distinct claimed user-agents (the paper's 113).
    pub fn distinct_user_agents(&self) -> usize {
        let mut uas: Vec<UserAgent> = self.sessions.iter().map(|s| s.claimed).collect();
        uas.sort();
        uas.dedup();
        uas.len()
    }
}

/// Generates a traffic window with the given feature schema.
pub fn generate(feature_set: &FeatureSet, config: &TrafficConfig) -> TrafficDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let products = table1_products();
    let mut sessions = Vec::with_capacity(config.sessions);

    // Market distributions are month-resolution; cache one per month.
    let months_spanned = (config.days as i32 / 30) + 1;
    let markets: Vec<Vec<(UserAgent, f64)>> = (0..=months_spanned)
        .map(|m| {
            let month = config.start.plus_months(m).min(config.market_horizon);
            market_at(month)
        })
        .collect();

    for i in 0..config.sessions {
        let day = (i as u64 * config.days as u64 / config.sessions.max(1) as u64) as u16;
        let month_idx = (day / 30) as usize;
        let date = config.start.plus_months(month_idx as i32);
        let market = &markets[month_idx.min(markets.len() - 1)];

        let class = rng.gen::<f64>();
        let (browser, truth) = if class < config.fraud_rate {
            fraud_session(&products, market, &mut rng)
        } else if class < config.fraud_rate + config.tor_rate {
            tor_session(market, date)
        } else if class < config.fraud_rate + config.tor_rate + config.brave_rate {
            brave_session(market, &mut rng)
        } else {
            legitimate_session(market, config, &mut rng)
        };

        let claimed = browser.claimed_user_agent();
        let values = feature_set.extract(&browser).values().to_vec();
        let tags = draw_tags(&truth, &browser, &mut rng);
        sessions.push(Session {
            session_id: rng.gen(),
            date,
            day,
            claimed,
            values,
            tags,
            truth,
        });
    }
    TrafficDataset {
        sessions,
        feature_set: feature_set.clone(),
    }
}

/// A genuine browser with population-realistic configuration noise.
fn legitimate_session(
    market: &[(UserAgent, f64)],
    config: &TrafficConfig,
    rng: &mut ChaCha8Rng,
) -> (BrowserInstance, GroundTruth) {
    let ua = sample_release(market, rng);
    // A slice of genuine traffic is mid-update: the engine has rolled one
    // version forward while the reported user-agent lags. At cluster-era
    // boundaries this produces the paper's benign low-risk-factor flags.
    if rng.gen::<f64>() < config.update_skew_rate {
        let engine = Engine::for_genuine(UserAgent::new(ua.vendor, ua.version + 1));
        let b = BrowserInstance::with_engine(engine, ua);
        return (b, GroundTruth::UpdateSkew);
    }
    // Chrome 119 shipped its shape changes behind a staged field trial: a
    // slice of its population still answers probes with the previous-era
    // shapes (Edge 119 took the finished shapes wholesale). This is the
    // Table 6 Chrome-119 accuracy dip.
    if ua.vendor == Vendor::Chrome
        && ua.version >= 119
        && rng.gen::<f64>() < config.field_trial_rate
    {
        let b = BrowserInstance::with_engine(Engine::blink(113), ua);
        return (b, GroundTruth::Legitimate { perturbed: true });
    }
    let mut b = BrowserInstance::genuine(ua);
    let mut perturbed = false;

    // The long tail of prototype-touching extensions: ~6% of users run
    // one, drawn from a population of 256 distinct extensions. This is
    // the within-user-agent diversity behind Figure 5's anonymity sets.
    if rng.gen::<f64>() < 0.06 {
        b = b.perturbed(Perturbation::MiscExtension { seed: rng.gen() });
        perturbed = true;
    }
    match ua.vendor {
        Vendor::Chrome | Vendor::Edge => {
            if rng.gen::<f64>() < 0.03 {
                b = b.perturbed(Perturbation::ChromeExtensionDuckDuckGo);
                perturbed = true;
            }
        }
        Vendor::Firefox => {
            if rng.gen::<f64>() < 0.015 {
                b = b.perturbed(Perturbation::FirefoxDisableServiceWorkers);
                perturbed = true;
            }
            if rng.gen::<f64>() < 0.008 {
                b = b.perturbed(Perturbation::FirefoxTransformGetters);
                perturbed = true;
            }
        }
    }
    if rng.gen::<f64>() < 0.01 {
        b = b.perturbed(Perturbation::DisableWebRtc);
        perturbed = true;
    }
    (b, GroundTruth::Legitimate { perturbed })
}

/// Brave: claims plain Chrome of the same version, runs Blink with shield
/// deltas (§6.3).
fn brave_session(
    market: &[(UserAgent, f64)],
    rng: &mut ChaCha8Rng,
) -> (BrowserInstance, GroundTruth) {
    // Brave users run recent Chromium; resample until a Chrome UA comes up.
    let mut ua = sample_release(market, rng);
    for _ in 0..16 {
        if ua.vendor == Vendor::Chrome {
            break;
        }
        ua = sample_release(market, rng);
    }
    let ua = UserAgent::new(Vendor::Chrome, ua.version);
    // Roughly a third of Brave users run the aggressive shield level,
    // whose heavier API trimming lands between release eras — the
    // benign-but-flagged population that dilutes the paper's flagged
    // batch (Table 4's 78%/75%/2% rates are far below the fraud slice's).
    let shields = if rng.gen::<f64>() < 0.3 {
        Perturbation::BraveAggressiveShields
    } else {
        Perturbation::BraveShields
    };
    let b = BrowserInstance::genuine(ua).perturbed(shields);
    (b, GroundTruth::PrivacyFork { product: "Brave" })
}

/// Tor: claims the Firefox 102 ESR while running a year-older Gecko with
/// privacy patches — exactly the §6.3 observation ("a user-agent string
/// aligning with Firefox version 102, yet the attribute values
/// significantly deviated... nearly a year behind"). Tor stayed on the
/// 102 line well into late 2023, covering both simulated windows.
fn tor_session(market: &[(UserAgent, f64)], date: SimDate) -> (BrowserInstance, GroundTruth) {
    let _ = (market, date);
    let claimed = UserAgent::new(Vendor::Firefox, 102);
    let engine = Engine::gecko(91); // the ESR base Tor actually tracked
    let b = BrowserInstance::with_engine(engine, claimed).perturbed(Perturbation::TorPatches);
    (b, GroundTruth::TorBrowser)
}

/// A fraud browser loading a stolen profile whose UA mirrors the victim
/// population.
fn fraud_session(
    products: &[FraudProduct],
    market: &[(UserAgent, f64)],
    rng: &mut ChaCha8Rng,
) -> (BrowserInstance, GroundTruth) {
    // Product popularity in underground usage: category-2 tools dominate.
    let weights: Vec<(usize, f64)> = products
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let w = match (p.name, p.category.number()) {
                ("GoLogin", _) => 0.18,
                ("Octo Browser", _) => 0.18,
                ("Incogniton", _) => 0.14,
                ("Sphere", _) => 0.09,
                ("Linken Sphere", _) => 0.09,
                ("ClonBrowser", _) => 0.09,
                ("VMLogin", _) => 0.05,
                ("CheBrowser", _) => 0.05,
                ("AntBrowser", _) => 0.03,
                ("AdsPower", _) => 0.05, // two catalog entries -> 0.10 total
                _ => 0.01,
            };
            (i, w)
        })
        .collect();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen::<f64>() * total;
    let mut chosen = 0usize;
    for &(i, w) in &weights {
        if target < w {
            chosen = i;
            break;
        }
        target -= w;
    }
    let product = products[chosen].clone();
    let victim_ua = sample_release(market, rng);
    let category = product.category.number();
    let name = product.name.to_string();
    let profile = FraudProfile::new(product, victim_ua);
    (
        profile.instantiate(),
        GroundTruth::FraudBrowser {
            product: name,
            category,
        },
    )
}

/// Draws FinOrg's risk tags conditioned on what the session actually is.
///
/// Base rates reproduce Table 4's "All users" row; the fraud slice gets
/// the enrichment that makes the flagged rows of Table 4 possible.
fn draw_tags(truth: &GroundTruth, browser: &BrowserInstance, rng: &mut ChaCha8Rng) -> Tags {
    let (p_ip, p_cookie, p_ato) = match truth {
        GroundTruth::Legitimate { .. }
        | GroundTruth::PrivacyFork { .. }
        | GroundTruth::UpdateSkew => (0.50, 0.48, 0.0042),
        // Tor exits are unfamiliar IPs almost by definition.
        GroundTruth::TorBrowser => (0.92, 0.75, 0.0042),
        GroundTruth::FraudBrowser { category, .. } => {
            let cross_vendor =
                browser.claimed_user_agent().vendor != browser.engine().default_user_agent().vendor;
            match (category, cross_vendor) {
                // Bolder spoofs correlate with confirmed ATO.
                (1 | 2, true) => (0.97, 0.92, 0.06),
                (1 | 2, false) => (0.96, 0.90, 0.032),
                // Category 3/4: still fraud infrastructure, still mostly
                // unfamiliar IPs/cookies, caught by other signals at times.
                _ => (0.92, 0.86, 0.03),
            }
        }
    };
    Tags {
        untrusted_ip: rng.gen::<f64>() < p_ip,
        untrusted_cookie: rng.gen::<f64>() < p_cookie,
        ato: rng.gen::<f64>() < p_ato,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TrafficConfig {
        TrafficConfig::paper_training().with_sessions(8_000)
    }

    #[test]
    fn generator_is_deterministic() {
        let fs = FeatureSet::table8();
        let a = generate(&fs, &small_config());
        let b = generate(&fs, &small_config());
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.session_id, y.session_id);
            assert_eq!(x.values, y.values);
            assert_eq!(x.tags, y.tags);
        }
    }

    #[test]
    fn base_tag_rates_match_table4_row1() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(30_000));
        let n = data.sessions.len() as f64;
        let ip = data.sessions.iter().filter(|s| s.tags.untrusted_ip).count() as f64 / n;
        let cookie = data
            .sessions
            .iter()
            .filter(|s| s.tags.untrusted_cookie)
            .count() as f64
            / n;
        let ato = data.sessions.iter().filter(|s| s.tags.ato).count() as f64 / n;
        assert!((ip - 0.51).abs() < 0.02, "Untrusted_IP ≈ 51%, got {ip}");
        assert!(
            (cookie - 0.49).abs() < 0.02,
            "Untrusted_Cookie ≈ 49%, got {cookie}"
        );
        assert!((ato - 0.0043).abs() < 0.002, "ATO ≈ 0.43%, got {ato}");
    }

    #[test]
    fn fraud_slice_is_small_and_enriched() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(50_000));
        let fraud: Vec<&Session> = data
            .sessions
            .iter()
            .filter(|s| s.truth.is_fraud())
            .collect();
        let frac = fraud.len() as f64 / data.sessions.len() as f64;
        assert!(
            (0.001..0.004).contains(&frac),
            "fraud rate ≈ 0.22%, got {frac}"
        );
        let fraud_ip =
            fraud.iter().filter(|s| s.tags.untrusted_ip).count() as f64 / fraud.len() as f64;
        assert!(
            fraud_ip > 0.9,
            "fraud sessions are overwhelmingly untrusted-IP"
        );
    }

    #[test]
    fn window_has_paper_scale_ua_diversity() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(40_000));
        let distinct = data.distinct_user_agents();
        assert!(
            (90..160).contains(&distinct),
            "the paper saw 113 distinct releases; got {distinct}"
        );
    }

    #[test]
    fn detectable_fraud_has_inconsistent_fingerprints() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(50_000));
        // Category-1/2 fraud sessions' fingerprints mostly differ from a
        // genuine browser with the same claimed UA. Not all: a category-2
        // product whose embedded core shares the claimed UA's coarse
        // feature cluster is indistinguishable — the paper's own false
        // negatives (Table 5) — so check the population rate rather than
        // a small draw-order-sensitive prefix.
        let detectable: Vec<&Session> = data
            .sessions
            .iter()
            .filter(|s| s.truth.is_detectable_fraud())
            .collect();
        assert!(
            detectable.len() >= 50,
            "need a meaningful fraud slice, got {}",
            detectable.len()
        );
        let differing = detectable
            .iter()
            .filter(|s| {
                let genuine = fs.extract(&BrowserInstance::genuine(s.claimed));
                genuine.values() != s.values.as_slice()
            })
            .count();
        let rate = differing as f64 / detectable.len() as f64;
        assert!(
            rate >= 0.7,
            "most detectable fraud must differ, got {differing}/{}",
            detectable.len()
        );
    }

    #[test]
    fn drift_window_contains_late_releases() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &TrafficConfig::drift_window().with_sessions(30_000));
        let has_119 = data
            .sessions
            .iter()
            .any(|s| s.claimed.vendor == Vendor::Chrome && s.claimed.version == 119);
        assert!(has_119, "late-October window must include Chrome 119");
        let has_fx119 = data
            .sessions
            .iter()
            .any(|s| s.claimed.vendor == Vendor::Firefox && s.claimed.version == 119);
        assert!(has_fx119, "window must include Firefox 119");
    }

    #[test]
    fn sessions_are_day_ordered_with_unique_ids() {
        let fs = FeatureSet::table8();
        let data = generate(&fs, &small_config());
        for w in data.sessions.windows(2) {
            assert!(w[0].day <= w[1].day);
        }
        let mut ids: Vec<[u8; 16]> = data.sessions.iter().map(|s| s.session_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), data.sessions.len(), "session ids must be unique");
    }
}
