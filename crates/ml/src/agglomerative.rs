//! Average-linkage agglomerative clustering.
//!
//! The paper picks k-means "due to its efficiency and straightforward
//! implementation" (§6.4.3). This module provides the natural alternative
//! — bottom-up hierarchical clustering with average linkage — so that the
//! choice can be *measured* rather than asserted: agglomerative clustering
//! needs the full O(n²) distance matrix and O(n² ) merge bookkeeping,
//! against k-means' O(n·k·d) per iteration.
//!
//! Implementation: Lance–Williams updates over a dense distance matrix,
//! with per-row nearest-neighbour caching. Suitable for the few-thousand-
//! row samples the comparison runs on; deliberately not for 205k rows —
//! which is precisely the point the comparison makes.

use crate::error::MlError;
use crate::matrix::Matrix;

/// A fitted agglomerative clustering: training labels plus cluster means
/// (for assigning new points).
#[derive(Debug, Clone)]
pub struct Agglomerative {
    labels: Vec<usize>,
    means: Matrix,
}

impl Agglomerative {
    /// Clusters the rows of `x` into `k` clusters with average linkage.
    pub fn fit(x: &Matrix, k: usize) -> Result<Self, MlError> {
        let n = x.rows();
        if k == 0 || k > n {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: format!("k must be in 1..={n}, got {k}"),
            });
        }

        // Dense distance matrix between active clusters; `size[i]` tracks
        // cluster cardinality, `active[i]` liveness, `parent` is a
        // union-find-ish mapping for final label extraction.
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = Matrix::sq_dist(x.row(i), x.row(j));
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut size = vec![1usize; n];
        let mut active = vec![true; n];
        let mut member_of: Vec<usize> = (0..n).collect();

        let mut clusters = n;
        while clusters > k {
            // Find the closest active pair.
            let mut best = (0usize, 0usize, f64::INFINITY);
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (a, b, _) = best;
            // Merge b into a: average-linkage Lance–Williams update.
            let (sa, sb) = (size[a] as f64, size[b] as f64);
            for m in 0..n {
                if !active[m] || m == a || m == b {
                    continue;
                }
                let dam = dist[a * n + m];
                let dbm = dist[b * n + m];
                let updated = (sa * dam + sb * dbm) / (sa + sb);
                dist[a * n + m] = updated;
                dist[m * n + a] = updated;
            }
            size[a] += size[b];
            active[b] = false;
            for m in member_of.iter_mut() {
                if *m == b {
                    *m = a;
                }
            }
            clusters -= 1;
        }

        // Compact cluster ids to 0..k and compute means.
        let mut remap: Vec<Option<usize>> = vec![None; n];
        let mut next = 0usize;
        let mut labels = Vec::with_capacity(n);
        for &root in &member_of {
            let id = *remap[root].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            labels.push(id);
        }
        let mut means = Matrix::zeros(k, x.cols())?;
        let mut counts = vec![0usize; k];
        for (i, &c) in labels.iter().enumerate() {
            counts[c] += 1;
            for (m, &v) in means.row_mut(c).iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            let inv = 1.0 / count.max(1) as f64;
            for m in means.row_mut(c) {
                *m *= inv;
            }
        }
        Ok(Self { labels, means })
    }

    /// Training labels, parallel to the fitted matrix's rows.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.means.rows()
    }

    /// Assigns a new point to the nearest cluster mean.
    pub fn predict_row(&self, row: &[f64]) -> Result<usize, MlError> {
        if row.len() != self.means.cols() {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.means.cols(),
                what: "row length",
            });
        }
        let mut best = (0usize, f64::INFINITY);
        for (c, mean) in self.means.iter_rows().enumerate() {
            let d = Matrix::sq_dist(row, mean);
            if d < best.1 {
                best = (c, d);
            }
        }
        Ok(best.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (li, &(cx, cy)) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)].iter().enumerate() {
            for i in 0..15 {
                rows.push(vec![cx + (i % 3) as f64 * 0.1, cy + (i / 3) as f64 * 0.1]);
                truth.push(li);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blobs();
        let model = Agglomerative::fit(&x, 3).unwrap();
        assert_eq!(model.k(), 3);
        // Every blob maps to one cluster.
        let mut mapping = [usize::MAX; 3];
        for (&label, &t) in model.labels().iter().zip(&truth) {
            if mapping[t] == usize::MAX {
                mapping[t] = label;
            }
            assert_eq!(mapping[t], label, "blob {t} split");
        }
        let mut sorted = mapping;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2]);
    }

    #[test]
    fn labels_are_compact_zero_based() {
        let (x, _) = blobs();
        let model = Agglomerative::fit(&x, 3).unwrap();
        let max = *model.labels().iter().max().unwrap();
        assert_eq!(max, 2);
        for c in 0..=max {
            assert!(model.labels().contains(&c), "cluster {c} unused");
        }
    }

    #[test]
    fn predict_assigns_to_nearest_mean() {
        let (x, _) = blobs();
        let model = Agglomerative::fit(&x, 3).unwrap();
        // A point next to the (10, 10) blob joins its cluster.
        let near = model.predict_row(&[10.2, 9.9]).unwrap();
        let blob_label = model.labels()[20]; // a (10,10)-blob member
        assert_eq!(near, blob_label);
        assert!(model.predict_row(&[1.0]).is_err());
    }

    #[test]
    fn k_equals_n_is_identity() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]).unwrap();
        let model = Agglomerative::fit(&x, 3).unwrap();
        let mut labels = model.labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn k_one_lumps_everything() {
        let (x, _) = blobs();
        let model = Agglomerative::fit(&x, 1).unwrap();
        assert!(model.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn invalid_k_rejected() {
        let (x, _) = blobs();
        assert!(Agglomerative::fit(&x, 0).is_err());
        assert!(Agglomerative::fit(&x, x.rows() + 1).is_err());
    }
}
