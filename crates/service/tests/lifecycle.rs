//! Regression tests for the risk server's connection lifecycle, run
//! against **both** connection cores via `for_each_backend`:
//!
//! * finished connections are reaped while the server runs (not only at
//!   shutdown) — worker joins on the threaded core, slot removal on the
//!   reactor;
//! * an idle keep-alive client survives read-timeout ticks, while a
//!   stalled partial frame does not;
//! * shutdown is bounded even with a connected-but-silent client;
//! * the reactor's self-pipe wakeup decouples shutdown latency from the
//!   read timeout entirely: even a multi-second timeout shuts down
//!   within one poll cycle.

mod common;

use browser_engine::{UserAgent, Vendor};
use common::for_each_backend;
use fingerprint::{encode_submission, FeatureSet, Submission};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::server::{start_risk_server_with, RiskServerConfig, RiskServerHandle};
use polygraph_service::{ServerBackend, Verdict, VerdictStatus};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_detector() -> Detector {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .unwrap();
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 2,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    };
    Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
}

fn honest_frame() -> Vec<u8> {
    let sub = Submission {
        session_id: [7u8; 16],
        user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
        values: vec![10, 10],
    };
    encode_submission(&sub).unwrap().to_vec()
}

fn send_frame(stream: &mut TcpStream, frame: &[u8]) {
    stream
        .write_all(&(frame.len() as u16).to_le_bytes())
        .unwrap();
    stream.write_all(frame).unwrap();
}

fn read_verdict(stream: &mut TcpStream) -> Verdict {
    let mut buf = [0u8; 8];
    stream.read_exact(&mut buf).unwrap();
    Verdict::decode(&buf).unwrap()
}

/// Polls `cond` against the server's stats until it holds or `deadline`
/// elapses.
fn wait_for(
    server: &RiskServerHandle,
    deadline: Duration,
    cond: impl Fn(u64) -> bool,
    read: impl Fn(&RiskServerHandle) -> u64,
) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond(read(server)) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "condition not reached within {deadline:?}; last value {}",
        read(server)
    );
}

#[test]
fn finished_connections_are_reaped_while_serving() {
    for_each_backend(|config, backend| {
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();

        // Open, use, and close a few connections sequentially.
        for _ in 0..3 {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream.set_nodelay(true).unwrap();
            send_frame(&mut stream, &honest_frame());
            assert_eq!(
                read_verdict(&mut stream).status,
                VerdictStatus::Assessed,
                "[{backend}]"
            );
            drop(stream);
        }

        // The server must reclaim each finished connection while it keeps
        // running — worker joins (threaded) or slot removal (reactor) —
        // observable through the reap counter, which final shutdown joins
        // deliberately do not touch.
        wait_for(
            &server,
            Duration::from_secs(5),
            |reaped| reaped >= 3,
            |s| s.stats().connections_reaped,
        );
        let stats = server.stats();
        assert_eq!(stats.connections_opened, 3, "[{backend}]");
        assert_eq!(stats.connections_closed, 3, "[{backend}]");
        assert_eq!(stats.connections_errored, 0, "[{backend}]");
        assert_eq!(
            stats.connections_open, 0,
            "[{backend}] every retired connection must release the gauge"
        );
        server.shutdown();
    });
}

#[test]
fn idle_keepalive_client_survives_read_timeouts() {
    for_each_backend(|config, backend| {
        let config = RiskServerConfig {
            read_timeout: Duration::from_millis(100),
            ..config
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // Stay silent for several read-timeout ticks, then submit. Before
        // the fix the first tick returned Err and killed the connection.
        std::thread::sleep(Duration::from_millis(350));
        send_frame(&mut stream, &honest_frame());
        assert_eq!(
            read_verdict(&mut stream).status,
            VerdictStatus::Assessed,
            "[{backend}] the idle connection must still be alive after several timeouts"
        );
        let stats = server.stats();
        assert!(
            stats.idle_timeouts >= 1,
            "[{backend}] idle ticks must be counted, got {}",
            stats.idle_timeouts
        );
        assert_eq!(stats.connections_errored, 0, "[{backend}]");
        drop(stream);
        server.shutdown();
    });
}

#[test]
fn stalled_partial_frame_fails_the_connection() {
    for_each_backend(|config, backend| {
        let config = RiskServerConfig {
            read_timeout: Duration::from_millis(100),
            ..config
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        // Declare a 100-byte body but send only 3 bytes, then stall:
        // unlike pure idleness, a half-delivered frame past the timeout
        // is fatal.
        stream.write_all(&100u16.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        wait_for(
            &server,
            Duration::from_secs(5),
            |errored| errored >= 1,
            |s| s.stats().connections_errored,
        );
        assert_eq!(
            server.stats().connections_open,
            0,
            "[{backend}] the errored connection must release the gauge"
        );
        drop(stream);
        server.shutdown();
    });
}

#[test]
fn shutdown_is_bounded_with_silent_connected_client() {
    for_each_backend(|config, backend| {
        let config = RiskServerConfig {
            read_timeout: Duration::from_millis(200),
            ..config
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();

        // A connected client that never sends a byte. Threaded workers
        // notice the stop flag within one read-timeout tick; reactor
        // shards are woken through the self-pipe.
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let the accept land

        let start = Instant::now();
        server.shutdown();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "[{backend}] shutdown must be bounded by ~one read-timeout tick, took {elapsed:?}"
        );
        drop(stream);
    });
}

/// The self-pipe wakeup fix, pinned: with a read timeout of ten seconds —
/// long enough that any tick-coupled shutdown would blow the assertion —
/// the reactor still shuts down within one poll cycle, because
/// `shutdown()` fires each shard's waker and the poll returns
/// immediately instead of waiting out its timeout (let alone the read
/// timeout a pre-fix acceptor tick was coupled to).
#[test]
fn reactor_shutdown_completes_within_one_poll_cycle() {
    let config = RiskServerConfig {
        read_timeout: Duration::from_secs(10),
        backend: ServerBackend::Reactor,
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();

    // A connected, mid-frame-stalled client: the worst case for any
    // timeout-coupled teardown path.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&100u16.to_le_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let accept + read land

    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(500),
        "reactor shutdown must be decoupled from the 10 s read timeout \
         by the self-pipe wakeup, took {elapsed:?}"
    );
    drop(stream);
}
