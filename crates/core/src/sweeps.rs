//! Sensitivity sweeps (Appendix-4, Tables 10–12).
//!
//! Each sweep retrains the model with one hyper-parameter varied and
//! reports the majority-cluster accuracy, reproducing the paper's
//! demonstration that 28 features / 7 components / k = 11 is the
//! operating point.

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use crate::train::{TrainConfig, TrainedModel};
use fingerprint::FeatureSet;
use polygraph_ml::metrics::majority_cluster_accuracy;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The varied parameter's value.
    pub value: usize,
    /// Majority-cluster accuracy at that setting.
    pub accuracy: f64,
    /// The k the run used (interesting when k itself is derived).
    pub k: usize,
    /// The PCA component count the run used.
    pub n_components: usize,
}

fn accuracy_of(model: &TrainedModel, data: &TrainingSet) -> Result<f64, PolygraphError> {
    let clusters = model.predict_clusters(data)?;
    Ok(majority_cluster_accuracy(data.user_agents(), &clusters)?.accuracy)
}

/// Table 10: accuracy versus the number of clusters, at fixed features and
/// PCA components.
pub fn sweep_clusters(
    feature_set: &FeatureSet,
    data: &TrainingSet,
    ks: &[usize],
    base: TrainConfig,
) -> Result<Vec<SweepPoint>, PolygraphError> {
    ks.iter()
        .map(|&k| {
            let config = TrainConfig { k, ..base };
            let model = TrainedModel::fit(feature_set.clone(), data, config)?;
            Ok(SweepPoint {
                value: k,
                accuracy: accuracy_of(&model, data)?,
                k,
                n_components: config.n_components,
            })
        })
        .collect()
}

/// Table 11: accuracy versus the number of PCA components, at fixed
/// features and k.
pub fn sweep_pca(
    feature_set: &FeatureSet,
    data: &TrainingSet,
    components: &[usize],
    base: TrainConfig,
) -> Result<Vec<SweepPoint>, PolygraphError> {
    components
        .iter()
        .map(|&n| {
            let config = TrainConfig {
                n_components: n,
                ..base
            };
            let model = TrainedModel::fit(feature_set.clone(), data, config)?;
            Ok(SweepPoint {
                value: n,
                accuracy: accuracy_of(&model, data)?,
                k: config.k,
                n_components: n,
            })
        })
        .collect()
}

/// One step of the Table 12 feature sweep: a feature set, the k it should
/// be clustered with, and the resulting accuracy.
#[derive(Debug, Clone)]
pub struct FeatureSweepStep {
    /// Names of features added relative to the previous step.
    pub added: Vec<String>,
    /// Total features at this step.
    pub n_features: usize,
    /// Accuracy.
    pub accuracy: f64,
    /// k used at this step.
    pub k: usize,
}

/// Table 12: accuracy as the feature count grows. Each entry of `steps`
/// supplies the extra probes to append and the k the paper's elbow
/// analysis found optimal at that width.
pub fn sweep_features(
    base_set: &FeatureSet,
    base_data: &TrainingSet,
    steps: &[(Vec<fingerprint::Probe>, usize)],
    extended_extractor: impl Fn(&FeatureSet) -> Result<TrainingSet, PolygraphError>,
    base: TrainConfig,
) -> Result<Vec<FeatureSweepStep>, PolygraphError> {
    let mut out = Vec::new();
    // Step 0: the base 28-feature configuration.
    let model = TrainedModel::fit(base_set.clone(), base_data, base)?;
    out.push(FeatureSweepStep {
        added: Vec::new(),
        n_features: base_set.len(),
        accuracy: accuracy_of(&model, base_data)?,
        k: base.k,
    });

    let mut probes: Vec<fingerprint::Probe> = base_set.probes().to_vec();
    for (extra, k) in steps {
        probes.extend(extra.iter().cloned());
        let set = FeatureSet::new(probes.clone());
        let data = extended_extractor(&set)?;
        let config = TrainConfig { k: *k, ..base };
        let model = TrainedModel::fit(set.clone(), &data, config)?;
        out.push(FeatureSweepStep {
            added: extra.iter().map(|p| p.expression()).collect(),
            n_features: set.len(),
            accuracy: accuracy_of(&model, &data)?,
            k: *k,
        });
    }
    Ok(out)
}

/// The paper's Table 12 feature-addition schedule: three steps of four
/// probes each, with the optimal k the paper measured at each width.
pub fn table12_steps() -> Vec<(Vec<fingerprint::Probe>, usize)> {
    use fingerprint::Probe;
    vec![
        (
            vec![
                Probe::count("HTMLIFrameElement"),
                Probe::count("SVGAElement"),
                Probe::count("RemotePlayback"),
                Probe::count("StylePropertyMapReadOnly"),
            ],
            11,
        ),
        (
            vec![
                Probe::count("Screen"),
                Probe::count("Request"),
                Probe::count("TouchEvent"),
                Probe::count("TaskAttributionTiming"),
            ],
            12,
        ),
        (
            vec![
                Probe::count("PictureInPictureWindow"),
                Probe::count("ReportingObserver"),
                Probe::count("HTMLTemplateElement"),
                Probe::count("MediaSession"),
            ],
            14,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::BrowserInstance;

    /// Small lab dataset over the genuine catalog for a given feature set.
    fn lab_data(fs: &FeatureSet) -> TrainingSet {
        let mut set = TrainingSet::new(fs.len());
        for r in browser_engine::catalog::legitimate_releases() {
            let fp = fs.extract(&BrowserInstance::genuine(r.ua));
            for _ in 0..2 {
                set.push(fp.as_f64(), r.ua).unwrap();
            }
        }
        set
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            min_samples_for_majority: 1,
            n_init: 2,
            ..Default::default()
        }
    }

    #[test]
    fn cluster_sweep_produces_points_for_each_k() {
        let fs = FeatureSet::table8();
        let data = lab_data(&fs);
        let points = sweep_clusters(&fs, &data, &[5, 11], quick_config()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].value, 5);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }

    #[test]
    fn pca_sweep_varies_components() {
        let fs = FeatureSet::table8();
        let data = lab_data(&fs);
        let points = sweep_pca(&fs, &data, &[6, 7], quick_config()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].n_components, 7);
    }

    #[test]
    fn feature_sweep_appends_table12_probes() {
        let fs = FeatureSet::table8();
        let data = lab_data(&fs);
        let steps = table12_steps();
        let result = sweep_features(
            &fs,
            &data,
            &steps[..1],
            |set| Ok(lab_data(set)),
            quick_config(),
        )
        .unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].n_features, 28);
        assert_eq!(result[1].n_features, 32);
        assert!(result[1]
            .added
            .iter()
            .any(|n| n.contains("HTMLIFrameElement")));
    }

    #[test]
    fn table12_schedule_matches_paper() {
        let steps = table12_steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps.iter().map(|(p, _)| p.len()).sum::<usize>(), 12);
        assert_eq!(steps[0].1, 11);
        assert_eq!(steps[1].1, 12);
        assert_eq!(steps[2].1, 14);
    }
}
