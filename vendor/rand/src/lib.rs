//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact slice of `rand` it uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform range sampling, and the
//! [`seq::SliceRandom`] helpers. Everything is deterministic given a seed;
//! there is no global RNG and no OS entropy source.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// mirroring `rand 0.8`'s default.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand's `Standard`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A half-open or inclusive range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer sampling via Lemire's multiply-shift with rejection:
/// unbiased and deterministic for a given generator stream.
macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as Standard>::draw(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draws a uniform value in `[0, span)` (`span >= 1`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    // Lemire 2019: multiply-shift with rejection of the biased low zone.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::draw(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::draw(rng);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        f64::draw(self) < p
    }

    /// Fills `dest` with values of a [`Standard`] type.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for v in dest.iter_mut() {
            *v = T::draw(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers: shuffling and choosing from slices.

    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements (all of them when `amount`
        /// exceeds the length), in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: well-distributed, deterministic.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(0u32..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = Counter(9);
        let v: Vec<usize> = (0..30).collect();
        let chosen: Vec<usize> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(chosen.len(), 10);
        let mut dedup = chosen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = Counter(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
