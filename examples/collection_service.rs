//! Collection service: the deployed shape of the system. Browsers submit
//! ≤1 KB fingerprint frames over TCP; the backend decodes, assesses and
//! flags — all within the paper's §3 budget. Includes smoltcp-style fault
//! injection on the client side.
//!
//! ```sh
//! cargo run --release --example collection_service
//! ```

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{BrowserInstance, Engine, UserAgent, Vendor};
use browser_polygraph::fingerprint::{FeatureSet, Submission};
use browser_polygraph::traffic::collect::{
    start_collector, CollectorClient, FaultConfig, SubmitOutcome,
};
use browser_polygraph::traffic::{generate, TrafficConfig};

fn main() {
    // Offline: train the model.
    let features = FeatureSet::table8();
    let data = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(20_000),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model =
        TrainedModel::fit(features.clone(), &training, TrainConfig::default()).expect("train");
    let detector = Detector::new(model);

    // Online: start the collection endpoint.
    let server = start_collector("127.0.0.1:0").expect("bind");
    println!("collection service listening on {}", server.local_addr());

    // Simulated in-page scripts submit over a lossy link (15% drop, 10%
    // corruption — the smoltcp examples' "adverse network" starting point).
    let mut client = CollectorClient::connect(server.local_addr())
        .expect("connect")
        .with_faults(
            FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.10,
            },
            99,
        );

    let visitors: Vec<(&str, BrowserInstance)> = vec![
        (
            "genuine Chrome 112",
            BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112)),
        ),
        (
            "genuine Firefox 108",
            BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 108)),
        ),
        (
            "fraud: Blink 108 claiming Firefox 110",
            BrowserInstance::with_engine(Engine::blink(108), UserAgent::new(Vendor::Firefox, 110)),
        ),
        (
            "fraud: Blink 61 claiming Chrome 114",
            BrowserInstance::with_engine(Engine::blink(61), UserAgent::new(Vendor::Chrome, 114)),
        ),
    ];

    let mut session: u8 = 0;
    for (label, browser) in &visitors {
        // Each visitor retries until the lossy link lets a frame through.
        for attempt in 1..=10 {
            session = session.wrapping_add(1);
            let sub = Submission {
                session_id: [session; 16],
                user_agent: browser.claimed_user_agent().to_ua_string(),
                values: features.extract(browser).values().to_vec(),
            };
            match client.submit(&sub).expect("submit") {
                SubmitOutcome::Accepted => {
                    println!("{label}: delivered on attempt {attempt}");
                    break;
                }
                SubmitOutcome::Rejected => {
                    println!("{label}: frame corrupted in flight, retrying");
                }
                SubmitOutcome::Dropped => {
                    println!("{label}: frame dropped, retrying");
                }
            }
        }
    }
    drop(client);

    // Backend: decode every accepted submission and assess it.
    println!("\nbackend assessments:");
    let received = server.shutdown();
    for sub in &received {
        let claimed: UserAgent = sub.user_agent.parse().expect("valid UA");
        let values: Vec<f64> = sub.values.iter().map(|&v| v as f64).collect();
        let verdict = detector.assess(&values, claimed).expect("assess");
        println!(
            "  session {:02x?}…  claims {:<12} -> flagged: {:<5} risk: {:>2}",
            &sub.session_id[..2],
            claimed.label(),
            verdict.flagged,
            verdict.risk_factor,
        );
    }
}
