//! The risk-assessment TCP service.
//!
//! Each connection streams length-prefixed fingerprint submission frames
//! (the same format the collection service accepts) and receives one
//! fixed-size [`Verdict`] per frame. The serving detector sits behind an
//! `Arc<RwLock<…>>` so the [`crate::orchestrator`] can swap in a
//! retrained model without interrupting traffic — the paper's "ongoing
//! system enhancements … minimises delays during user interaction"
//! property (§6.5).

use crate::proto::{Verdict, VerdictStatus};
use browser_engine::UserAgent;
use fingerprint::{decode_submission, MAX_SUBMISSION_BYTES};
use parking_lot::RwLock;
use polygraph_core::Detector;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Frames a connection worker may assess under a single read-guard
/// acquisition. Bounds both verdict latency for the frames at the back of
/// a drained batch and how long a pending model swap can be starved by
/// one busy connection.
pub const MAX_BATCH_PER_GUARD: usize = 32;

/// Counters of a running risk server.
#[derive(Debug, Default)]
pub struct RiskServerStats {
    /// Submissions assessed.
    pub assessed: AtomicUsize,
    /// Assessments that flagged the session.
    pub flagged: AtomicUsize,
    /// Malformed frames answered with an error verdict.
    pub malformed: AtomicUsize,
    /// Detector swaps performed.
    pub swaps: AtomicUsize,
    /// Detector read-guard acquisitions taken to assess frames. With
    /// pipelined clients this grows slower than `assessed`: each batch of
    /// up to [`MAX_BATCH_PER_GUARD`] queued frames shares one acquisition.
    pub batches: AtomicUsize,
}

/// Per-connection counters, folded into the shared [`RiskServerStats`]
/// once per drained batch instead of once per frame.
#[derive(Debug, Default)]
struct LocalCounters {
    assessed: usize,
    flagged: usize,
    malformed: usize,
}

impl LocalCounters {
    fn fold_into(&self, stats: &RiskServerStats) {
        if self.assessed > 0 {
            stats.assessed.fetch_add(self.assessed, Ordering::Relaxed);
        }
        if self.flagged > 0 {
            stats.flagged.fetch_add(self.flagged, Ordering::Relaxed);
        }
        if self.malformed > 0 {
            stats.malformed.fetch_add(self.malformed, Ordering::Relaxed);
        }
    }
}

/// Handle to a running risk server.
pub struct RiskServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    detector: Arc<RwLock<Detector>>,
    stats: Arc<RiskServerStats>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl RiskServerHandle {
    /// The listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters.
    pub fn stats(&self) -> &RiskServerStats {
        &self.stats
    }

    /// A handle to the serving detector slot (for the orchestrator).
    pub fn detector_slot(&self) -> Arc<RwLock<Detector>> {
        Arc::clone(&self.detector)
    }

    /// Atomically replaces the serving detector. In-flight assessments
    /// finish on the old model; the next frame uses the new one.
    pub fn swap_detector(&self, detector: Detector) {
        *self.detector.write() = detector;
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops accepting and joins the acceptor thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Starts a risk server on `addr` (use `127.0.0.1:0` for an ephemeral
/// port) serving `detector`.
pub fn start_risk_server(addr: &str, detector: Detector) -> io::Result<RiskServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let detector = Arc::new(RwLock::new(detector));
    let stats = Arc::new(RiskServerStats::default());

    let acceptor = {
        let stop = Arc::clone(&stop);
        let detector = Arc::clone(&detector);
        let stats = Arc::clone(&stats);
        thread::spawn(move || {
            let mut workers = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let detector = Arc::clone(&detector);
                        let stats = Arc::clone(&stats);
                        workers.push(thread::spawn(move || {
                            let _ = serve_connection(stream, &detector, &stats);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        })
    };

    Ok(RiskServerHandle {
        addr: local,
        stop,
        detector,
        stats,
        acceptor: Some(acceptor),
    })
}

/// How far the parser got through the connection's pending bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameStatus {
    /// No complete frame buffered yet; keep reading.
    NeedMore,
    /// At least one complete frame is ready to assess.
    Ready,
    /// The next header declares an oversize body: answer what came before
    /// it, then fail the connection (no way to resynchronise past it).
    Oversize,
}

fn frame_status(pending: &[u8]) -> FrameStatus {
    // Destructure instead of indexing: this parser faces the network, so
    // the panic-safety lint bans `pending[..]` on the serve path.
    let [len0, len1, body @ ..] = pending else {
        return FrameStatus::NeedMore;
    };
    let len = u16::from_le_bytes([*len0, *len1]) as usize;
    if len > MAX_SUBMISSION_BYTES {
        FrameStatus::Oversize
    } else if body.len() < len {
        FrameStatus::NeedMore
    } else {
        FrameStatus::Ready
    }
}

/// The declared body length of a buffered header, if two header bytes are
/// present.
fn header_len(pending: &[u8]) -> Option<usize> {
    match pending {
        [len0, len1, ..] => Some(u16::from_le_bytes([*len0, *len1]) as usize),
        _ => None,
    }
}

/// Splits up to `max` complete length-prefixed frames off the front of
/// `pending`, leaving any partial tail in place. The second return is true
/// when parsing stopped at an oversize header.
fn split_frames(pending: &mut Vec<u8>, max: usize) -> (Vec<Vec<u8>>, bool) {
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut oversize = false;
    while frames.len() < max {
        let tail = pending.get(offset..).unwrap_or_default();
        match frame_status(tail) {
            FrameStatus::NeedMore => break,
            FrameStatus::Oversize => {
                oversize = true;
                break;
            }
            FrameStatus::Ready => {
                let Some(len) = header_len(tail) else { break };
                let Some(body) = tail.get(2..2 + len) else {
                    break;
                };
                frames.push(body.to_vec());
                offset += 2 + len;
            }
        }
    }
    pending.drain(..offset);
    (frames, oversize)
}

fn serve_connection(
    mut stream: TcpStream,
    detector: &RwLock<Detector>,
    stats: &RiskServerStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Blocking phase: wait until at least one complete frame (or an
        // oversize header) is buffered.
        while frame_status(&pending) == FrameStatus::NeedMore {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // peer closed at (or mid-) frame boundary
                Ok(n) => pending.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) => return Err(e),
            }
        }

        // Drain phase: pull in whatever else the client already pipelined,
        // without blocking, so the whole backlog shares one read guard.
        stream.set_nonblocking(true)?;
        loop {
            if count_frames(&pending) >= MAX_BATCH_PER_GUARD {
                break;
            }
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => pending.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    stream.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        stream.set_nonblocking(false)?;

        let (frames, oversize) = split_frames(&mut pending, MAX_BATCH_PER_GUARD);

        // Assess the whole batch under ONE detector read guard; a model
        // swap therefore lands between batches, never inside one.
        let mut local = LocalCounters::default();
        let verdicts: Vec<Verdict> = {
            let guard = detector.read();
            frames
                .iter()
                .map(|f| assess_frame_with(f, &guard, &mut local))
                .collect()
        };
        if !verdicts.is_empty() {
            stats.batches.fetch_add(1, Ordering::Relaxed);
        }
        local.fold_into(stats);

        // Verdicts go back in frame order, one write per batch.
        let mut out = Vec::with_capacity(verdicts.len() * crate::proto::VERDICT_LEN);
        for v in &verdicts {
            out.extend_from_slice(&v.encode());
        }
        stream.write_all(&out)?;

        if oversize {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(&Verdict::error(VerdictStatus::Malformed).encode());
            return Ok(()); // cannot resynchronise past an unread body
        }
    }
}

fn count_frames(pending: &[u8]) -> usize {
    let mut offset = 0;
    let mut n = 0;
    loop {
        let tail = pending.get(offset..).unwrap_or_default();
        if frame_status(tail) != FrameStatus::Ready {
            return n;
        }
        let Some(len) = header_len(tail) else {
            return n;
        };
        offset += 2 + len;
        n += 1;
    }
}

/// Decodes a submission frame and assesses it against the serving model.
/// Shared by the TCP path and in-process callers (the CLI). Takes the
/// detector lock for the single frame; the TCP path amortises the guard
/// over whole batches via the internal batched variant.
pub fn assess_frame(frame: &[u8], detector: &RwLock<Detector>, stats: &RiskServerStats) -> Verdict {
    let mut local = LocalCounters::default();
    let verdict = {
        let guard = detector.read();
        assess_frame_with(frame, &guard, &mut local)
    };
    local.fold_into(stats);
    verdict
}

/// Frame assessment against an already-borrowed detector, charging a local
/// counter set instead of the shared atomics.
fn assess_frame_with(frame: &[u8], detector: &Detector, local: &mut LocalCounters) -> Verdict {
    let Ok(submission) = decode_submission(frame) else {
        local.malformed += 1;
        return Verdict::error(VerdictStatus::Malformed);
    };
    let Ok(claimed) = submission.user_agent.parse::<UserAgent>() else {
        local.malformed += 1;
        return Verdict::error(VerdictStatus::Malformed);
    };
    let values: Vec<f64> = submission.values.iter().map(|&v| v as f64).collect();
    match detector.assess(&values, claimed) {
        Ok(a) => {
            local.assessed += 1;
            if a.flagged {
                local.flagged += 1;
            }
            Verdict {
                status: VerdictStatus::Assessed,
                flagged: a.flagged,
                risk_factor: a.risk_factor.min(u8::MAX as u32) as u8,
                predicted_cluster: a.predicted_cluster.min(u8::MAX as usize) as u8,
                expected_cluster: a.expected_cluster.map(|c| c.min(u8::MAX as usize) as u8),
            }
        }
        Err(_) => {
            local.malformed += 1;
            Verdict::error(VerdictStatus::SchemaMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;
    use fingerprint::{encode_submission, FeatureSet, Submission};
    use polygraph_core::{TrainConfig, TrainedModel, TrainingSet};

    fn tiny_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (0.0, UserAgent::new(Vendor::Chrome, 60)),
            (10.0, UserAgent::new(Vendor::Chrome, 100)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    fn frame_for(values: Vec<u32>, ua: UserAgent) -> Vec<u8> {
        let sub = Submission {
            session_id: [9u8; 16],
            user_agent: ua.to_ua_string(),
            values,
        };
        encode_submission(&sub).unwrap().to_vec()
    }

    #[test]
    fn assess_frame_honest_and_lying() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&honest, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);

        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&lying, &detector, &stats);
        assert!(v.flagged);
        assert_eq!(v.risk_factor, 20);
        assert_eq!(stats.assessed.load(Ordering::Relaxed), 2);
        assert_eq!(stats.flagged.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn assess_frame_rejects_garbage_and_bad_ua() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();
        let v = assess_frame(&[1, 2, 3], &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Malformed);

        let sub = Submission {
            session_id: [0u8; 16],
            user_agent: "curl/8.0".into(),
            values: vec![1, 2],
        };
        let frame = encode_submission(&sub).unwrap();
        let v = assess_frame(&frame, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Malformed);
        assert_eq!(stats.malformed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn assess_frame_schema_mismatch() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();
        let frame = frame_for(vec![1, 2, 3, 4], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&frame, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::SchemaMismatch);
    }

    #[test]
    fn split_frames_parses_and_preserves_partial_tail() {
        let mut pending = Vec::new();
        for body in [&b"abc"[..], &b"defgh"[..]] {
            pending.extend_from_slice(&(body.len() as u16).to_le_bytes());
            pending.extend_from_slice(body);
        }
        pending.extend_from_slice(&5u16.to_le_bytes());
        pending.extend_from_slice(b"xy"); // incomplete body

        let (frames, oversize) = split_frames(&mut pending, MAX_BATCH_PER_GUARD);
        assert_eq!(frames, vec![b"abc".to_vec(), b"defgh".to_vec()]);
        assert!(!oversize);
        assert_eq!(pending, [&5u16.to_le_bytes()[..], b"xy"].concat());

        // `max` caps the batch.
        let mut two = Vec::new();
        for _ in 0..3 {
            two.extend_from_slice(&1u16.to_le_bytes());
            two.push(7);
        }
        let (frames, _) = split_frames(&mut two, 2);
        assert_eq!(frames.len(), 2);
        assert_eq!(count_frames(&two), 1);
    }

    #[test]
    fn split_frames_stops_at_oversize_header() {
        let mut pending = Vec::new();
        pending.extend_from_slice(&3u16.to_le_bytes());
        pending.extend_from_slice(b"abc");
        pending.extend_from_slice(&u16::MAX.to_le_bytes()); // oversize
        let (frames, oversize) = split_frames(&mut pending, MAX_BATCH_PER_GUARD);
        assert_eq!(frames, vec![b"abc".to_vec()]);
        assert!(oversize, "parsing must stop at the oversize header");
    }

    #[test]
    fn pipelined_frames_drain_in_batches() {
        // Write many frames before reading a single verdict: the server
        // should answer all of them, in order, using far fewer guard
        // acquisitions than frames.
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let total = 100usize;
        let mut wire = Vec::new();
        for i in 0..total {
            let frame = if i % 2 == 0 { &honest } else { &lying };
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).unwrap();

        for i in 0..total {
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            let v = Verdict::decode(&buf).unwrap();
            assert_eq!(v.status, VerdictStatus::Assessed, "frame {i}");
            assert_eq!(v.flagged, i % 2 == 1, "verdicts must come back in order");
        }
        drop(stream);

        // Let the connection worker finish folding before reading stats.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(server.stats().assessed.load(Ordering::Relaxed), total);
        assert_eq!(server.stats().flagged.load(Ordering::Relaxed), total / 2);
        let batches = server.stats().batches.load(Ordering::Relaxed);
        assert!(batches >= 1 && batches <= total, "got {batches} batches");
        server.shutdown();
    }

    #[test]
    fn server_round_trip_over_tcp() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let frame = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        stream
            .write_all(&(frame.len() as u16).to_le_bytes())
            .unwrap();
        stream.write_all(&frame).unwrap();
        let mut buf = [0u8; crate::proto::VERDICT_LEN];
        stream.read_exact(&mut buf).unwrap();
        let v = Verdict::decode(&buf).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn detector_swap_changes_verdicts_live() {
        // Model A knows Chrome 60 at (0,0). Model B is trained with
        // Chrome 60 at (10,10) instead — after the swap the same frame
        // flips from honest to flagged.
        let detector_a = tiny_detector();
        let server = start_risk_server("127.0.0.1:0", detector_a).unwrap();

        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (10.0, UserAgent::new(Vendor::Chrome, 60)),
            (0.0, UserAgent::new(Vendor::Firefox, 60)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let detector_b = Detector::new(TrainedModel::fit(fs, &set, config).unwrap());

        let frame = frame_for(vec![0, 0], UserAgent::new(Vendor::Chrome, 60));
        let ask = |addr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            stream
                .write_all(&(frame.len() as u16).to_le_bytes())
                .unwrap();
            stream.write_all(&frame).unwrap();
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            Verdict::decode(&buf).unwrap()
        };

        assert!(
            !ask(server.local_addr()).flagged,
            "model A: (0,0) is Chrome 60"
        );
        server.swap_detector(detector_b);
        assert!(
            ask(server.local_addr()).flagged,
            "model B: (0,0) is Firefox territory"
        );
        assert_eq!(server.stats().swaps.load(Ordering::Relaxed), 1);
        server.shutdown();
    }
}
