//! Shared harness for the experiment binaries (`exp_*`) that regenerate
//! every table and figure of the paper.
//!
//! Each binary accepts `--sessions N` to scale the simulated traffic
//! (default 60 000 for quick runs; pass 205000 for the paper-scale
//! window) and `--seed S` to vary the world. Every binary prints the
//! paper's reported value next to the measured one.

use polygraph_core::{TrainConfig, TrainedModel};
use std::io::Write;
use traffic::{generate, TrafficConfig, TrafficDataset};

pub use browser_engine;
pub use fingerprint;
pub use fraud_browsers;
pub use polygraph_core;
pub use polygraph_ml;
pub use traffic;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Simulated sessions in the training window.
    pub sessions: usize,
    /// World seed.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            sessions: 60_000,
            seed: TrafficConfig::paper_training().seed,
        }
    }
}

/// Parses `--sessions N` and `--seed S` from `std::env::args`.
pub fn parse_options() -> ExpOptions {
    let mut opts = ExpOptions::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" if i + 1 < args.len() => {
                opts.sessions = args[i + 1].parse().unwrap_or_else(|_| {
                    usage_error(&format!("invalid --sessions value {:?}", args[i + 1]))
                });
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                opts.seed = args[i + 1].parse().unwrap_or_else(|_| {
                    usage_error(&format!("invalid --seed value {:?}", args[i + 1]))
                });
                i += 2;
            }
            other => {
                usage_error(&format!(
                    "unknown argument {other:?} (expected --sessions N / --seed S)"
                ));
            }
        }
    }
    opts
}

/// Writes a usage error to stderr and exits. The experiment harness is the
/// one place library code talks to the console, and it does so through
/// explicit [`Write`] sinks rather than `println!`/`eprintln!` so the
/// workspace-hygiene lint (`cargo xtask lint`, rule POLY-H002) keeps every
/// other library crate print-free.
fn usage_error(msg: &str) -> ! {
    let _ = writeln!(std::io::stderr().lock(), "{msg}");
    std::process::exit(2);
}

/// Writes one line to stdout, ignoring a broken pipe.
fn emit(line: std::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stdout().lock(), "{line}");
}

/// Generates the paper's training window and fits the production model.
pub fn train_paper_model(opts: ExpOptions) -> (TrainedModel, TrafficDataset) {
    let feature_set = fingerprint::FeatureSet::table8();
    let config = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    let data = generate(&feature_set, &config);
    let (rows, uas) = data.rows_and_user_agents();
    let training =
        polygraph_core::TrainingSet::from_rows(rows, uas).expect("generated data is well-formed");
    let model = TrainedModel::fit(feature_set, &training, TrainConfig::default())
        .expect("training on generated traffic succeeds");
    (model, data)
}

/// Prints a `paper vs measured` line in a consistent format.
pub fn report(metric: &str, paper: &str, measured: &str) {
    emit(format_args!(
        "  {metric:<52} paper: {paper:>10}   measured: {measured:>10}"
    ));
}

/// Prints a section header.
pub fn header(title: &str) {
    emit(format_args!(""));
    emit(format_args!("== {title} =="));
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
