//! # fraud-browsers
//!
//! Simulators for the anti-detect ("fraud") browsers the paper analyses
//! (§2.2–2.3, Table 1). A fraud browser loads a stolen victim profile —
//! most importantly the victim's user-agent — on top of whatever engine the
//! product actually embeds. The paper sorts products into four behavioural
//! categories, which fully determine what a coarse-grained fingerprint can
//! see:
//!
//! 1. **Mismatched fingerprint** — the product's own spoofing layer
//!    produces a fingerprint matching *no* legitimate browser
//!    (Linken Sphere, ClonBrowser).
//! 2. **Fixed fingerprint** — a legitimate (embedded-Chromium) fingerprint
//!    that does not change when the user-agent is changed (Incogniton,
//!    GoLogin, CheBrowser, VMLogin, Octo, Sphere, AntBrowser).
//! 3. **Engine swap** — the product switches its engine along with the
//!    user-agent; fingerprint and claim stay consistent (AdsPower).
//! 4. **Genuine browser in a spoofed environment** — nothing for a
//!    fingerprint to see at all.
//!
//! Categories 1–2 are Browser Polygraph's detection target; categories 3–4
//! are modelled precisely so the evaluation can show they are *not*
//! detectable by this technique (§2.3, §8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod markers;
pub mod profile;

pub use catalog::{table1_products, Category, FraudProduct};
pub use markers::{has_any_marker, scan_markers, Marker, MarkerHit};
pub use profile::{FraudProfile, ProfilePlan};
