//! Tables 13 and 14 (Appendix-5): clustering quality of coarse- versus
//! fine-grained fingerprints on clean synthetic sweeps.
//!
//! Windows 10/11 (Table 13) and macOS Sonoma/Sequoia (Table 14): every
//! sample is collected three ways — Browser Polygraph's 28 features,
//! a FingerprintJS-style payload, and a ClientJS-style payload — then each
//! representation goes through the same flatten → encode → scale → PCA →
//! elbow → k-means → majority-accuracy recipe.

use baselines::cluster_flat_dataset;
use baselines::collectors::{collect_clientjs, collect_fingerprintjs};
use baselines::flatten::{encode_dataset, flatten_json, CLIENTJS_UA_DERIVED};
use browser_engine::{Os, UserAgent};
use fingerprint::FeatureSet;
use polygraph_bench::header;
use traffic::synthetic::{macos_sweep, windows_sweep, SyntheticSample};

/// BrowserStack-style launches reuse fixed OS images, so environment
/// attributes (screen, timezone, locale) are per-image constants rather
/// than per-visit noise.
fn image_seed(os: Os) -> u64 {
    match os {
        Os::Windows10 | Os::Windows11 => 10,
        // The two macOS images run on identical Mac minis: same display,
        // same locale — one environment.
        Os::MacOsSonoma | Os::MacOsSequoia => 20,
        Os::Linux => 30,
    }
}

fn run_environment(name: &str, sweep: &[SyntheticSample], paper: [&str; 3]) {
    header(&format!("Table {name}: clustering comparison"));
    println!(
        "  {:<18} {:>6} {:>9} {:>5} {:>4} {:>10}   paper",
        "technique", "size", "features", "PCA", "k", "accuracy"
    );
    let labels: Vec<UserAgent> = sweep.iter().map(|s| s.ua).collect();

    // Browser Polygraph: the 28 coarse-grained features, directly.
    let fs = FeatureSet::table8();
    let rows: Vec<Vec<f64>> = sweep
        .iter()
        .map(|s| fs.extract(&s.instance).as_f64())
        .collect();
    let out =
        cluster_flat_dataset(&rows, &labels, 0.985, 2..=20, 0.10, 7).expect("polygraph clustering");
    println!(
        "  {:<18} {:>6} {:>9} {:>5} {:>4} {:>9.2}%   {}",
        "Browser Polygraph",
        out.dataset_size,
        out.features,
        out.pca_components,
        out.k,
        out.accuracy * 100.0,
        paper[0]
    );

    // FingerprintJS: nested JSON -> Appendix-5 flattening -> clustering.
    let docs: Vec<_> = sweep
        .iter()
        .enumerate()
        .map(|(i, s)| {
            flatten_json(
                &collect_fingerprintjs(&s.instance, s.os, image_seed(s.os), i as u64).payload,
            )
        })
        .collect();
    let enc = encode_dataset(&docs, &[]);
    let out = cluster_flat_dataset(&enc.rows, &labels, 0.985, 2..=20, 0.10, 7)
        .expect("fingerprintjs clustering");
    println!(
        "  {:<18} {:>6} {:>9} {:>5} {:>4} {:>9.2}%   {}",
        "FingerprintJS",
        out.dataset_size,
        out.features,
        out.pca_components,
        out.k,
        out.accuracy * 100.0,
        paper[1]
    );

    // ClientJS: same, with UA-derived columns excluded.
    let docs: Vec<_> = sweep
        .iter()
        .enumerate()
        .map(|(i, s)| {
            flatten_json(&collect_clientjs(&s.instance, s.os, image_seed(s.os), i as u64).payload)
        })
        .collect();
    let enc = encode_dataset(&docs, &CLIENTJS_UA_DERIVED);
    let out = cluster_flat_dataset(&enc.rows, &labels, 0.985, 2..=20, 0.10, 7)
        .expect("clientjs clustering");
    println!(
        "  {:<18} {:>6} {:>9} {:>5} {:>4} {:>9.2}%   {}",
        "ClientJS",
        out.dataset_size,
        out.features,
        out.pca_components,
        out.k,
        out.accuracy * 100.0,
        paper[2]
    );
}

fn main() {
    let win = windows_sweep();
    run_environment(
        "13 (Windows 10/11)",
        &win,
        [
            "430 samples, 28 feats, PCA 13, k 14, 100%",
            "382 samples, 268 feats, PCA 55, k 16, 99.21%",
            "391 samples, 7 feats, PCA 2, k 5, 93.60%",
        ],
    );

    let mac = macos_sweep();
    run_environment(
        "14 (macOS Sonoma/Sequoia)",
        &mac,
        [
            "320 samples, 28 feats, PCA 11, k 14, 100%",
            "325 samples, 589 feats, PCA 36, k 9, 99.38%",
            "327 samples, 4 feats, PCA 2, k 15, 85.93%",
        ],
    );
}
