//! Parallel execution must be bit-identical to sequential execution.
//!
//! The training kernels split work by index (restart, tree, row chunk)
//! with per-index RNG streams and fold every floating-point reduction in
//! a fixed chunk order, so the same seed must produce the same bits on
//! any thread count. These tests pin that contract across thread counts
//! {1, 2, 8} and several seeds, from the individual kernels all the way
//! up to a full `TrainedModel::fit` → `predict_cluster` round trip.

use browser_polygraph::core::{TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::ml::iforest::IsolationForestConfig;
use browser_polygraph::ml::kmeans::{elbow_scan, elbow_scan_with_pool, KMeansConfig};
use browser_polygraph::ml::{IsolationForest, KMeans, Matrix, Pca, ThreadPool};
use browser_polygraph::traffic::{generate, TrafficConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [1, 42, 0xDEAD_BEEF];

/// Deterministic synthetic data: enough rows to span multiple ROW_CHUNK
/// blocks so chunk-order folds are actually exercised.
fn synthetic(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut state = salt | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 100.0
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("well-formed")
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn kmeans_fit_is_bit_identical_across_thread_counts() {
    let x = synthetic(1500, 4, 0xA11CE);
    for seed in SEEDS {
        for n_init in [1usize, 4] {
            let cfg = KMeansConfig::new(5).with_seed(seed).with_n_init(n_init);
            let baseline = KMeans::fit(&x, cfg).expect("fit");
            for threads in THREAD_COUNTS {
                let par = KMeans::fit_with_pool(&x, cfg, &ThreadPool::new(threads)).expect("fit");
                assert_bits_eq(
                    baseline.centroids().as_slice(),
                    par.centroids().as_slice(),
                    &format!("centroids seed={seed} n_init={n_init} threads={threads}"),
                );
                assert_eq!(
                    baseline.wcss().to_bits(),
                    par.wcss().to_bits(),
                    "wcss seed={seed} n_init={n_init} threads={threads}"
                );
                assert_eq!(baseline.iterations(), par.iterations());
            }
        }
    }
}

#[test]
fn isolation_forest_is_bit_identical_across_thread_counts() {
    let x = synthetic(1200, 3, 0xF0357);
    for seed in SEEDS {
        let cfg = IsolationForestConfig {
            n_trees: 60,
            sample_size: 128,
            seed,
        };
        let baseline = IsolationForest::fit(&x, cfg).expect("fit");
        let base_scores = baseline.score(&x);
        let base_outliers = baseline.outlier_indices(&x, 0.01).expect("outliers");
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let par = IsolationForest::fit_with_pool(&x, cfg, &pool).expect("fit");
            assert_bits_eq(
                &base_scores,
                &par.score_with_pool(&x, &pool),
                &format!("scores seed={seed} threads={threads}"),
            );
            assert_eq!(
                base_outliers,
                par.outlier_indices_with_pool(&x, 0.01, &pool)
                    .expect("outliers"),
                "outlier set seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn elbow_scan_is_bit_identical_across_thread_counts() {
    let x = synthetic(900, 3, 0xE1B0);
    let ks = [1usize, 2, 3, 4, 5, 6];
    for seed in SEEDS {
        let baseline = elbow_scan(&x, &ks, seed).expect("scan");
        for threads in THREAD_COUNTS {
            let par = elbow_scan_with_pool(&x, &ks, seed, &ThreadPool::new(threads)).expect("scan");
            assert_eq!(baseline.points.len(), par.points.len());
            for (b, p) in baseline.points.iter().zip(&par.points) {
                assert_eq!(b.k, p.k);
                assert_eq!(b.wcss.to_bits(), p.wcss.to_bits(), "wcss at k={}", b.k);
                assert_eq!(
                    b.relative_improvement.to_bits(),
                    p.relative_improvement.to_bits(),
                    "relative improvement at k={}",
                    b.k
                );
            }
            assert_eq!(baseline.knee(), par.knee());
        }
    }
}

#[test]
fn covariance_and_pca_are_bit_identical_across_thread_counts() {
    // > 2 ROW_CHUNK rows: partial sums must cross chunk boundaries.
    let x = synthetic(2500, 5, 0xC0F3);
    let base_cov = x.covariance().expect("covariance");
    let base_pca = Pca::fit(&x, 3).expect("pca");
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let cov = x.covariance_with_pool(&pool).expect("covariance");
        assert_bits_eq(
            base_cov.as_slice(),
            cov.as_slice(),
            &format!("covariance threads={threads}"),
        );
        let pca = Pca::fit_with_pool(&x, 3, &pool).expect("pca");
        assert_bits_eq(
            base_pca.explained_variance(),
            pca.explained_variance(),
            &format!("eigenvalues threads={threads}"),
        );
        for row in x.iter_rows().take(20) {
            assert_bits_eq(
                &base_pca.transform_row(row).expect("transform"),
                &pca.transform_row(row).expect("transform"),
                &format!("projection threads={threads}"),
            );
        }
    }
}

#[test]
fn full_training_round_trip_is_bit_identical_across_thread_counts() {
    // End to end: traffic → TrainedModel::fit on every thread count must
    // give the same cluster table, accuracy bits, and per-row cluster
    // predictions.
    let features = FeatureSet::table8();
    let data = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(4_000),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let config = TrainConfig::default();

    let baseline = TrainedModel::fit(features.clone(), &training, config).expect("serial fit");
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let par = TrainedModel::fit_with_pool(features.clone(), &training, config, &pool)
            .expect("parallel fit");
        assert_eq!(
            baseline.cluster_table(),
            par.cluster_table(),
            "cluster table, {threads} threads"
        );
        assert_eq!(
            baseline.train_accuracy().to_bits(),
            par.train_accuracy().to_bits(),
            "accuracy, {threads} threads"
        );
        assert_eq!(baseline.outliers_removed(), par.outliers_removed());
        for row in training.rows().iter().take(200) {
            assert_eq!(
                baseline.predict_cluster(row).expect("predict"),
                par.predict_cluster(row).expect("predict"),
                "{threads} threads"
            );
        }
    }
}
