//! Property tests for the request-stream frame parser: arbitrary frame
//! sequences, arbitrarily chunked, must reassemble exactly — and an
//! oversize header must surface only after every preceding frame has
//! been answered.

use fingerprint::MAX_SUBMISSION_BYTES;
use polygraph_service::framing::{count_frames, frame_status, split_frames, FrameStatus};
use proptest::prelude::*;

/// Deterministic pseudo-random byte for a (seed, index) pair.
fn body_byte(seed: u64, i: usize) -> u8 {
    (seed
        .wrapping_add(i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        >> 32) as u8
}

/// Builds the wire image of `lens` frames with deterministic bodies.
fn wire_image(lens: &[u16], seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut wire = Vec::new();
    let mut bodies = Vec::new();
    for (f, &len) in lens.iter().enumerate() {
        let body: Vec<u8> = (0..len as usize)
            .map(|i| body_byte(seed ^ (f as u64) << 32, i))
            .collect();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&body);
        bodies.push(body);
    }
    (wire, bodies)
}

/// Splits `wire` into chunks at pseudo-random boundaries derived from
/// `seed`, covering the whole stream.
fn chunked(wire: &[u8], seed: u64) -> Vec<&[u8]> {
    let mut chunks = Vec::new();
    let mut at = 0usize;
    let mut i = 0u64;
    while at < wire.len() {
        let step =
            1 + (seed.wrapping_add(i).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as usize % 7;
        let end = (at + step).min(wire.len());
        chunks.push(&wire[at..end]);
        at = end;
        i += 1;
    }
    chunks
}

proptest! {
    #[test]
    fn chunked_streams_reassemble_exactly(
        lens in proptest::collection::vec(0u16..600, 0..10),
        body_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
        max in 1usize..6,
    ) {
        let (wire, bodies) = wire_image(&lens, body_seed);
        let mut pending: Vec<u8> = Vec::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut saw_oversize = false;

        for chunk in chunked(&wire, chunk_seed) {
            pending.extend_from_slice(chunk);
            // Drain in bounded batches, exactly as the server does.
            loop {
                let before = pending.len();
                let (frames, oversize) = split_frames(&mut pending, max);
                prop_assert!(frames.len() <= max);
                saw_oversize |= oversize;
                got.extend(frames);
                if oversize || (pending.len() == before) {
                    break;
                }
            }
        }
        prop_assert!(!saw_oversize, "no oversize frames were sent");
        prop_assert_eq!(got, bodies);
        prop_assert!(pending.is_empty(), "no bytes may be left behind");
        prop_assert_eq!(count_frames(&pending), 0);
    }

    #[test]
    fn oversize_header_yields_preceding_frames_first(
        lens in proptest::collection::vec(0u16..600, 0..6),
        body_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
        oversize_len in (MAX_SUBMISSION_BYTES as u16 + 1)..u16::MAX,
    ) {
        let (mut wire, bodies) = wire_image(&lens, body_seed);
        // A frame whose header declares more than MAX_SUBMISSION_BYTES,
        // followed by garbage the parser must never try to skip.
        wire.extend_from_slice(&oversize_len.to_le_bytes());
        wire.extend_from_slice(&[0xAA; 16]);

        let mut pending: Vec<u8> = Vec::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut saw_oversize = false;
        for chunk in chunked(&wire, chunk_seed) {
            pending.extend_from_slice(chunk);
            loop {
                let before = pending.len();
                let (frames, oversize) = split_frames(&mut pending, 32);
                got.extend(frames);
                if oversize {
                    saw_oversize = true;
                }
                if oversize || pending.len() == before {
                    break;
                }
            }
        }
        // Every frame sent before the oversize header is answered...
        prop_assert_eq!(got, bodies);
        // ...and the poisoned tail is still reported as oversize, with
        // the header left at the front of the buffer.
        prop_assert!(saw_oversize);
        prop_assert_eq!(frame_status(&pending), FrameStatus::Oversize);
    }

    #[test]
    fn count_frames_agrees_with_split_frames(
        lens in proptest::collection::vec(0u16..600, 0..10),
        body_seed in any::<u64>(),
        truncate in 0usize..40,
    ) {
        let (mut wire, _) = wire_image(&lens, body_seed);
        // Possibly cut the stream mid-frame.
        let cut = wire.len().saturating_sub(truncate);
        wire.truncate(cut);
        let counted = count_frames(&wire);
        let mut pending = wire.clone();
        let (frames, oversize) = split_frames(&mut pending, usize::MAX);
        prop_assert!(!oversize);
        prop_assert_eq!(frames.len(), counted);
        // The tail that remains is exactly the partial frame.
        prop_assert_eq!(count_frames(&pending), 0);
    }
}
