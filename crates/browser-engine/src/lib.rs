//! # browser-engine
//!
//! A deterministic simulation of the *web platform* as seen by coarse-grained
//! browser fingerprinting.
//!
//! The Browser Polygraph paper probes real browsers with
//! `Object.getOwnPropertyNames(X.prototype).length` and
//! `X.prototype.hasOwnProperty('y')`. This crate replaces the real browsers
//! with a model that preserves everything those probes can observe:
//!
//! * every engine family (Blink, Gecko, EdgeHTML) exposes per-prototype
//!   property counts that are **piecewise-constant in the engine version**,
//!   jumping at release-era boundaries ([`eras`]);
//! * Chromium-derived browsers (Chrome, Edge 79+, Brave) share Blink's
//!   counts, possibly with product-specific perturbations;
//! * user configuration (Firefox `about:config` flags, Chrome extensions)
//!   perturbs individual counts ([`perturb`]);
//! * presence/absence ("time-based") features appear and disappear at
//!   specific versions ([`timebased`]).
//!
//! The era boundaries are calibrated so that the 28 features of the paper's
//! Table 8 separate releases into the same groups as the paper's Table 3
//! (see `DESIGN.md` §5).
//!
//! The crate is purely deterministic: the same [`BrowserInstance`] always
//! answers the same probes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod eras;
pub mod instance;
pub mod perturb;
pub mod protodb;
pub mod timebased;
pub mod useragent;

pub use engine::{Engine, EngineFamily};
pub use instance::BrowserInstance;
pub use perturb::Perturbation;
pub use useragent::{Os, UserAgent, Vendor};
