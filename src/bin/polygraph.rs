//! `polygraph` — the operator CLI.
//!
//! ```text
//! polygraph train   [--sessions N] [--seed S] --registry DIR
//! polygraph table   --registry DIR
//! polygraph assess  --registry DIR --ua "<user-agent>" --values 330,270,...
//! polygraph drift   --registry DIR [--sessions N]
//! polygraph serve   --registry DIR [--addr HOST:PORT] [--backend threaded|reactor]
//! ```
//!
//! `train` fits a model on simulated traffic and publishes it to the
//! registry; `table` prints the model's Table 3; `assess` runs Algorithm 1
//! on one fingerprint; `drift` replays the late-2023 drift window against
//! the registered model; `serve` starts the TCP risk service.

use browser_polygraph::core::{Detector, DriftDetector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{UserAgent, Vendor};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::service::{ModelRegistry, RiskPolicy};
use browser_polygraph::traffic::{generate, TrafficConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&opts),
        "table" => cmd_table(&opts),
        "assess" => cmd_assess(&opts),
        "drift" => cmd_drift(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  polygraph train   [--sessions N] [--seed S] --registry DIR
  polygraph table   --registry DIR
  polygraph assess  --registry DIR --ua \"<user-agent string>\" --values v1,v2,...
  polygraph drift   --registry DIR [--sessions N] [--seed S]
  polygraph serve   --registry DIR [--addr HOST:PORT] [--backend threaded|reactor]";

struct Opts {
    flags: HashMap<String, String>,
}

impl Opts {
    fn registry(&self) -> Result<ModelRegistry, String> {
        let dir = self.flags.get("registry").ok_or("missing --registry DIR")?;
        ModelRegistry::open(dir).map_err(|e| format!("opening registry: {e}"))
    }

    fn sessions(&self, default: usize) -> Result<usize, String> {
        match self.flags.get("sessions") {
            Some(v) => v.parse().map_err(|_| format!("invalid --sessions {v:?}")),
            None => Ok(default),
        }
    }

    fn seed(&self, default: u64) -> Result<u64, String> {
        match self.flags.get("seed") {
            Some(v) => v.parse().map_err(|_| format!("invalid --seed {v:?}")),
            None => Ok(default),
        }
    }

    fn load_model(&self) -> Result<TrainedModel, String> {
        self.registry()?
            .load_latest()
            .map_err(|e| format!("loading model: {e}"))?
            .ok_or_else(|| "registry holds no model; run `polygraph train` first".into())
    }
}

fn parse_flags(args: &[String]) -> Result<Opts, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument {:?}", args[i]));
        };
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(Opts { flags })
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let registry = opts.registry()?;
    let sessions = opts.sessions(60_000)?;
    let base = TrafficConfig::paper_training().with_sessions(sessions);
    let seed = opts.seed(base.seed)?;
    let features = FeatureSet::table8();
    eprintln!("generating {sessions} sessions of simulated traffic ...");
    let data = generate(&features, &base.with_seed(seed));
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).map_err(|e| e.to_string())?;
    eprintln!("training (scale -> outliers -> PCA(7) -> k-means(11)) ...");
    let model = TrainedModel::fit(features, &training, TrainConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "accuracy {:.2}%, {} outliers removed, {} user-agents",
        model.train_accuracy() * 100.0,
        model.outliers_removed(),
        model.cluster_table().entries().len()
    );
    let version = registry.publish(&model).map_err(|e| e.to_string())?;
    println!("published model v{version} to {}", registry.dir().display());
    Ok(())
}

fn cmd_table(opts: &Opts) -> Result<(), String> {
    let model = opts.load_model()?;
    println!(
        "model: accuracy {:.2}%, k = {}",
        model.train_accuracy() * 100.0,
        model.cluster_table().k()
    );
    for (cluster, _) in model.cluster_table().rows() {
        println!(
            "  cluster {cluster:>2}: {}",
            model.cluster_table().describe_cluster(cluster)
        );
    }
    Ok(())
}

fn cmd_assess(opts: &Opts) -> Result<(), String> {
    let model = opts.load_model()?;
    let ua_string = opts.flags.get("ua").ok_or("missing --ua")?;
    let claimed: UserAgent = ua_string
        .parse()
        .map_err(|e| format!("unparseable --ua: {e}"))?;
    let values: Vec<f64> = opts
        .flags
        .get("values")
        .ok_or("missing --values v1,v2,...")?
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid value {v:?}"))
        })
        .collect::<Result<_, _>>()?;
    let detector = Detector::new(model);
    let a = detector
        .assess(&values, claimed)
        .map_err(|e| e.to_string())?;
    let policy = RiskPolicy::default();
    println!("claimed:            {}", claimed.label());
    println!("predicted cluster:  {}", a.predicted_cluster);
    println!("expected cluster:   {:?}", a.expected_cluster);
    println!("flagged:            {}", a.flagged);
    println!("risk factor:        {}", a.risk_factor);
    let verdict = browser_polygraph::service::Verdict {
        status: browser_polygraph::service::VerdictStatus::Assessed,
        flagged: a.flagged,
        risk_factor: a.risk_factor as u8,
        predicted_cluster: a.predicted_cluster as u8,
        expected_cluster: a.expected_cluster.map(|c| c as u8),
    };
    println!("policy action:      {:?}", policy.decide(&verdict));
    Ok(())
}

fn cmd_drift(opts: &Opts) -> Result<(), String> {
    let model = opts.load_model()?;
    let sessions = opts.sessions(40_000)?;
    let base = TrafficConfig::drift_window().with_sessions(sessions);
    let seed = opts.seed(base.seed)?;
    eprintln!("generating {sessions} sessions from the late-2023 window ...");
    let data = generate(&FeatureSet::table8(), &base.with_seed(seed));
    let (rows, uas) = data.rows_and_user_agents();
    let batch = TrainingSet::from_rows(rows, uas).map_err(|e| e.to_string())?;
    let monitor = DriftDetector::new(&model);
    for version in 115..=119u32 {
        let releases = [
            UserAgent::new(Vendor::Chrome, version),
            UserAgent::new(Vendor::Firefox, version),
            UserAgent::new(Vendor::Edge, version),
        ];
        let (observations, decision) = monitor
            .checkpoint(&batch, &releases)
            .map_err(|e| e.to_string())?;
        for o in &observations {
            println!(
                "{:<12} cluster {:>2} (expected {:?}) accuracy {:>6.2}%{}",
                o.release.label(),
                o.cluster,
                o.expected_cluster,
                o.accuracy * 100.0,
                if o.triggers_retraining() {
                    "  <-- drift"
                } else {
                    ""
                }
            );
        }
        if let browser_polygraph::core::DriftDecision::Retrain { triggers } = decision {
            println!(
                "RETRAIN: {}",
                triggers
                    .iter()
                    .map(|u| u.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let model = opts.load_model()?;
    let addr = opts
        .flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7431");
    let backend = match opts.flags.get("backend").map(String::as_str) {
        None | Some("threaded") => browser_polygraph::service::ServerBackend::Threaded,
        Some("reactor") => browser_polygraph::service::ServerBackend::Reactor,
        Some(other) => return Err(format!("unknown backend {other:?} (threaded|reactor)")),
    };
    let config = browser_polygraph::service::RiskServerConfig {
        backend,
        ..Default::default()
    };
    let server =
        browser_polygraph::service::start_risk_server_with(addr, Detector::new(model), config)
            .map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "risk service listening on {} ({backend:?} backend)",
        server.local_addr()
    );
    println!("frames: u16-LE length + fingerprint submission; response: 8-byte verdict");
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
