//! Offline vendored criterion-compatible benchmark harness.
//!
//! Implements the criterion API surface this workspace's benches use
//! (`Criterion::bench_function`, benchmark groups with `sample_size`,
//! `Bencher::iter` / `iter_batched`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock measurement loop:
//! one warm-up iteration, then `sample_size` timed iterations, reporting
//! min / mean / max per benchmark to stdout. No statistics machinery, no
//! HTML reports — numbers comparable within a run, which is all the
//! serial-vs-parallel comparisons need.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// How `iter_batched` amortises setup cost. This harness times the
/// routine per call either way, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    let min = bencher.durations.iter().min().copied().unwrap_or_default();
    let max = bencher.durations.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.durations.iter().sum();
    let mean = total / bencher.durations.len() as u32;
    println!(
        "{name:<56} [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.durations.len(),
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Set the default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group sharing a sample-size override.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 6, "1 warm-up + 5 samples");
    }
}
