//! Integration: the networked collection path must be byte-equivalent to
//! the direct in-process path, and robust against a hostile wire.

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{BrowserInstance, Engine, UserAgent, Vendor};
use browser_polygraph::fingerprint::{
    decode_submission, encode_submission, FeatureSet, Submission, MAX_SUBMISSION_BYTES,
};
use browser_polygraph::traffic::collect::{
    start_collector, CollectorClient, FaultConfig, SubmitOutcome,
};
use browser_polygraph::traffic::{generate, TrafficConfig};

fn small_detector() -> Detector {
    let features = FeatureSet::table8();
    let data = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(10_000),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    Detector::new(TrainedModel::fit(features, &training, TrainConfig::default()).expect("train"))
}

#[test]
fn networked_path_equals_direct_path() {
    let detector = small_detector();
    let features = FeatureSet::table8();
    let browsers = [
        BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112)),
        BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 105)),
        BrowserInstance::with_engine(Engine::blink(104), UserAgent::new(Vendor::Firefox, 110)),
    ];

    let server = start_collector("127.0.0.1:0").expect("bind");
    let mut client = CollectorClient::connect(server.local_addr()).expect("connect");
    for (i, b) in browsers.iter().enumerate() {
        let sub = Submission {
            session_id: [i as u8; 16],
            user_agent: b.claimed_user_agent().to_ua_string(),
            values: features.extract(b).values().to_vec(),
        };
        assert_eq!(
            client.submit(&sub).expect("submit"),
            SubmitOutcome::Accepted
        );
    }
    drop(client);
    let received = server.shutdown();
    assert_eq!(received.len(), browsers.len());

    for (b, sub) in browsers.iter().zip(&received) {
        // Server-side reconstruction.
        let claimed: UserAgent = sub.user_agent.parse().expect("parseable UA");
        let values: Vec<f64> = sub.values.iter().map(|&v| v as f64).collect();
        let via_wire = detector.assess(&values, claimed).expect("assess");
        // Direct in-process assessment.
        let direct = detector.assess_browser(b).expect("assess");
        assert_eq!(via_wire, direct, "wire and direct paths must agree");
    }
}

#[test]
fn every_catalogued_browser_fits_the_budget() {
    // §3: the 1 KB budget must hold for every browser the paper studied,
    // for both the 28-feature and the full 513-candidate schema.
    let table8 = FeatureSet::table8();
    let candidates = FeatureSet::candidates_513();
    for release in browser_polygraph::engine::catalog::legitimate_releases() {
        let b = BrowserInstance::genuine(release.ua);
        for schema in [&table8, &candidates] {
            let sub = Submission {
                session_id: [0u8; 16],
                user_agent: release.ua.to_ua_string(),
                values: schema.extract(&b).values().to_vec(),
            };
            let frame =
                encode_submission(&sub).unwrap_or_else(|e| panic!("{}: {e}", release.ua.label()));
            assert!(frame.len() <= MAX_SUBMISSION_BYTES);
            assert_eq!(decode_submission(&frame).expect("round trip"), sub);
        }
    }
}

#[test]
fn lossy_link_loses_frames_but_never_state() {
    let server = start_collector("127.0.0.1:0").expect("bind");
    let features = FeatureSet::table8();
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    let mut client = CollectorClient::connect(server.local_addr())
        .expect("connect")
        .with_faults(
            FaultConfig {
                drop_chance: 0.3,
                corrupt_chance: 0.2,
            },
            1234,
        );

    let mut accepted = 0usize;
    let mut attempts = 0usize;
    for i in 0..60u8 {
        attempts += 1;
        let sub = Submission {
            session_id: [i; 16],
            user_agent: browser.claimed_user_agent().to_ua_string(),
            values: features.extract(&browser).values().to_vec(),
        };
        match client.submit(&sub) {
            Ok(SubmitOutcome::Accepted) => accepted += 1,
            Ok(_) => {}
            // A corrupted length prefix can desynchronise the stream;
            // reconnect, as a real uploader would.
            Err(_) => {
                client = CollectorClient::connect(server.local_addr())
                    .expect("reconnect")
                    .with_faults(
                        FaultConfig {
                            drop_chance: 0.3,
                            corrupt_chance: 0.2,
                        },
                        i as u64,
                    );
            }
        }
    }
    drop(client);
    let received = server.shutdown();
    assert_eq!(
        received.len(),
        accepted,
        "server state matches acknowledgements"
    );
    assert!(
        accepted > attempts / 4,
        "some frames get through ({accepted}/{attempts})"
    );
    // Every stored submission decoded cleanly (no corrupted frame was
    // accepted with mangled *content* that still parsed as our schema and
    // wrong width).
    for sub in &received {
        assert_eq!(sub.values.len(), features.len());
    }
}

#[test]
fn collected_traffic_retrains_through_the_store() {
    // The full data loop: browsers submit over TCP, the collector's output
    // is persisted to the session store, and a model is trained from the
    // reloaded store — the §6.2 "periodic datasets" pipeline end to end.
    use browser_polygraph::traffic::SessionStore;
    use browser_polygraph::traffic::{generate, TrafficConfig};

    let features = FeatureSet::table8();
    let server = start_collector("127.0.0.1:0").expect("bind");
    let mut client = CollectorClient::connect(server.local_addr()).expect("connect");

    // Simulated in-page scripts: sample real traffic and upload it.
    let window = TrafficConfig::paper_training().with_sessions(3_000);
    let data = generate(&features, &window);
    for s in &data.sessions {
        let sub = Submission {
            session_id: s.session_id,
            user_agent: s.claimed.to_ua_string(),
            values: s.values.clone(),
        };
        client.submit(&sub).expect("submit");
    }
    drop(client);
    let received = server.shutdown();
    assert_eq!(received.len(), data.sessions.len());

    // Persist and reload.
    let path =
        std::env::temp_dir().join(format!("polygraph-it-store-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut store = SessionStore::open(&path).expect("open");
        for sub in &received {
            store.append(sub).expect("append");
        }
        store.flush().expect("flush");
    }
    let (reloaded, skipped) = SessionStore::load(&path).expect("load");
    assert_eq!(skipped, 0);
    assert_eq!(reloaded.len(), received.len());

    // Retrain from the store and sanity-check the detector.
    let (rows, uas) = SessionStore::to_training_pairs(&reloaded, features.len());
    assert_eq!(
        rows.len(),
        reloaded.len(),
        "all stored submissions are usable"
    );
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model = TrainedModel::fit(
        features.clone(),
        &training,
        TrainConfig {
            min_samples_for_majority: 20,
            ..TrainConfig::default()
        },
    )
    .expect("train from store");
    assert!(
        model.train_accuracy() > 0.97,
        "got {}",
        model.train_accuracy()
    );
    let detector = Detector::new(model);
    let honest = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    assert!(!detector.assess_browser(&honest).expect("assess").flagged);
    std::fs::remove_file(&path).expect("cleanup");
}
