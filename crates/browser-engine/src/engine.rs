//! Rendering engines: the identity a browser actually *has*.
//!
//! The detector's whole premise (§5) is that the JavaScript API surface is
//! an engine attribute: Chrome 110 and Edge 110 answer prototype probes
//! identically because both run Blink 110, while a fraud browser claiming
//! "Chrome 110" on top of a Blink 95 core answers like Blink 95.

use crate::useragent::{UserAgent, Vendor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendering/JS engine family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EngineFamily {
    /// Chromium's engine (Chrome, Edge 79+, Brave, most fraud browsers).
    Blink,
    /// Mozilla's engine (Firefox, Tor Browser).
    Gecko,
    /// Legacy Microsoft engine (Edge 17–19).
    EdgeHtml,
}

impl fmt::Display for EngineFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineFamily::Blink => "Blink",
            EngineFamily::Gecko => "Gecko",
            EngineFamily::EdgeHtml => "EdgeHTML",
        })
    }
}

/// A concrete engine build: family plus major version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Engine {
    /// Engine family.
    pub family: EngineFamily,
    /// Engine major version (aligned with the browser major version for
    /// Blink/Gecko; the EdgeHTML version for legacy Edge).
    pub version: u32,
}

impl Engine {
    /// A Blink engine of the given major version.
    pub fn blink(version: u32) -> Self {
        Self {
            family: EngineFamily::Blink,
            version,
        }
    }

    /// A Gecko engine of the given major version.
    pub fn gecko(version: u32) -> Self {
        Self {
            family: EngineFamily::Gecko,
            version,
        }
    }

    /// An EdgeHTML engine of the given major version.
    pub fn edge_html(version: u32) -> Self {
        Self {
            family: EngineFamily::EdgeHtml,
            version,
        }
    }

    /// The engine a *genuine* browser with this user-agent runs.
    pub fn for_genuine(ua: UserAgent) -> Self {
        match ua.vendor {
            Vendor::Chrome => Engine::blink(ua.version),
            Vendor::Firefox => Engine::gecko(ua.version),
            Vendor::Edge if ua.version < 79 => Engine::edge_html(ua.version),
            Vendor::Edge => Engine::blink(ua.version),
        }
    }

    /// The user-agent a genuine browser running this engine would report,
    /// assuming it is branded as the family's flagship product.
    pub fn default_user_agent(self) -> UserAgent {
        match self.family {
            EngineFamily::Blink => UserAgent::new(Vendor::Chrome, self.version),
            EngineFamily::Gecko => UserAgent::new(Vendor::Firefox, self.version),
            EngineFamily::EdgeHtml => UserAgent::new(Vendor::Edge, self.version),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.family, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_and_modern_edge_share_blink() {
        let chrome = Engine::for_genuine(UserAgent::new(Vendor::Chrome, 110));
        let edge = Engine::for_genuine(UserAgent::new(Vendor::Edge, 110));
        assert_eq!(chrome, edge);
        assert_eq!(chrome.family, EngineFamily::Blink);
    }

    #[test]
    fn legacy_edge_is_edgehtml() {
        let e = Engine::for_genuine(UserAgent::new(Vendor::Edge, 18));
        assert_eq!(e.family, EngineFamily::EdgeHtml);
        let e79 = Engine::for_genuine(UserAgent::new(Vendor::Edge, 79));
        assert_eq!(e79.family, EngineFamily::Blink);
    }

    #[test]
    fn firefox_is_gecko() {
        let e = Engine::for_genuine(UserAgent::new(Vendor::Firefox, 102));
        assert_eq!(e, Engine::gecko(102));
    }

    #[test]
    fn default_user_agent_round_trips_for_flagships() {
        for ua in [
            UserAgent::new(Vendor::Chrome, 100),
            UserAgent::new(Vendor::Firefox, 100),
            UserAgent::new(Vendor::Edge, 18),
        ] {
            let engine = Engine::for_genuine(ua);
            let back = engine.default_user_agent();
            assert_eq!(back.version, ua.version);
        }
    }
}
