//! Platform eras: the piecewise-constant structure of the API surface.
//!
//! Browsers do not change their DOM prototype shapes on every release;
//! property counts stay flat for a stretch of versions and jump when a
//! feature lands. The paper's clusters (Table 3) are exactly these
//! stretches. This module names them.
//!
//! The boundaries below are the calibration targets from `DESIGN.md` §5:
//! they are chosen so that a k=11 k-means over the Table 8 features groups
//! releases the way the paper observed. The *Gecko 119* era models the
//! Element-prototype overhaul that the paper identified as the drift
//! trigger (§7.3), and *Blink 119* models the smaller simultaneous Chrome
//! change that dented Chrome 119's clustering accuracy (Table 6).

use crate::engine::{Engine, EngineFamily};
use serde::{Deserialize, Serialize};

/// A contiguous run of engine versions with a stable API shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Era {
    /// EdgeHTML 17–19 (legacy Edge).
    EdgeHtml,
    /// Gecko 46–50 — pre-Quantum Firefox; API surface adjacent to EdgeHTML
    /// (the two share the paper's cluster 6).
    Gecko46,
    /// Blink 59–68 — early-modern Chrome; API surface adjacent to Gecko
    /// 51–92 (shared cluster 2).
    Blink59,
    /// Gecko 51–92 — the long Quantum plateau.
    Gecko51,
    /// Blink 69–89 (cluster 4).
    Blink69,
    /// Gecko 93–100 (cluster 9).
    Gecko93,
    /// Blink 90–101 (cluster 10).
    Blink90,
    /// Gecko 101–118 (cluster 1; stable through the drift window).
    Gecko101,
    /// Blink 102–109 (cluster 5).
    Blink102,
    /// Blink 110–113 (cluster 0).
    Blink110,
    /// Blink 114–118 (cluster 3; new releases up to 118 keep landing here).
    Blink114,
    /// Blink 119 — a modest shape change; still nearest cluster 3 but with
    /// degraded accuracy (Table 6, 97.22%).
    Blink119,
    /// Gecko 119 — the Element-prototype overhaul that flips Firefox 119
    /// into a different cluster and triggers retraining (Table 6).
    Gecko119,
}

impl Era {
    /// All eras, in rough "platform richness" order.
    pub const ALL: [Era; 13] = [
        Era::EdgeHtml,
        Era::Gecko46,
        Era::Blink59,
        Era::Gecko51,
        Era::Blink69,
        Era::Gecko93,
        Era::Blink90,
        Era::Gecko101,
        Era::Blink102,
        Era::Blink110,
        Era::Blink114,
        Era::Blink119,
        Era::Gecko119,
    ];

    /// The era an engine build belongs to.
    ///
    /// Versions outside the paper's studied ranges clamp to the nearest
    /// era, so probing e.g. a hypothetical Blink 130 answers like the
    /// newest modelled era rather than panicking.
    pub fn of(engine: Engine) -> Era {
        match engine.family {
            EngineFamily::EdgeHtml => Era::EdgeHtml,
            EngineFamily::Blink => match engine.version {
                0..=68 => Era::Blink59,
                69..=89 => Era::Blink69,
                90..=101 => Era::Blink90,
                102..=109 => Era::Blink102,
                110..=113 => Era::Blink110,
                114..=118 => Era::Blink114,
                _ => Era::Blink119,
            },
            EngineFamily::Gecko => match engine.version {
                0..=50 => Era::Gecko46,
                51..=92 => Era::Gecko51,
                93..=100 => Era::Gecko93,
                101..=118 => Era::Gecko101,
                _ => Era::Gecko119,
            },
        }
    }

    /// A monotone "platform richness" index used by the procedural part of
    /// the prototype database: richer platforms expose more properties.
    /// Neighbouring values encode the paper's cross-vendor adjacencies
    /// (EdgeHTML ≈ Gecko 46–50; Blink 59–68 ≈ Gecko 51–92).
    pub fn richness(self) -> f64 {
        match self {
            Era::EdgeHtml => 0.0,
            Era::Gecko46 => 0.4,
            Era::Blink59 => 3.0,
            Era::Gecko51 => 3.3,
            Era::Blink69 => 6.5,
            Era::Gecko93 => 9.0,
            Era::Blink90 => 11.5,
            Era::Gecko101 => 14.0,
            Era::Blink102 => 16.5,
            Era::Blink110 => 19.0,
            Era::Blink114 => 21.5,
            Era::Blink119 => 21.9,
            // Gecko 119's overhaul lands its Element-heavy features near
            // Blink 90's values; the exact placement is feature-specific
            // (see `protodb`), the richness only drives procedural probes.
            Era::Gecko119 => 14.5,
        }
    }

    /// Stable small integer for hashing quirks per era.
    pub fn index(self) -> usize {
        Era::ALL
            .iter()
            .position(|&e| e == self)
            .expect("era listed in ALL")
    }

    /// The cluster group the era belongs to — the paper's Table 3 rows.
    /// Eras sharing a group share *all* shape quirks (this is what makes
    /// the cross-vendor rows of Table 3 — EdgeHTML with old Firefox, old
    /// Chrome with Quantum Firefox — geometrically inseparable).
    pub fn group(self) -> u8 {
        match self {
            Era::EdgeHtml | Era::Gecko46 => 0,
            Era::Blink59 | Era::Gecko51 => 1,
            Era::Blink69 => 2,
            Era::Gecko93 => 3,
            Era::Blink90 => 4,
            Era::Gecko101 => 5,
            Era::Blink102 => 6,
            Era::Blink110 => 7,
            Era::Blink114 | Era::Blink119 => 8,
            // The Gecko 119 overhaul adopted Blink-90-like shapes wholesale
            // (the Table 6 drift event): it inherits that group's quirks,
            // which is precisely why Firefox 119 lands in the paper's
            // cluster 10 (Chrome/Edge 90-101).
            Era::Gecko119 => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_boundaries_match_table3() {
        assert_eq!(Era::of(Engine::blink(59)), Era::Blink59);
        assert_eq!(Era::of(Engine::blink(68)), Era::Blink59);
        assert_eq!(Era::of(Engine::blink(69)), Era::Blink69);
        assert_eq!(Era::of(Engine::blink(89)), Era::Blink69);
        assert_eq!(Era::of(Engine::blink(90)), Era::Blink90);
        assert_eq!(Era::of(Engine::blink(101)), Era::Blink90);
        assert_eq!(Era::of(Engine::blink(102)), Era::Blink102);
        assert_eq!(Era::of(Engine::blink(109)), Era::Blink102);
        assert_eq!(Era::of(Engine::blink(110)), Era::Blink110);
        assert_eq!(Era::of(Engine::blink(113)), Era::Blink110);
        assert_eq!(Era::of(Engine::blink(114)), Era::Blink114);
        assert_eq!(Era::of(Engine::blink(118)), Era::Blink114);
        assert_eq!(Era::of(Engine::blink(119)), Era::Blink119);
    }

    #[test]
    fn gecko_boundaries_match_table3() {
        assert_eq!(Era::of(Engine::gecko(46)), Era::Gecko46);
        assert_eq!(Era::of(Engine::gecko(50)), Era::Gecko46);
        assert_eq!(Era::of(Engine::gecko(51)), Era::Gecko51);
        assert_eq!(Era::of(Engine::gecko(92)), Era::Gecko51);
        assert_eq!(Era::of(Engine::gecko(93)), Era::Gecko93);
        assert_eq!(Era::of(Engine::gecko(100)), Era::Gecko93);
        assert_eq!(Era::of(Engine::gecko(101)), Era::Gecko101);
        assert_eq!(Era::of(Engine::gecko(118)), Era::Gecko101);
        assert_eq!(Era::of(Engine::gecko(119)), Era::Gecko119);
    }

    #[test]
    fn edgehtml_is_single_era() {
        for v in 17..=19 {
            assert_eq!(Era::of(Engine::edge_html(v)), Era::EdgeHtml);
        }
    }

    #[test]
    fn future_versions_clamp() {
        assert_eq!(Era::of(Engine::blink(130)), Era::Blink119);
        assert_eq!(Era::of(Engine::gecko(130)), Era::Gecko119);
    }

    #[test]
    fn cross_vendor_adjacencies_encoded_in_richness() {
        // Cluster 6: EdgeHTML with Gecko 46-50.
        assert!((Era::EdgeHtml.richness() - Era::Gecko46.richness()).abs() < 1.0);
        // Cluster 2: Blink 59-68 with Gecko 51-92.
        assert!((Era::Blink59.richness() - Era::Gecko51.richness()).abs() < 1.0);
        // But eras in *different* clusters are well separated.
        assert!((Era::Blink69.richness() - Era::Gecko51.richness()).abs() > 2.0);
        assert!((Era::Blink90.richness() - Era::Gecko93.richness()).abs() > 2.0);
    }

    #[test]
    fn index_round_trips() {
        for (i, e) in Era::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }
}
