//! Error type for the Polygraph pipeline.

use polygraph_ml::MlError;
use std::fmt;

/// Errors produced by training, detection or drift analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum PolygraphError {
    /// An underlying ML-substrate error.
    Ml(MlError),
    /// The training set is empty or malformed.
    BadTrainingSet(String),
    /// A fingerprint's width does not match the model's feature set.
    FeatureWidthMismatch {
        /// Width supplied.
        got: usize,
        /// Width the model expects.
        expected: usize,
    },
    /// Drift analysis was asked about a release with no observations.
    NoObservations(String),
}

impl fmt::Display for PolygraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygraphError::Ml(e) => write!(f, "ml error: {e}"),
            PolygraphError::BadTrainingSet(why) => write!(f, "bad training set: {why}"),
            PolygraphError::FeatureWidthMismatch { got, expected } => {
                write!(
                    f,
                    "fingerprint has {got} features, model expects {expected}"
                )
            }
            PolygraphError::NoObservations(ua) => {
                write!(f, "no observations for {ua}")
            }
        }
    }
}

impl std::error::Error for PolygraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolygraphError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for PolygraphError {
    fn from(e: MlError) -> Self {
        PolygraphError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PolygraphError::from(MlError::NotFitted);
        assert!(e.to_string().contains("not been fitted"));
        assert!(std::error::Error::source(&e).is_some());
        let w = PolygraphError::FeatureWidthMismatch {
            got: 2,
            expected: 28,
        };
        assert!(w.to_string().contains("28"));
        assert!(std::error::Error::source(&w).is_none());
    }
}
