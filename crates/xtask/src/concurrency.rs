//! The concurrency-discipline passes (POLY-L001/L002/L003).
//!
//! Built on the parser tier ([`crate::parser`]): per file, every
//! function in the concurrency zone is summarized into the locks it
//! acquires, the guard scopes it opens, and the blocking calls it makes;
//! the zone-wide pass then aggregates those summaries into a lock-order
//! graph (L001) and propagates blocking-ness one call level (L002).
//! L003 is purely lexical and runs per file.
//!
//! ## What counts as what
//!
//! * **Lock acquisition** — a zero-argument `.read()`, `.write()`, or
//!   `.lock()` method call. The zero-argument shape is what separates
//!   `RwLock::read()` from `TcpStream::read(&mut buf)`: socket I/O always
//!   passes a buffer.
//! * **Lock identity** — the identifier immediately before the method
//!   (`ctx.detector.read()` acquires `detector`). There is no aliasing
//!   analysis: the same lock reached through differently named bindings
//!   counts as two locks, and two locks sharing a receiver name merge
//!   (see DESIGN.md §5i for why that is the right trade for this
//!   codebase).
//! * **Guard scope** — for `let g = path.read();`, from the acquisition
//!   to the end of the enclosing brace block, truncated at `drop(g)`;
//!   for any other shape, to the end of the statement (a temporary).
//! * **Blocking call** — socket/file I/O (`write_all`, `flush`,
//!   arg-bearing `.read(…)`/`.write(…)`, …), thread waits (`join`,
//!   `sleep`, `recv`, `wait`, `poll`, …), `ThreadPool` submit-and-wait
//!   (`run`, `run_chunks`), and the detector assess/fit/checkpoint
//!   family — work whose latency is unbounded or proportional to a whole
//!   window, which no lock guard should span.
//!
//! Call propagation is one level deep and resolves bare names only: a
//! zone function that *directly* contains a blocking call (or lock
//! acquisition) taints its callers' guard scopes, but a name defined
//! more than once in the zone is never propagated through — a
//! deliberate precision-over-recall choice (`new`, `lookup`, `insert`
//! are everywhere).

use crate::lexer::{Token, TokenKind};
use crate::parser::{enclosing_block_end, functions, let_binding, statement_end, statement_start};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that acquire a lock when called with no arguments.
const LOCK_METHODS: &[&str] = &["read", "write", "lock"];

/// Calls that block (or do unbounded/window-proportional work) by name,
/// whether written as methods or paths. `read`/`write` are special-cased:
/// they block only with arguments (socket I/O), never bare (lock
/// acquisition).
const BLOCKING_CALLS: &[&str] = &[
    // Socket / stream I/O.
    "write_all",
    "write_fmt",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "accept",
    "connect",
    // Thread and channel waits.
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "park",
    "poll",
    // ThreadPool submit-and-wait.
    "run",
    "run_chunks",
    // Detector / model work proportional to a whole batch or window.
    "assess",
    "assess_batch",
    "assess_many",
    "checkpoint",
    "fit",
    "fit_observed",
    "fit_with_pool",
    "refit_streaming",
];

/// One lock-guard live range inside a function.
#[derive(Debug, Clone)]
pub struct GuardScope {
    /// Receiver name of the acquired lock.
    pub lock: String,
    /// Line of the acquisition.
    pub line: u32,
    /// Direct blocking calls inside the scope: (callee, line).
    pub blocking: Vec<(String, u32)>,
    /// Other locks acquired inside the scope: (lock, line).
    pub nested: Vec<(String, u32)>,
    /// Every call inside the scope, for one-level propagation:
    /// (callee, line).
    pub calls: Vec<(String, u32)>,
}

/// Per-function facts extracted from one concurrency-zone file.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub name: String,
    pub file: String,
    /// Locks acquired anywhere in the body (deduped receiver names).
    pub acquired: Vec<String>,
    /// The first direct blocking call in the body, if any — enough to
    /// taint callers one level up.
    pub blocking: Option<String>,
    pub guards: Vec<GuardScope>,
}

/// Summarizes every non-test function of one file for the zone pass.
pub fn summarize_file(rel_path: &str, tokens: &[Token]) -> Vec<FnSummary> {
    let defs = functions(tokens);
    let mut out = Vec::new();
    for def in &defs {
        if def.in_test {
            continue;
        }
        // Nested fn bodies are separate entries; mask them out of this
        // body so their facts are not attributed twice.
        let nested_ranges: Vec<(usize, usize)> = defs
            .iter()
            .filter(|d| d.body_open > def.body_open && d.body_close < def.body_close)
            .map(|d| (d.body_open, d.body_close))
            .collect();
        let in_this_fn = |i: usize| {
            i > def.body_open
                && i < def.body_close
                && !nested_ranges.iter().any(|&(a, b)| i >= a && i <= b)
        };

        let mut acquired = BTreeSet::new();
        let mut blocking = None;
        let mut guards = Vec::new();

        let mut i = def.body_open + 1;
        while i < def.body_close {
            if !in_this_fn(i) {
                i += 1;
                continue;
            }
            if let Some((lock, recv)) = lock_acquisition(tokens, i) {
                acquired.insert(lock.clone());
                let scope_end = guard_scope_end(tokens, def.body_open, def.body_close, i, recv);
                guards.push(scan_guard_scope(tokens, lock, i, scope_end, &in_this_fn));
            }
            if blocking.is_none() {
                if let Some(op) = blocking_call(tokens, i) {
                    blocking = Some(op);
                }
            }
            i += 1;
        }
        out.push(FnSummary {
            name: def.name.clone(),
            file: rel_path.to_string(),
            acquired: acquired.into_iter().collect(),
            blocking,
            guards,
        });
    }
    out
}

/// If token `i` is the method of a zero-argument `.read()`/`.write()`/
/// `.lock()` call, returns `(lock_name, receiver_index)`.
fn lock_acquisition(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let method = tokens[i].ident()?;
    if !LOCK_METHODS.contains(&method) {
        return None;
    }
    if !(tokens.get(i + 1)?.is_punct('(') && tokens.get(i + 2)?.is_punct(')')) {
        return None;
    }
    if i == 0 || !tokens[i - 1].is_punct('.') {
        return None;
    }
    // Receiver: the identifier before the `.`; for `self.shard(k).write()`
    // shapes, walk back over the call's parens to the callee name.
    let mut r = i - 2;
    if tokens.get(r)?.is_punct(')') {
        let mut depth = 0i32;
        loop {
            match tokens.get(r)?.kind {
                TokenKind::Punct(')') => depth += 1,
                TokenKind::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        r = r.checked_sub(1)?;
                        break;
                    }
                }
                _ => {}
            }
            r = r.checked_sub(1)?;
        }
    }
    let name = tokens.get(r)?.ident()?;
    Some((name.to_string(), r))
}

/// Where the guard acquired at token `site` (receiver at `recv`) dies:
/// bound guards live to the end of the enclosing block or an explicit
/// `drop(name)`, temporaries to the end of their statement.
fn guard_scope_end(
    tokens: &[Token],
    body_open: usize,
    body_close: usize,
    site: usize,
    recv: usize,
) -> usize {
    let start = statement_start(tokens, recv, body_open + 1);
    match let_binding(tokens, start, recv) {
        Some(name) => {
            let block_end = enclosing_block_end(tokens, body_open, body_close, site);
            // `drop(name)` releases early.
            for j in site..block_end.saturating_sub(2) {
                if tokens[j].is_ident("drop")
                    && tokens[j + 1].is_punct('(')
                    && tokens[j + 2].is_ident(&name)
                {
                    return j;
                }
            }
            block_end
        }
        None => statement_end(tokens, site, body_close),
    }
}

/// Collects blocking calls, nested acquisitions, and all calls inside
/// one guard scope `(site, end)`.
fn scan_guard_scope(
    tokens: &[Token],
    lock: String,
    site: usize,
    end: usize,
    in_this_fn: &impl Fn(usize) -> bool,
) -> GuardScope {
    let line = tokens[site].line;
    let mut blocking = Vec::new();
    let mut nested = Vec::new();
    let mut calls = Vec::new();
    // Skip past the acquisition's own `()` pair.
    for j in (site + 3)..end {
        if !in_this_fn(j) {
            continue;
        }
        if let Some(op) = blocking_call(tokens, j) {
            blocking.push((op, tokens[j].line));
        }
        if let Some((l, _)) = lock_acquisition(tokens, j) {
            if l != lock {
                nested.push((l, tokens[j].line));
            }
        }
        if let Some(callee) = call_site(tokens, j) {
            calls.push((callee, tokens[j].line));
        }
    }
    GuardScope {
        lock,
        line,
        blocking,
        nested,
        calls,
    }
}

/// If token `i` is the callee of a blocking call, returns the name.
fn blocking_call(tokens: &[Token], i: usize) -> Option<String> {
    let name = tokens[i].ident()?;
    if !tokens.get(i + 1)?.is_punct('(') {
        return None;
    }
    // A definition (`fn read_exact(…)`) is not a call.
    if i > 0 && tokens[i - 1].is_ident("fn") {
        return None;
    }
    if name == "read" || name == "write" {
        // Bare `.read()`/`.write()` is a lock acquisition; only the
        // arg-bearing form is socket I/O.
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        let has_args = !tokens.get(i + 2)?.is_punct(')');
        return (is_method && has_args).then(|| name.to_string());
    }
    BLOCKING_CALLS.contains(&name).then(|| name.to_string())
}

/// If token `i` is the callee of any call (`name(` not preceded by
/// `fn`), returns the name — input to the one-level propagation.
fn call_site(tokens: &[Token], i: usize) -> Option<String> {
    let name = tokens[i].ident()?;
    if !tokens.get(i + 1)?.is_punct('(') {
        return None;
    }
    if i > 0 && tokens[i - 1].is_ident("fn") {
        return None;
    }
    Some(name.to_string())
}

/// The zone-wide pass: aggregates every file's summaries, propagates one
/// call level, and emits POLY-L001 (lock-order cycles) and POLY-L002
/// (guard across blocking call) diagnostics.
pub fn check_zone(summaries: &[FnSummary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Bare-name resolution: only names defined exactly once in the zone
    // propagate (see the module docs).
    let mut defs: BTreeMap<&str, Vec<&FnSummary>> = BTreeMap::new();
    for s in summaries {
        defs.entry(s.name.as_str()).or_default().push(s);
    }
    let unique = |name: &str| -> Option<&FnSummary> {
        match defs.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    };

    // POLY-L002 + lock-order edge collection in one sweep.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, file: &str, line: u32| {
        let key = (from.to_string(), to.to_string());
        let witness = (file.to_string(), line);
        edges
            .entry(key)
            .and_modify(|w| {
                if witness < *w {
                    *w = witness.clone();
                }
            })
            .or_insert(witness);
    };
    for s in summaries {
        for g in &s.guards {
            for (op, line) in &g.blocking {
                out.push(Diagnostic {
                    rule: "POLY-L002",
                    file: s.file.clone(),
                    line: *line,
                    message: format!(
                        "lock guard on `{}` is held across blocking call `{op}(…)`: \
                         drop the guard (or clone the needed data out of it) before \
                         blocking, or add an audited [[allow]]",
                        g.lock
                    ),
                });
            }
            for (lock, line) in &g.nested {
                add_edge(&g.lock, lock, &s.file, *line);
            }
            for (callee, line) in &g.calls {
                let Some(d) = unique(callee) else { continue };
                if d.name == s.name {
                    continue;
                }
                if let Some(op) = &d.blocking {
                    out.push(Diagnostic {
                        rule: "POLY-L002",
                        file: s.file.clone(),
                        line: *line,
                        message: format!(
                            "lock guard on `{}` is held across a call to `{callee}`, \
                             which blocks (`{op}(…)`): drop the guard first, or add \
                             an audited [[allow]]",
                            g.lock
                        ),
                    });
                }
                for lock in &d.acquired {
                    if lock != &g.lock {
                        add_edge(&g.lock, lock, &s.file, *line);
                    }
                }
            }
        }
    }

    // POLY-L001: flag every edge that participates in a cycle.
    let adjacency: BTreeMap<&str, Vec<&str>> = {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
        adj
    };
    let reaches = |from: &str, target: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adjacency.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((from, to), (file, line)) in &edges {
        if reaches(to, from) {
            out.push(Diagnostic {
                rule: "POLY-L001",
                file: file.clone(),
                line: *line,
                message: format!(
                    "lock-order inversion: `{from}` is held while acquiring `{to}` \
                     here, but the aggregated lock-order graph also orders `{to}` \
                     before `{from}` — pick one global order for these locks"
                ),
            });
        }
    }
    out
}

/// POLY-L003: flags every `Ordering::Relaxed` outside test code. Runs
/// per file (no cross-file state), on concurrency-zone files only.
pub fn check_relaxed_orderings(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        if t.is_ident("Ordering")
            && live.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && live.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && live.get(i + 3).is_some_and(|t| t.is_ident("Relaxed"))
        {
            out.push(Diagnostic {
                rule: "POLY-L003",
                file: path.into(),
                line: t.line,
                message: "`Ordering::Relaxed` in a concurrency zone: atomics that \
                          publish state to other threads (epochs, stop flags, waker \
                          state) need Release/Acquire or SeqCst; if this one is a \
                          pure statistic or heuristic, audit it with an [[allow]]"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn zone(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut summaries = Vec::new();
        for (name, src) in files {
            summaries.extend(summarize_file(name, &tokenize(src)));
        }
        let mut out = check_zone(&summaries);
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        out
    }

    #[test]
    fn zero_arg_read_is_a_lock_arg_read_is_io() {
        let toks = tokenize("a.read()");
        let read = toks.iter().position(|t| t.is_ident("read")).unwrap();
        assert!(lock_acquisition(&toks, read).is_some());
        assert!(blocking_call(&toks, read).is_none());

        let toks = tokenize("a.read(&mut buf)");
        let read = toks.iter().position(|t| t.is_ident("read")).unwrap();
        assert!(lock_acquisition(&toks, read).is_none());
        assert!(blocking_call(&toks, read).is_some());
    }

    #[test]
    fn receiver_names_walk_back_over_calls() {
        let toks = tokenize("self.shard(key).write()");
        let write = toks.iter().rposition(|t| t.is_ident("write")).unwrap();
        let (lock, _) = lock_acquisition(&toks, write).unwrap();
        assert_eq!(lock, "shard");
    }

    #[test]
    fn guard_across_blocking_call_is_flagged() {
        let d = zone(&[(
            "f.rs",
            "fn f(m: &RwLock<u8>, s: &mut TcpStream) {\n    let g = m.read();\n    s.write_all(&[*g]).ok();\n}",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "POLY-L002");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let d = zone(&[(
            "f.rs",
            "fn f(m: &RwLock<u8>, s: &mut TcpStream) {\n    let g = m.read();\n    let v = *g;\n    drop(g);\n    s.write_all(&[v]).ok();\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporary_guards_die_at_statement_end() {
        let d = zone(&[(
            "f.rs",
            "fn f(m: &RwLock<u8>, s: &mut TcpStream) {\n    let v = *m.read();\n    s.write_all(&[v]).ok();\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blocking_propagates_one_level_through_unique_names() {
        let d = zone(&[(
            "f.rs",
            "fn top(m: &RwLock<u8>) {\n    let g = m.read();\n    helper();\n}\nfn helper() {\n    thread::sleep(TICK);\n}",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "POLY-L002");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("helper"));
    }

    #[test]
    fn multiply_defined_names_do_not_propagate() {
        let d = zone(&[
            (
                "a.rs",
                "fn top(m: &RwLock<u8>) {\n    let g = m.read();\n    helper();\n}\nfn helper() {\n    thread::sleep(TICK);\n}",
            ),
            ("b.rs", "fn helper() {}"),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_order_cycles_are_flagged_acyclic_orders_are_not() {
        let cyclic = zone(&[(
            "f.rs",
            "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let x = a.lock();\n    let y = b.lock();\n}\nfn ba(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let y = b.lock();\n    let x = a.lock();\n}",
        )]);
        assert_eq!(cyclic.len(), 2, "{cyclic:?}");
        assert!(cyclic.iter().all(|d| d.rule == "POLY-L001"));
        assert_eq!(cyclic[0].line, 3);
        assert_eq!(cyclic[1].line, 7);

        let acyclic = zone(&[(
            "f.rs",
            "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let x = a.lock();\n    let y = b.lock();\n}\nfn ab2(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let x = a.lock();\n    let y = b.lock();\n}",
        )]);
        assert!(acyclic.is_empty(), "{acyclic:?}");
    }

    #[test]
    fn lock_order_propagates_through_calls() {
        let d = zone(&[(
            "f.rs",
            "fn holds_a(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let x = a.lock();\n    grab_b(b);\n}\nfn grab_b(b: &Mutex<u8>) {\n    let y = b.lock();\n}\nfn holds_b(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let y = b.lock();\n    let x = a.lock();\n}",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "POLY-L001"));
        // The propagated edge is anchored at the call site.
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn test_functions_are_exempt() {
        let d = zone(&[(
            "f.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(m: &RwLock<u8>, s: &mut TcpStream) {\n        let g = m.read();\n        s.write_all(&[*g]).ok();\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn relaxed_orderings_are_flagged_outside_tests() {
        let mut out = Vec::new();
        check_relaxed_orderings(
            "f.rs",
            &tokenize("fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n    a.load(Ordering::SeqCst);\n}"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "POLY-L003");
        assert_eq!(out[0].line, 2);

        let mut out = Vec::new();
        check_relaxed_orderings(
            "f.rs",
            &tokenize(
                "#[cfg(test)]\nmod t {\n    fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}",
            ),
            &mut out,
        );
        assert!(out.is_empty());
    }
}
