//! # baselines
//!
//! Fine-grained fingerprinting baselines for the paper's comparisons:
//! FingerprintJS-, ClientJS- and AmIUnique-like collectors (§3, Table 2)
//! and the Appendix-5 JSON-flattening pipeline that turns their nested
//! payloads into clusterable numeric matrices (Tables 13/14).
//!
//! The collectors are *simulators*: they produce payloads with the same
//! shape, dimensionality, cardinality and redundancy as the real tools —
//! per-user-unique canvas/audio hashes, OS-correlated font lists, noisy
//! per-session environment fields, UA-derived duplicates — because those
//! properties are what drive the paper's storage, latency and
//! clusterability results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod collectors;
pub mod flatten;

pub use cluster::{cluster_flat_dataset, ClusteringOutcome};
pub use collectors::{BaselineTool, CollectorOutput};
pub use flatten::{encode_dataset, flatten_json, EncodedDataset, FlatValue};
