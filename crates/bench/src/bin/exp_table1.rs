//! Table 1 (§2.3): the fraud-browser catalog and the behavioural check
//! behind each category assignment.
//!
//! For every product the binary *verifies* the category semantics against
//! the simulator: category 1 must match no legitimate fingerprint,
//! category 2 must keep one fixed fingerprint across user-agents,
//! category 3 must stay self-consistent for every claim.

use browser_engine::catalog::legitimate_releases;
use browser_engine::{BrowserInstance, UserAgent, Vendor};
use fingerprint::FeatureSet;
use fraud_browsers::{table1_products, Category, FraudProfile};
use polygraph_bench::header;

fn main() {
    let fs = FeatureSet::table8();
    let legit: Vec<_> = legitimate_releases()
        .into_iter()
        .map(|r| fs.extract(&BrowserInstance::genuine(r.ua)))
        .collect();

    header("Table 1: fraud browsers, categories, and verified behaviour");
    println!(
        "  {:<22} {:>9} {:>9} {:>10}   behavioural check",
        "browser", "released", "category", "new rel.?"
    );
    for product in table1_products() {
        let probe_uas = [
            UserAgent::new(Vendor::Chrome, 112),
            UserAgent::new(Vendor::Firefox, 110),
        ];
        let fps: Vec<_> = probe_uas
            .iter()
            .map(|&ua| fs.extract(&FraudProfile::new(product.clone(), ua).instantiate()))
            .collect();

        let check = match product.category {
            Category::MismatchedFingerprint => {
                let matches_legit = fps.iter().any(|fp| legit.contains(fp));
                if matches_legit {
                    "FAILED: matches a legitimate fingerprint"
                } else {
                    "fingerprint matches no legitimate browser (cat 1) OK"
                }
            }
            Category::FixedFingerprint => {
                if fps[0] == fps[1] && legit.contains(&fps[0]) {
                    "legitimate fingerprint, fixed across UAs (cat 2) OK"
                } else if fps[0] == fps[1] {
                    "fixed across UAs but off-catalog"
                } else {
                    "FAILED: fingerprint follows the UA"
                }
            }
            Category::EngineSwap => {
                let consistent = probe_uas.iter().all(|&ua| {
                    FraudProfile::new(product.clone(), ua)
                        .instantiate()
                        .is_consistent()
                });
                if consistent {
                    "engine swaps with the UA; always consistent (cat 3) OK"
                } else {
                    "FAILED: inconsistent claim"
                }
            }
            Category::GenuineSpoofedEnvironment => "genuine browser (cat 4)",
        };
        println!(
            "  {:<22} {:>9} {:>9} {:>10}   {check}",
            format!("{}-{}", product.name, product.version),
            product.released.to_string(),
            product.category.number(),
            if product.actively_released {
                "yes"
            } else {
                "no"
            },
        );
    }

    header("namespace pollution (§8)");
    let ant = fraud_browsers::catalog::product_by_name("AntBrowser").expect("catalogued");
    let inst = FraudProfile::new(ant, UserAgent::new(Vendor::Chrome, 100)).instantiate();
    println!(
        "  AntBrowser injects a global `ANTBROWSER` object: observable = {}",
        inst.has_global("ANTBROWSER")
    );
}
