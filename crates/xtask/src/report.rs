//! Rendering of lint results as human-readable text or machine-readable
//! JSON.
//!
//! The JSON report is committed to the repository as
//! `results/lint_baseline.json`, so it must be byte-stable across runs:
//! diagnostics are sorted, and no timestamps, host names, or absolute
//! paths appear anywhere. The JSON is hand-assembled — `xtask` has no
//! dependencies, by design.

use crate::config::AllowEntry;
use crate::rules::Diagnostic;
use std::fmt::Write as _;

/// Result of a full lint run, post-allowlist.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Diagnostics suppressed by `lint.toml` allow entries.
    pub suppressed: usize,
    /// Allow entries that matched nothing — usually stale after a fix.
    pub unused_allows: Vec<AllowEntry>,
}

impl LintReport {
    /// Whether the run should exit nonzero.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one `file:line: [RULE] message` per
    /// diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                out,
                "warning: unused allow entry ({} in {}{}) — remove it from lint.toml",
                a.rule,
                a.file,
                a.line.map(|l| format!(":{l}")).unwrap_or_default()
            );
        }
        let _ = writeln!(
            out,
            "polygraph-lint: {} file(s) scanned, {} violation(s), {} suppressed by lint.toml",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed
        );
        out
    }

    /// Deterministic JSON rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.diagnostics.len());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                " \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} ",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            );
            out.push('}');
        }
        if self.diagnostics.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"unused_allows\": [");
        for (i, a) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                " \"rule\": {}, \"file\": {}",
                json_str(&a.rule),
                json_str(&a.file)
            );
            if let Some(line) = a.line {
                let _ = write!(out, ", \"line\": {line}");
            }
            out.push_str(" }");
        }
        if self.unused_allows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                rule: "POLY-P001",
                file: "crates/service/src/server.rs".into(),
                line: 42,
                message: "`unwrap()` in a panic-safety zone".into(),
            }],
            files_scanned: 7,
            suppressed: 1,
            unused_allows: Vec::new(),
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let text = sample().render_text();
        assert!(text.contains("crates/service/src/server.rs:42: [POLY-P001]"));
        assert!(text.contains("7 file(s) scanned, 1 violation(s), 1 suppressed"));
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let a = sample().render_json();
        let b = sample().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"violations\": 1"));
        assert!(a.contains("\"rule\": \"POLY-P001\""));
        assert!(!a.contains("timestamp"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let r = LintReport {
            diagnostics: Vec::new(),
            files_scanned: 0,
            suppressed: 0,
            unused_allows: Vec::new(),
        };
        let json = r.render_json();
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"unused_allows\": []"));
    }
}
