//! `bench_serving`: end-to-end serving throughput of the risk server,
//! with and without the verdict cache, on one seeded synthetic traffic
//! replay — the first point on the repo's `BENCH_*.json` trajectory and
//! the artifact the CI `perf-smoke` gate consumes.
//!
//! Methodology:
//!
//! 1. Train the paper model on a seeded traffic window and start two
//!    risk servers from clones of it: one cache-disabled, one with the
//!    sharded verdict cache enabled.
//! 2. Build a pool of `distinct` real submissions (from the same traffic
//!    generator) and a seeded replay sequence of `frames` draws over it;
//!    the pool size is chosen so the expected repeat fraction matches
//!    `--duplicate-ratio` — the paper's coarse-fingerprint premise is
//!    exactly that web-scale traffic repeats a tiny distinct population.
//! 3. Replay the *identical* sequence against both servers in pipelined
//!    windows of [`MAX_BATCH_PER_GUARD`] frames, recording per-frame
//!    latency per window.
//! 4. Assert the two verdict byte-streams are identical (the cache must
//!    be invisible except in speed), then emit `BENCH_serving.json` with
//!    p50/p99 µs, frames/sec, hit rate, and the cached/uncached speedup.
//! 5. Race the event-driven [`ServerBackend::Reactor`] core on the same
//!    sequence with the same (uncached) config: its verdict stream must
//!    be byte-identical to the threaded core's, and its frames/sec lands
//!    in the JSON so the CI gate watches both backends.
//! 6. Race the quantized fast path (`quantized: true`, cache disabled)
//!    on the same sequence: the fused fixed-point model must be
//!    byte-identical to the staged f64 path on the wire. End-to-end
//!    frames/sec for both legs land in the JSON, but the speedup gate
//!    is `assess_speedup`: the staged vs quantized cost of the assess
//!    stage itself, measured on the identical decoded replay sequence
//!    (best of interleaved passes, so scheduler noise cancels). The
//!    end-to-end ratio is Amdahl-diluted by the shared socket, framing,
//!    and decode path that quantization does not touch; the assess
//!    ratio is the claim the quantized representation actually makes,
//!    and `cargo xtask bench-check` gates it at ≥ 1.3x.
//!
//! `--smoke` selects the small deterministic configuration CI runs;
//! `cargo xtask bench-check` compares the emitted JSON against
//! `results/bench_baseline.json`.

use polygraph_bench::{train_paper_model, ExpOptions};
use polygraph_core::Detector;
use polygraph_service::proto::VERDICT_LEN;
use polygraph_service::{
    start_risk_server_with, RiskServerConfig, RiskServerHandle, ServerBackend, MAX_BATCH_PER_GUARD,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;
use traffic::TrafficConfig;

#[derive(Debug, Clone)]
struct Options {
    seed: u64,
    /// Frames in the replay sequence.
    frames: usize,
    /// Target fraction of the sequence that repeats an earlier frame.
    duplicate_ratio: f64,
    /// Sessions in the model-training traffic window.
    sessions: usize,
    cache_shards: usize,
    cache_capacity: usize,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: TrafficConfig::paper_training().seed,
            frames: 20_000,
            duplicate_ratio: 0.9,
            sessions: 20_000,
            cache_shards: 8,
            cache_capacity: 8_192,
            out: Some("results/BENCH_serving.json".to_string()),
        }
    }
}

/// The CI smoke configuration: small enough for a runner (the full run
/// is well under a minute), large enough that the cached/uncached ratio
/// is stable — a replay shorter than ~50 ms measures scheduler noise,
/// not the server.
fn smoke_options() -> Options {
    Options {
        frames: 60_000,
        sessions: 6_000,
        ..Options::default()
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_serving: {msg}");
    eprintln!(
        "usage: bench_serving [--smoke] [--seed S] [--frames N] [--duplicate-ratio R] \
         [--sessions N] [--cache-shards N] [--cache-capacity N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = if args.iter().any(|a| a == "--smoke") {
        smoke_options()
    } else {
        Options::default()
    };
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--smoke" {
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            usage_error(&format!("{flag} needs a value"));
        };
        match flag {
            "--seed" => opts.seed = parse(flag, value),
            "--frames" => opts.frames = parse(flag, value),
            "--duplicate-ratio" => {
                opts.duplicate_ratio = parse(flag, value);
                if !(0.0..1.0).contains(&opts.duplicate_ratio) {
                    usage_error("--duplicate-ratio must be in [0, 1)");
                }
            }
            "--sessions" => opts.sessions = parse(flag, value),
            "--cache-shards" => opts.cache_shards = parse(flag, value),
            "--cache-capacity" => opts.cache_capacity = parse(flag, value),
            "--out" => opts.out = Some(value.clone()),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    opts
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("invalid {flag} value {value:?}")))
}

/// One measured replay: per-frame latencies (µs), total wall time, and
/// the raw verdict bytes for cross-run comparison.
struct RunResult {
    per_frame_us: Vec<f64>,
    elapsed_secs: f64,
    verdicts: Vec<u8>,
}

/// Windows the replay keeps in flight. Bounded well under the server's
/// default `shed_limit` (8 windows) so the pipeline can never trip
/// overload shedding — a shed verdict would break the byte-identity
/// gates, not just the timing.
const PIPELINE_DEPTH: usize = 4;

/// Replays `sequence` (indices into `pool`) against the server in a
/// sliding pipeline of [`MAX_BATCH_PER_GUARD`]-frame windows: up to
/// [`PIPELINE_DEPTH`] windows are written ahead of the reads, so the
/// socket round-trip overlaps with server-side work and the measured
/// rate is the server's processing throughput, not the wire's turn
/// latency. Steady-state window latency (the gap between consecutive
/// window completions) is divided evenly over the window's frames.
fn replay(server: &RiskServerHandle, pool: &[Vec<u8>], sequence: &[usize]) -> RunResult {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect to bench server");
    stream.set_nodelay(true).expect("set nodelay");
    let windows: Vec<&[usize]> = sequence.chunks(MAX_BATCH_PER_GUARD).collect();
    let mut per_frame_us = Vec::with_capacity(sequence.len());
    let mut verdicts = Vec::with_capacity(sequence.len() * VERDICT_LEN);
    let mut wire = Vec::new();
    let mut write_window = |stream: &mut TcpStream, window: &[usize]| {
        wire.clear();
        for &idx in window {
            let frame = &pool[idx];
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).expect("write window");
    };
    let started = Instant::now();
    for window in windows.iter().take(PIPELINE_DEPTH) {
        write_window(&mut stream, window);
    }
    let mut last_done = Instant::now();
    for (r, window) in windows.iter().enumerate() {
        let mut replies = vec![0u8; window.len() * VERDICT_LEN];
        stream
            .read_exact(&mut replies)
            .expect("read window verdicts");
        let now = Instant::now();
        let us = (now - last_done).as_secs_f64() * 1e6 / window.len() as f64;
        last_done = now;
        per_frame_us.extend(std::iter::repeat_n(us, window.len()));
        verdicts.extend_from_slice(&replies);
        if let Some(next) = windows.get(r + PIPELINE_DEPTH) {
            write_window(&mut stream, next);
        }
    }
    RunResult {
        per_frame_us,
        elapsed_secs: started.elapsed().as_secs_f64(),
        verdicts,
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn run_stats(result: &RunResult) -> (f64, f64, f64) {
    let mut sorted = result.per_frame_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let fps = result.per_frame_us.len() as f64 / result.elapsed_secs.max(1e-9);
    (fps, percentile(&sorted, 0.50), percentile(&sorted, 0.99))
}

fn main() {
    let opts = parse_options();
    println!(
        "bench_serving: seed {:#x}, {} frames, duplicate ratio {:.2}, {} training sessions",
        opts.seed, opts.frames, opts.duplicate_ratio, opts.sessions
    );

    // One model, two servers from clones of it.
    let (model, _data) = train_paper_model(ExpOptions {
        sessions: opts.sessions,
        seed: opts.seed,
    });

    // The submission pool: `distinct` real generated sessions, encoded
    // once. Pool size ≈ frames·(1 − duplicate_ratio) so uniform draws
    // land on the requested repeat fraction.
    let distinct = ((opts.frames as f64 * (1.0 - opts.duplicate_ratio)).round() as usize)
        .clamp(1, opts.frames.max(1));
    let traffic_config = TrafficConfig::paper_training()
        .with_sessions(distinct)
        .with_seed(opts.seed.wrapping_add(1));
    let replay_traffic = traffic::generate(&fingerprint::FeatureSet::table8(), &traffic_config);
    let pool: Vec<Vec<u8>> = replay_traffic
        .sessions
        .iter()
        .map(|s| {
            let sub = fingerprint::Submission {
                session_id: s.session_id,
                user_agent: s.claimed.to_ua_string(),
                values: s.values.clone(),
            };
            fingerprint::encode_submission(&sub)
                .expect("generated submission encodes")
                .to_vec()
        })
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0xBE9C);
    let sequence: Vec<usize> = (0..opts.frames)
        .map(|_| rng.gen_range(0..pool.len()))
        .collect();

    let uncached_config = RiskServerConfig {
        cache_capacity: 0,
        ..Default::default()
    };
    let cached_config = RiskServerConfig {
        cache_shards: opts.cache_shards,
        cache_capacity: opts.cache_capacity,
        ..Default::default()
    };

    let uncached_server =
        start_risk_server_with("127.0.0.1:0", Detector::new(model.clone()), uncached_config)
            .expect("start uncached server");
    let uncached = replay(&uncached_server, &pool, &sequence);
    uncached_server.shutdown();

    let cached_server =
        start_risk_server_with("127.0.0.1:0", Detector::new(model.clone()), cached_config)
            .expect("start cached server");
    let cached = replay(&cached_server, &pool, &sequence);
    let stats = cached_server.stats();
    cached_server.shutdown();

    // The reactor leg: same model, same sequence, same (uncached) config,
    // different connection core.
    let reactor_config = RiskServerConfig {
        cache_capacity: 0,
        backend: ServerBackend::Reactor,
        ..Default::default()
    };
    let reactor_server =
        start_risk_server_with("127.0.0.1:0", Detector::new(model.clone()), reactor_config)
            .expect("start reactor server");
    let reactor = replay(&reactor_server, &pool, &sequence);
    reactor_server.shutdown();

    // The quantized leg: same model, same sequence, cache disabled, but
    // the detector is compiled to the fused fixed-point fast path at
    // startup. Only the uncached assess work changes, so the ratio to
    // the uncached leg isolates the quantization speedup.
    let quant_config = RiskServerConfig {
        cache_capacity: 0,
        quantized: true,
        ..Default::default()
    };
    let quant_server =
        start_risk_server_with("127.0.0.1:0", Detector::new(model.clone()), quant_config)
            .expect("start quantized server");
    let quant = replay(&quant_server, &pool, &sequence);
    quant_server.shutdown();

    // The assess-stage microbench behind `assess_speedup`: the exact
    // replayed sequence, already decoded, pushed through both detectors'
    // batch entry point. Passes are interleaved and each leg keeps its
    // best pass, so a scheduler hiccup hits one pass, not one leg.
    let decoded: Vec<(Vec<f64>, browser_engine::UserAgent)> = replay_traffic
        .sessions
        .iter()
        .map(|s| (s.values.iter().map(|&v| f64::from(v)).collect(), s.claimed))
        .collect();
    let assess_input: Vec<(Vec<f64>, browser_engine::UserAgent)> =
        sequence.iter().map(|&idx| decoded[idx].clone()).collect();
    let staged_detector = Detector::new(model.clone());
    let mut quant_detector = Detector::new(model);
    quant_detector
        .quantize()
        .expect("paper model compiles to the quantized form");
    let time_assess = |detector: &Detector| {
        let t0 = Instant::now();
        let verdicts = detector.assess_many(&assess_input);
        let elapsed = t0.elapsed().as_secs_f64();
        std::hint::black_box(verdicts);
        elapsed
    };
    // Warm both paths once, then keep the best of three passes each.
    time_assess(&staged_detector);
    time_assess(&quant_detector);
    let mut staged_secs = f64::INFINITY;
    let mut quant_secs = f64::INFINITY;
    for _ in 0..3 {
        staged_secs = staged_secs.min(time_assess(&staged_detector));
        quant_secs = quant_secs.min(time_assess(&quant_detector));
    }
    let assess_staged_us = staged_secs * 1e6 / assess_input.len() as f64;
    let assess_quant_us = quant_secs * 1e6 / assess_input.len() as f64;
    let assess_speedup = staged_secs / quant_secs.max(1e-12);

    // The determinism gate: the cache must change nothing but latency.
    assert_eq!(
        uncached.verdicts, cached.verdicts,
        "cached and uncached replays must produce identical verdict streams"
    );
    // And the backend conformance gate: the connection core must change
    // nothing at all on the wire.
    assert_eq!(
        uncached.verdicts, reactor.verdicts,
        "threaded and reactor backends must produce identical verdict streams"
    );
    // And the quantization gate: the fixed-point fast path must change
    // arithmetic, never decisions.
    assert_eq!(
        uncached.verdicts, quant.verdicts,
        "quantized and staged f64 paths must produce identical verdict streams"
    );

    let (fps_u, p50_u, p99_u) = run_stats(&uncached);
    let (fps_c, p50_c, p99_c) = run_stats(&cached);
    let (fps_r, p50_r, p99_r) = run_stats(&reactor);
    let (fps_q, p50_q, p99_q) = run_stats(&quant);
    let lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = if lookups > 0 {
        stats.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    let speedup = fps_c / fps_u.max(1e-9);

    println!("  uncached: {fps_u:>10.0} frames/s   p50 {p50_u:>7.1} µs   p99 {p99_u:>7.1} µs");
    println!(
        "  cached:   {fps_c:>10.0} frames/s   p50 {p50_c:>7.1} µs   p99 {p99_c:>7.1} µs   \
         hit rate {:.3}   speedup {speedup:.2}x",
        hit_rate
    );
    println!(
        "  reactor:  {fps_r:>10.0} frames/s   p50 {p50_r:>7.1} µs   p99 {p99_r:>7.1} µs   \
         vs threaded {:.2}x",
        fps_r / fps_u.max(1e-9)
    );
    println!(
        "  quant:    {fps_q:>10.0} frames/s   p50 {p50_q:>7.1} µs   p99 {p99_q:>7.1} µs   \
         vs uncached {:.2}x   assess {assess_quant_us:.3} µs vs {assess_staged_us:.3} µs \
         ({assess_speedup:.2}x)",
        fps_q / fps_u.max(1e-9)
    );

    let json = serde_json::json!({
        "schema": "polygraph.bench_serving.v1",
        "seed": opts.seed,
        "frames": opts.frames as u64,
        "distinct": distinct as u64,
        "duplicate_ratio": opts.duplicate_ratio,
        "window": MAX_BATCH_PER_GUARD as u64,
        "training_sessions": opts.sessions as u64,
        "verdicts_identical": true,
        "uncached": {
            "frames_per_sec": fps_u,
            "p50_us": p50_u,
            "p99_us": p99_u,
        },
        "cached": {
            "cache_shards": opts.cache_shards as u64,
            "cache_capacity": opts.cache_capacity as u64,
            "frames_per_sec": fps_c,
            "p50_us": p50_c,
            "p99_us": p99_c,
            "hit_rate": hit_rate,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "evictions": stats.cache_evictions,
        },
        "reactor": {
            "frames_per_sec": fps_r,
            "p50_us": p50_r,
            "p99_us": p99_r,
            "verdicts_identical": true,
            "vs_threaded": fps_r / fps_u.max(1e-9),
        },
        "quant": {
            "frames_per_sec": fps_q,
            "p50_us": p50_q,
            "p99_us": p99_q,
            "verdicts_identical": true,
            "vs_uncached": fps_q / fps_u.max(1e-9),
            "assess_staged_us": assess_staged_us,
            "assess_quant_us": assess_quant_us,
            "assess_speedup": assess_speedup,
        },
        "speedup": speedup,
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render bench json");
    if let Some(path) = &opts.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(path, rendered + "\n").expect("write bench json");
        println!("  wrote {path}");
    } else {
        println!("{rendered}");
    }
}
