//! Cross-crate integration: the full paper pipeline, start to finish.
//!
//! Candidate generation (§6.1) → real-world collection (§6.2) →
//! pre-processing (§6.3) → training (§6.4) → fraud detection (§6.5) →
//! drift detection (§6.6), each stage feeding the next.

use browser_polygraph::core::{
    preprocess, Detector, DriftDecision, DriftDetector, PreprocessConfig, TrainConfig,
    TrainedModel, TrainingSet,
};
use browser_polygraph::engine::catalog::legitimate_releases;
use browser_polygraph::engine::{BrowserInstance, UserAgent, Vendor};
use browser_polygraph::fingerprint::candidates::{
    generate_deviation_candidates, mdn_universe, DEVIATION_CANDIDATES,
};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::fraud::{table1_products, FraudProfile, ProfilePlan};
use browser_polygraph::traffic::{generate, GroundTruth, TrafficConfig};

const SESSIONS: usize = 15_000;

fn spring_window(features: &FeatureSet) -> browser_polygraph::traffic::TrafficDataset {
    generate(
        features,
        &TrafficConfig::paper_training().with_sessions(SESSIONS),
    )
}

fn trained_model() -> (TrainedModel, browser_polygraph::traffic::TrafficDataset) {
    let features = FeatureSet::table8();
    let data = spring_window(&features);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model = TrainedModel::fit(features, &training, TrainConfig::default()).expect("training");
    (model, data)
}

#[test]
fn candidate_generation_feeds_collection() {
    // §6.1: rank the MDN universe on a lab catalog; the kept 200 must be
    // exactly the probes the 513-candidate collection schema deploys.
    assert_eq!(mdn_universe().len(), 1006);
    let lab: Vec<BrowserInstance> = legitimate_releases()
        .into_iter()
        .map(|r| BrowserInstance::genuine(r.ua))
        .collect();
    let kept = generate_deviation_candidates(&lab);
    assert_eq!(kept.len(), DEVIATION_CANDIDATES);
    let collection_schema = FeatureSet::candidates_513();
    let deployed: std::collections::HashSet<String> =
        collection_schema.names().into_iter().collect();
    for name in kept.names() {
        assert!(
            deployed.contains(&name),
            "{name} missing from the deployed schema"
        );
    }
}

#[test]
fn preprocessing_of_collected_traffic_yields_table8() {
    // §6.2-6.3: collect the full candidate schema over real-ish traffic,
    // run the funnel, land on the 28 features of Table 8.
    let candidates = FeatureSet::candidates_513();
    let data = generate(
        &candidates,
        &TrafficConfig::paper_training().with_sessions(4_000),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let report = preprocess(&candidates, &training, PreprocessConfig::default())
        .expect("preprocess succeeds");
    assert_eq!(report.feature_set.names(), FeatureSet::table8().names());
    assert!(
        report.constant_features.len() > 150,
        "most candidates are single-valued in the field (the paper found 186)"
    );
}

#[test]
fn trained_model_matches_table3_structure() {
    let (model, _) = trained_model();
    assert!(
        model.train_accuracy() > 0.985,
        "accuracy {}",
        model.train_accuracy()
    );

    let table = model.cluster_table();
    let ua = |vendor, v| UserAgent::new(vendor, v);
    // Chrome and Edge of the same Blink era share a cluster.
    assert_eq!(
        table.cluster_of(ua(Vendor::Chrome, 111)),
        table.cluster_of(ua(Vendor::Edge, 111))
    );
    // The newest era (114) is split from 110-113.
    assert_ne!(
        table.cluster_of(ua(Vendor::Chrome, 114)),
        table.cluster_of(ua(Vendor::Chrome, 113))
    );
    // Modern Firefox clusters apart from modern Chrome.
    assert_ne!(
        table.cluster_of(ua(Vendor::Firefox, 110)),
        table.cluster_of(ua(Vendor::Chrome, 110))
    );
    // The cross-vendor merge of cluster 2: old Chrome with Quantum Firefox.
    if let (Some(c_old), Some(f_old)) = (
        table.cluster_of(ua(Vendor::Chrome, 63)),
        table.cluster_of(ua(Vendor::Firefox, 78)),
    ) {
        assert_eq!(
            c_old, f_old,
            "Chrome 59-68 and Firefox 51-92 share a cluster"
        );
    }
}

#[test]
fn detector_separates_fraud_from_legitimate() {
    let (model, data) = trained_model();
    let detector = Detector::new(model);

    let mut fraud_flagged = 0usize;
    let mut fraud_total = 0usize;
    let mut legit_flagged = 0usize;
    let mut legit_total = 0usize;
    for s in &data.sessions {
        let verdict = detector.assess(&s.row(), s.claimed).expect("assess");
        match &s.truth {
            t if t.is_detectable_fraud() => {
                fraud_total += 1;
                fraud_flagged += verdict.flagged as usize;
            }
            GroundTruth::Legitimate { .. } => {
                legit_total += 1;
                legit_flagged += verdict.flagged as usize;
            }
            _ => {}
        }
    }
    let recall = fraud_flagged as f64 / fraud_total.max(1) as f64;
    let fpr = legit_flagged as f64 / legit_total.max(1) as f64;
    assert!(recall > 0.7, "detectable-fraud recall {recall} too low");
    assert!(fpr < 0.01, "legitimate false-positive rate {fpr} too high");
}

#[test]
fn every_category12_product_is_detectable_somewhere() {
    // §7.2: for each category-1/2 product, at least one plan profile must
    // flag (products whose embedded engine matches the claimed UA's
    // cluster are the known misses).
    let (model, _) = trained_model();
    let detector = Detector::new(model);
    for product in table1_products() {
        if !product.category.coarse_grained_detectable() {
            continue;
        }
        let plan = ProfilePlan::for_product(&product);
        let flagged = plan
            .profiles
            .iter()
            .filter(|p| {
                detector
                    .assess_browser(&p.instantiate())
                    .expect("assess")
                    .flagged
            })
            .count();
        assert!(
            flagged * 2 > plan.profiles.len(),
            "{}: only {flagged}/{} profiles flagged",
            product.name,
            plan.profiles.len()
        );
    }
}

#[test]
fn drift_monitoring_triggers_in_autumn_not_summer() {
    let (model, _) = trained_model();
    let features = FeatureSet::table8();
    let autumn = generate(
        &features,
        &TrafficConfig::drift_window().with_sessions(SESSIONS),
    );
    let (rows, uas) = autumn.rows_and_user_agents();
    let batch = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let monitor = DriftDetector::new(&model);

    // Summer releases: stable.
    let summer = [
        UserAgent::new(Vendor::Chrome, 115),
        UserAgent::new(Vendor::Firefox, 115),
        UserAgent::new(Vendor::Edge, 115),
    ];
    let (_, decision) = monitor.checkpoint(&batch, &summer).expect("observed");
    assert_eq!(
        decision,
        DriftDecision::Stable,
        "July releases must not trigger"
    );

    // Late-October releases: Firefox 119 flips.
    let autumn_releases = [
        UserAgent::new(Vendor::Chrome, 119),
        UserAgent::new(Vendor::Firefox, 119),
        UserAgent::new(Vendor::Edge, 119),
    ];
    let (observations, decision) = monitor
        .checkpoint(&batch, &autumn_releases)
        .expect("observed");
    match decision {
        DriftDecision::Retrain { triggers } => {
            assert!(
                triggers.contains(&UserAgent::new(Vendor::Firefox, 119)),
                "Firefox 119 must be among the triggers, got {triggers:?}"
            );
        }
        DriftDecision::Stable => panic!("October checkpoint must trigger retraining"),
    }
    // Edge 119 keeps clustering with its predecessors.
    let edge = observations
        .iter()
        .find(|o| o.release.vendor == Vendor::Edge)
        .unwrap();
    assert!(
        !edge.triggers_retraining(),
        "Edge 119 stays stable (Table 6)"
    );
}

#[test]
fn category2_profile_fingerprint_is_claim_independent_end_to_end() {
    // The full fraud path: same product, two different stolen UAs, same
    // fingerprint — the mechanism the detector keys on.
    let features = FeatureSet::table8();
    let octo = browser_polygraph::fraud::catalog::product_by_name("Octo Browser").unwrap();
    let a = FraudProfile::new(octo.clone(), UserAgent::new(Vendor::Chrome, 70));
    let b = FraudProfile::new(octo, UserAgent::new(Vendor::Firefox, 119));
    assert_eq!(
        features.extract(&a.instantiate()),
        features.extract(&b.instantiate())
    );
}
