//! Injected time sources.
//!
//! Every duration the observability layer records flows through a
//! [`Clock`], never through `Instant::now()` at the call site. That one
//! inversion is what makes the whole layer testable to the byte: under a
//! [`TestClock`] the exact sequence of clock reads — and therefore every
//! histogram bucket — is reproducible run-to-run, while production swaps
//! in the [`MonotonicClock`] without touching the instrumented code.
//!
//! `crates/obs` sits in the `cargo xtask lint` determinism zone, so the
//! single `Instant::now` call below is the workspace's one audited
//! wall-clock exemption (see the `[[allow]]` entry in `lint.toml`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond time source.
///
/// Implementations must be monotone non-decreasing; the registry's span
/// timers subtract two reads with `saturating_sub`, so a buggy clock can
/// mis-measure but never underflow.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds elapsed since an arbitrary fixed epoch.
    fn now_micros(&self) -> u64;
}

/// Production clock: microseconds since construction, measured with
/// [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of construction.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Deterministic clock for tests.
///
/// Two modes compose:
///
/// * **manual** — [`TestClock::advance`] moves time forward explicitly;
/// * **auto-step** — a clock built with [`TestClock::with_step`]
///   additionally advances itself by `step` microseconds *after every
///   read*, so a fixed sequence of clock reads yields a fixed sequence
///   of timestamps with no explicit driving.
///
/// Both modes make every span duration a pure function of the read
/// sequence, which is what the byte-identical exposition tests rely on.
#[derive(Debug, Default)]
pub struct TestClock {
    now: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock frozen at 0 µs; advance it manually.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that self-advances by `step` µs after every read.
    pub fn with_step(step: u64) -> Self {
        Self {
            now: AtomicU64::new(0),
            step,
        }
    }

    /// Moves time forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::SeqCst);
    }

    /// The current reading without consuming an auto-step.
    pub fn peek(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl Clock for TestClock {
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_manual_advance() {
        let c = TestClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(41);
        assert_eq!(c.now_micros(), 41);
        assert_eq!(c.now_micros(), 41, "no auto-step unless configured");
    }

    #[test]
    fn test_clock_auto_step() {
        let c = TestClock::with_step(7);
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_micros(), 7);
        assert_eq!(c.now_micros(), 14);
        assert_eq!(c.peek(), 21);
        c.advance(100);
        assert_eq!(c.now_micros(), 121);
    }
}
