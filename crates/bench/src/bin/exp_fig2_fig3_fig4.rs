//! Figures 2, 3 and 4 (§6.4): the model-selection curves.
//!
//! * Figure 2 — cumulative explained variance vs number of PCA
//!   components; the paper reads 7 components at >98.5%.
//! * Figure 3 — WCSS vs k (the elbow curve).
//! * Figure 4 — relative WCSS improvement vs k; the paper's last
//!   pronounced spike sits at k = 11.

use fingerprint::FeatureKind;
use polygraph_bench::{header, parse_options, report};
use polygraph_ml::kmeans::elbow_scan;
use polygraph_ml::{Pca, StandardScaler};
use traffic::{generate, TrafficConfig};

fn main() {
    let opts = parse_options();
    let fs = fingerprint::FeatureSet::table8();
    let config = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &config);
    let (rows, _) = data.rows_and_user_agents();
    let x = polygraph_ml::Matrix::from_rows(&rows).expect("well-formed");
    let mut scaler = StandardScaler::fit(&x).expect("finite training data");
    scaler.neutralize_columns(&fs.indices_of_kind(FeatureKind::TimeBased));
    let scaled = scaler.transform(&x).expect("fitted");

    header("Figure 2: cumulative variance vs number of PCA components");
    let spectrum = Pca::variance_spectrum(&scaled).expect("spectrum");
    let mut acc = 0.0;
    let mut chosen = spectrum.len();
    for (i, r) in spectrum.iter().enumerate().take(16) {
        acc += r;
        if acc >= 0.985 && chosen == spectrum.len() {
            chosen = i + 1;
        }
        let bar = "#".repeat((acc * 60.0).round() as usize);
        println!("  {:>2} components: {:>7.4}  {bar}", i + 1, acc);
    }
    report(
        "components for >98.5% cumulative variance",
        "7",
        &chosen.to_string(),
    );

    // Figures 3/4 operate on the PCA-projected data the paper clusters.
    let pca = Pca::fit(&scaled, chosen.min(scaled.cols())).expect("fit");
    let projected = pca.transform(&scaled).expect("transform");

    header("Figure 3: WCSS vs number of clusters (elbow method)");
    let ks: Vec<usize> = (1..=20).collect();
    let scan = elbow_scan(&projected, &ks, opts.seed).expect("scan");
    let max_wcss = scan.points.first().map(|p| p.wcss).unwrap_or(1.0);
    for p in &scan.points {
        let bar = "#".repeat(((p.wcss / max_wcss) * 60.0).round() as usize);
        println!("  k={:>2}: wcss={:>14.1}  {bar}", p.k, p.wcss);
    }

    header("Figure 4: relative WCSS improvement vs k");
    for p in &scan.points {
        let bar = "#".repeat((p.relative_improvement * 60.0).round() as usize);
        println!("  k={:>2}: {:>7.4}  {bar}", p.k, p.relative_improvement);
    }
    // A spike only counts while it still buys a meaningful share of the
    // total scatter: relative improvement >= 10% of the previous WCSS
    // *and* an absolute drop of at least 0.02% of the k=1 WCSS. Beyond
    // that, improvements are numerics on near-zero residuals.
    let total = scan.points.first().map(|p| p.wcss).unwrap_or(1.0);
    let mut spikes = Vec::new();
    for w in scan.points.windows(2) {
        let drop = w[0].wcss - w[1].wcss;
        if w[1].k > 2 && w[1].relative_improvement >= 0.10 && drop >= 2e-4 * total {
            spikes.push(w[1].k);
        }
    }
    report(
        "candidate elbows (pronounced, non-negligible improvement)",
        "3, 6, 11",
        &format!("{spikes:?}"),
    );
    report(
        "last pronounced spike (the paper's chosen k)",
        "11",
        &spikes
            .last()
            .map(|k| k.to_string())
            .unwrap_or_else(|| "-".into()),
    );
}
