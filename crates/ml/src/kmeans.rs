//! k-means clustering with k-means++ seeding (§6.4.3, Figures 3 and 4).
//!
//! The paper selects `k` with the elbow method: plot the Within-Cluster Sum
//! of Squares (WCSS) against `k` (Figure 3) and the *relative* WCSS
//! improvement (Figure 4), picking the `k` after which additional clusters
//! stop paying for themselves. [`elbow_scan`] computes both series.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::pool::{ThreadPool, ROW_CHUNK};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

pub mod minibatch;

/// A fitted k-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids, one per row.
    centroids: Matrix,
    /// Final within-cluster sum of squares on the training data.
    wcss: f64,
    /// Iterations Lloyd's algorithm ran before converging.
    iterations: usize,
}

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Number of k-means++ restarts; the best (lowest-WCSS) run wins.
    pub n_init: usize,
    /// RNG seed for reproducible seeding.
    pub seed: u64,
    /// Convergence threshold on centroid movement (squared distance).
    pub tol: f64,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 300,
            n_init: 4,
            seed: 0x9e3779b9,
            tol: 1e-8,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of restarts.
    pub fn with_n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init;
        self
    }
}

impl KMeans {
    /// Fits k-means on the rows of `x`.
    ///
    /// Runs `config.n_init` k-means++-seeded restarts of Lloyd's algorithm
    /// and keeps the solution with the lowest WCSS.
    pub fn fit(x: &Matrix, config: KMeansConfig) -> Result<Self, MlError> {
        Self::fit_with_pool(x, config, &ThreadPool::serial())
    }

    /// [`KMeans::fit`] on a thread pool.
    ///
    /// Restarts are independently seeded (`seed + restart`), so with more
    /// than one restart the pool runs whole restarts in parallel; with a
    /// single restart it parallelises the per-row assignment step inside
    /// Lloyd's loop instead. Either way the result is bit-identical to
    /// the serial fit: per-restart RNG streams never interleave, and row
    /// reductions fold over fixed [`ROW_CHUNK`] boundaries in chunk
    /// order, regardless of the pool width.
    pub fn fit_with_pool(
        x: &Matrix,
        config: KMeansConfig,
        pool: &ThreadPool,
    ) -> Result<Self, MlError> {
        validate(x, &config)?;
        let runs: Vec<Result<KMeans, MlError>> = if config.n_init > 1 && !pool.is_serial() {
            pool.run(config.n_init, |restart| {
                let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(restart as u64));
                Self::fit_once(x, &config, &mut rng, &ThreadPool::serial(), None)
            })
        } else {
            (0..config.n_init)
                .map(|restart| {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(restart as u64));
                    Self::fit_once(x, &config, &mut rng, pool, None)
                })
                .collect()
        };
        let mut best: Option<KMeans> = None;
        for run in runs {
            let run = run?;
            if best.as_ref().is_none_or(|b| run.wcss < b.wcss) {
                best = Some(run);
            }
        }
        Ok(best.expect("n_init >= 1 guarantees at least one run"))
    }

    /// Like [`KMeans::fit`], but also returns the winning restart's WCSS
    /// after every Lloyd iteration — the series is non-increasing, which
    /// the property tests assert.
    pub fn fit_traced(x: &Matrix, config: KMeansConfig) -> Result<(Self, Vec<f64>), MlError> {
        validate(x, &config)?;
        let pool = ThreadPool::serial();
        let mut best: Option<(KMeans, Vec<f64>)> = None;
        for restart in 0..config.n_init {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(restart as u64));
            let mut trace = Vec::new();
            let run = Self::fit_once(x, &config, &mut rng, &pool, Some(&mut trace))?;
            if best.as_ref().is_none_or(|(b, _)| run.wcss < b.wcss) {
                best = Some((run, trace));
            }
        }
        Ok(best.expect("n_init >= 1 guarantees at least one run"))
    }

    fn fit_once(
        x: &Matrix,
        config: &KMeansConfig,
        rng: &mut ChaCha8Rng,
        pool: &ThreadPool,
        mut trace: Option<&mut Vec<f64>>,
    ) -> Result<Self, MlError> {
        let mut centroids = kmeans_pp_init(x, config.k, rng);
        let n = x.rows();
        let mut assignment = Vec::with_capacity(n);

        let mut iterations = 0;
        for it in 0..config.max_iter {
            iterations = it + 1;
            // Assignment step (parallel over fixed row chunks).
            assign_rows(x, &centroids, pool, &mut assignment);
            // Update step.
            let mut sums = Matrix::zeros(config.k, x.cols())?;
            let mut counts = vec![0usize; config.k];
            for (i, row) in x.iter_rows().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, &v) in sums.row_mut(c).iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0f64;
            #[allow(clippy::needless_range_loop)] // indexes three parallel buffers
            for c in 0..config.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its assigned centroid; keeps k populated clusters.
                    let far = farthest_point(x, &centroids, &assignment);
                    let row = x.row(far).to_vec();
                    movement += Matrix::sq_dist(centroids.row(c), &row);
                    centroids.row_mut(c).copy_from_slice(&row);
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let old = centroids.row(c).to_vec();
                for (ctr, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *ctr = s * inv;
                }
                movement += Matrix::sq_dist(&old, centroids.row(c));
            }
            if let Some(t) = trace.as_deref_mut() {
                t.push(wcss_of(x, &centroids, pool));
            }
            if movement <= config.tol {
                break;
            }
        }

        let wcss = wcss_of(x, &centroids, pool);
        Ok(KMeans {
            centroids,
            wcss,
            iterations,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Cluster centroids (one per row).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Final training WCSS.
    pub fn wcss(&self) -> f64 {
        self.wcss
    }

    /// Lloyd iterations used by the winning restart.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Predicts the cluster for one sample.
    pub fn predict_row(&self, row: &[f64]) -> Result<usize, MlError> {
        if row.len() != self.centroids.cols() {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.centroids.cols(),
                what: "row length",
            });
        }
        Ok(nearest_centroid(row, &self.centroids).0)
    }

    /// Predicts the cluster for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::DimensionMismatch {
                got: x.cols(),
                expected: self.centroids.cols(),
                what: "columns",
            });
        }
        Ok(x.iter_rows()
            .map(|row| nearest_centroid(row, &self.centroids).0)
            .collect())
    }
}

/// One `k`'s entry in an elbow scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElbowPoint {
    /// Number of clusters.
    pub k: usize,
    /// WCSS at that `k` (Figure 3's y-axis).
    pub wcss: f64,
    /// Relative improvement over the previous `k`
    /// (`(prev - cur) / prev`; Figure 4's y-axis). Zero for the first `k`.
    pub relative_improvement: f64,
}

/// Result of scanning a range of `k` values (Figures 3 and 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElbowReport {
    /// One point per scanned `k`, ascending.
    pub points: Vec<ElbowPoint>,
}

impl ElbowReport {
    /// The `k` whose *relative* WCSS improvement is the largest local spike
    /// late in the scan — the heuristic the paper uses to justify `k = 11`
    /// (Figure 4): among candidate elbows, pick the largest `k` whose
    /// relative improvement exceeds `threshold`.
    pub fn suggested_k(&self, threshold: f64) -> Option<usize> {
        self.points
            .iter()
            .rev()
            .find(|p| p.relative_improvement >= threshold)
            .map(|p| p.k)
    }

    /// The knee of the WCSS curve: the scanned `k` farthest below the
    /// chord from the first to the last point (the "kneedle" reading of
    /// Figure 3). More robust than a threshold when clusters have internal
    /// spread. Returns `None` for scans of fewer than three points.
    pub fn knee(&self) -> Option<usize> {
        if self.points.len() < 3 {
            return None;
        }
        let first = self.points.first().expect("len >= 3");
        let last = self.points.last().expect("len >= 3");
        let k_span = (last.k as f64 - first.k as f64).max(1.0);
        let w_span = (first.wcss - last.wcss).max(1e-12);
        let mut best: Option<(usize, f64)> = None;
        for p in &self.points {
            // Normalised coordinates: x in [0,1] rising, y in [0,1] falling.
            let x = (p.k as f64 - first.k as f64) / k_span;
            let y = (p.wcss - last.wcss) / w_span;
            // Distance below the descending chord y = 1 - x.
            let d = (1.0 - x) - y;
            if best.is_none_or(|(_, bd)| d > bd) {
                best = Some((p.k, d));
            }
        }
        best.map(|(k, _)| k)
    }
}

/// Fits k-means for every `k` in `ks` and reports the WCSS curve.
pub fn elbow_scan(x: &Matrix, ks: &[usize], seed: u64) -> Result<ElbowReport, MlError> {
    elbow_scan_with_pool(x, ks, seed, &ThreadPool::serial())
}

/// [`elbow_scan`] on a thread pool: the candidate `k` fits are independent,
/// so each runs as its own task. The relative-improvement series is derived
/// afterwards in ascending-`k` order, so the report is bit-identical to the
/// serial scan.
pub fn elbow_scan_with_pool(
    x: &Matrix,
    ks: &[usize],
    seed: u64,
    pool: &ThreadPool,
) -> Result<ElbowReport, MlError> {
    let fits: Vec<Result<KMeans, MlError>> = pool.run(ks.len(), |i| {
        KMeans::fit(x, KMeansConfig::new(ks[i]).with_seed(seed))
    });
    let mut points = Vec::with_capacity(ks.len());
    let mut prev: Option<f64> = None;
    for (&k, fit) in ks.iter().zip(fits) {
        let wcss = fit?.wcss();
        let relative_improvement = match prev {
            Some(p) if p > 0.0 => (p - wcss) / p,
            _ => 0.0,
        };
        points.push(ElbowPoint {
            k,
            wcss,
            relative_improvement,
        });
        prev = Some(wcss);
    }
    Ok(ElbowReport { points })
}

fn validate(x: &Matrix, config: &KMeansConfig) -> Result<(), MlError> {
    if config.k == 0 {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: "must be at least 1".into(),
        });
    }
    if config.k > x.rows() {
        return Err(MlError::InvalidParameter {
            name: "k",
            reason: format!("k={} exceeds the {} samples", config.k, x.rows()),
        });
    }
    if config.n_init == 0 {
        return Err(MlError::InvalidParameter {
            name: "n_init",
            reason: "must be at least 1".into(),
        });
    }
    Ok(())
}

/// Assigns every row to its nearest centroid, writing into `assignment`.
/// Chunked over fixed [`ROW_CHUNK`] ranges so the serial and parallel
/// schedules produce the same buffer.
fn assign_rows(x: &Matrix, centroids: &Matrix, pool: &ThreadPool, assignment: &mut Vec<usize>) {
    let parts = pool.run_chunks(x.rows(), ROW_CHUNK, |lo, hi| {
        (lo..hi)
            .map(|r| nearest_centroid(x.row(r), centroids).0)
            .collect::<Vec<usize>>()
    });
    assignment.clear();
    for part in parts {
        assignment.extend_from_slice(&part);
    }
}

/// Total squared distance from each row to its nearest centroid. Per-chunk
/// partial sums fold in chunk order, so the float result is independent of
/// the pool width.
fn wcss_of(x: &Matrix, centroids: &Matrix, pool: &ThreadPool) -> f64 {
    pool.run_chunks(x.rows(), ROW_CHUNK, |lo, hi| {
        (lo..hi)
            .map(|r| nearest_centroid(x.row(r), centroids).1)
            .sum::<f64>()
    })
    .into_iter()
    .sum()
}

fn nearest_centroid(row: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter_rows().enumerate() {
        let d = Matrix::sq_dist(row, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn farthest_point(x: &Matrix, centroids: &Matrix, assignment: &[usize]) -> usize {
    let mut best = (0usize, -1.0f64);
    for (i, row) in x.iter_rows().enumerate() {
        let d = Matrix::sq_dist(row, centroids.row(assignment[i]));
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

/// k-means++ seeding: the first centroid is uniform, each subsequent one is
/// sampled proportionally to the squared distance from the nearest centroid
/// chosen so far.
fn kmeans_pp_init(x: &Matrix, k: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let n = x.rows();
    let mut centroids = Matrix::zeros(k, x.cols()).expect("k >= 1, cols >= 1");
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));

    let mut dist: Vec<f64> = x
        .iter_rows()
        .map(|row| Matrix::sq_dist(row, centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = dist.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &d) in dist.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(x.row(chosen));
        for (i, row) in x.iter_rows().enumerate() {
            let d = Matrix::sq_dist(row, centroids.row(c));
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        for (li, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                rows.push(vec![cx + dx, cy + dy]);
                labels.push(li);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, labels) = blobs();
        let model = KMeans::fit(&x, KMeansConfig::new(3).with_seed(7)).unwrap();
        let pred = model.predict(&x).unwrap();
        // Every ground-truth blob must map to a single distinct cluster.
        let mut mapping = [usize::MAX; 3];
        for (p, &l) in pred.iter().zip(&labels) {
            if mapping[l] == usize::MAX {
                mapping[l] = *p;
            }
            assert_eq!(mapping[l], *p, "blob {l} split across clusters");
        }
        let mut sorted = mapping;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2]);
    }

    #[test]
    fn wcss_decreases_with_k() {
        let (x, _) = blobs();
        let report = elbow_scan(&x, &[1, 2, 3, 4, 5], 7).unwrap();
        for w in report.points.windows(2) {
            assert!(
                w[1].wcss <= w[0].wcss + 1e-9,
                "WCSS must be non-increasing in k: {} -> {}",
                w[0].wcss,
                w[1].wcss
            );
        }
    }

    #[test]
    fn elbow_detects_true_cluster_count() {
        // Three point-masses: WCSS collapses to ~0 exactly at k = 3, so the
        // relative-improvement series has a single unambiguous spike.
        let mut rows = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..20 {
                rows.push(vec![cx, cy]);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let report = elbow_scan(&x, &[1, 2, 3, 4, 5, 6], 7).unwrap();
        let at3 = report.points.iter().find(|p| p.k == 3).unwrap();
        let at4 = report.points.iter().find(|p| p.k == 4).unwrap();
        assert!(
            at3.relative_improvement > 0.9,
            "got {}",
            at3.relative_improvement
        );
        assert!(
            at4.relative_improvement < 0.1,
            "got {}",
            at4.relative_improvement
        );
        assert_eq!(report.suggested_k(0.5), Some(3));
        assert_eq!(report.knee(), Some(3));
    }

    #[test]
    fn knee_is_robust_to_intra_cluster_spread() {
        // Blobs with internal structure: threshold heuristics get confused
        // by late splits of the spread; the chord distance does not.
        let (x, _) = blobs();
        let report = elbow_scan(&x, &[1, 2, 3, 4, 5, 6, 7, 8], 7).unwrap();
        assert_eq!(report.knee(), Some(3));
    }

    #[test]
    fn knee_needs_three_points() {
        let (x, _) = blobs();
        let report = elbow_scan(&x, &[1, 2], 7).unwrap();
        assert_eq!(report.knee(), None);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (x, _) = blobs();
        assert!(KMeans::fit(&x, KMeansConfig::new(0)).is_err());
        assert!(KMeans::fit(&x, KMeansConfig::new(x.rows() + 1)).is_err());
        let mut cfg = KMeansConfig::new(2);
        cfg.n_init = 0;
        assert!(KMeans::fit(&x, cfg).is_err());
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let (x, _) = blobs();
        let model = KMeans::fit(&x, KMeansConfig::new(2)).unwrap();
        assert!(model.predict_row(&[1.0]).is_err());
        let y = Matrix::zeros(2, 3).unwrap();
        assert!(model.predict(&y).is_err());
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]]).unwrap();
        let model = KMeans::fit(&x, KMeansConfig::new(3).with_seed(3)).unwrap();
        assert!(model.wcss() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = blobs();
        let a = KMeans::fit(&x, KMeansConfig::new(3).with_seed(42)).unwrap();
        let b = KMeans::fit(&x, KMeansConfig::new(3).with_seed(42)).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn pool_fit_matches_serial_bit_for_bit() {
        let (x, _) = blobs();
        for n_init in [1, 4] {
            let cfg = KMeansConfig::new(3).with_seed(42).with_n_init(n_init);
            let serial = KMeans::fit(&x, cfg).unwrap();
            for threads in [2, 8] {
                let par = KMeans::fit_with_pool(&x, cfg, &ThreadPool::new(threads)).unwrap();
                assert_eq!(serial.centroids(), par.centroids(), "{threads} threads");
                assert_eq!(
                    serial.wcss().to_bits(),
                    par.wcss().to_bits(),
                    "{threads} threads"
                );
                assert_eq!(serial.iterations(), par.iterations(), "{threads} threads");
            }
        }
    }

    #[test]
    fn pool_elbow_scan_matches_serial() {
        let (x, _) = blobs();
        let serial = elbow_scan(&x, &[1, 2, 3, 4], 7).unwrap();
        let par = elbow_scan_with_pool(&x, &[1, 2, 3, 4], 7, &ThreadPool::new(4)).unwrap();
        for (s, p) in serial.points.iter().zip(&par.points) {
            assert_eq!(s.k, p.k);
            assert_eq!(s.wcss.to_bits(), p.wcss.to_bits());
            assert_eq!(
                s.relative_improvement.to_bits(),
                p.relative_improvement.to_bits()
            );
        }
    }

    #[test]
    fn traced_fit_agrees_with_plain_fit() {
        let (x, _) = blobs();
        let cfg = KMeansConfig::new(3).with_seed(42);
        let plain = KMeans::fit(&x, cfg).unwrap();
        let (traced, trace) = KMeans::fit_traced(&x, cfg).unwrap();
        assert_eq!(plain.centroids(), traced.centroids());
        assert_eq!(trace.len(), traced.iterations());
        assert_eq!(
            trace.last().copied().map(f64::to_bits),
            Some(plain.wcss().to_bits())
        );
    }

    proptest! {
        #[test]
        fn prop_every_point_assigned_to_nearest_centroid(
            seed in any::<u64>(), k in 1usize..5
        ) {
            let (x, _) = blobs();
            let model = KMeans::fit(&x, KMeansConfig::new(k).with_seed(seed)).unwrap();
            let pred = model.predict(&x).unwrap();
            for (i, row) in x.iter_rows().enumerate() {
                let assigned_d = Matrix::sq_dist(row, model.centroids().row(pred[i]));
                for c in 0..k {
                    let d = Matrix::sq_dist(row, model.centroids().row(c));
                    prop_assert!(assigned_d <= d + 1e-9);
                }
            }
        }

        #[test]
        fn prop_wcss_never_increases_across_iterations(
            seed in any::<u64>(), k in 1usize..6
        ) {
            // Lloyd's algorithm is a coordinate descent on WCSS: the update
            // step minimises WCSS given the assignment, and the next
            // assignment minimises it given the centroids, so the traced
            // per-iteration series must be non-increasing.
            let (x, _) = blobs();
            let cfg = KMeansConfig::new(k).with_seed(seed).with_n_init(1);
            let (_, trace) = KMeans::fit_traced(&x, cfg).unwrap();
            prop_assert!(!trace.is_empty());
            for w in trace.windows(2) {
                prop_assert!(
                    w[1] <= w[0] + 1e-9,
                    "WCSS rose across an iteration: {} -> {}", w[0], w[1]
                );
            }
        }

        #[test]
        fn prop_wcss_matches_definition(seed in any::<u64>()) {
            let (x, _) = blobs();
            let model = KMeans::fit(&x, KMeansConfig::new(3).with_seed(seed)).unwrap();
            let pred = model.predict(&x).unwrap();
            let recomputed: f64 = x.iter_rows().enumerate()
                .map(|(i, row)| Matrix::sq_dist(row, model.centroids().row(pred[i])))
                .sum();
            prop_assert!((recomputed - model.wcss()).abs() < 1e-6);
        }
    }
}
