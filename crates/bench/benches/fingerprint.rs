//! Micro-benchmarks for the data-plane primitives: probe extraction, wire
//! encoding/decoding, and the risk-factor computation. These are the
//! pieces that must fit FinOrg's 100 ms / 1 KB envelope (§3).

use browser_engine::{BrowserInstance, UserAgent, Vendor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fingerprint::{decode_submission, encode_submission, FeatureSet, Submission};
use polygraph_core::risk_factor;

fn bench_extraction(c: &mut Criterion) {
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    let table8 = FeatureSet::table8();
    let candidates = FeatureSet::candidates_513();

    c.bench_function("extract 28-feature fingerprint", |b| {
        b.iter(|| black_box(table8.extract(black_box(&browser))))
    });
    c.bench_function("extract 513-candidate fingerprint", |b| {
        b.iter(|| black_box(candidates.extract(black_box(&browser))))
    });
}

fn bench_wire(c: &mut Criterion) {
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    let fs = FeatureSet::table8();
    let sub = Submission {
        session_id: [7u8; 16],
        user_agent: browser.claimed_user_agent().to_ua_string(),
        values: fs.extract(&browser).values().to_vec(),
    };
    let encoded = encode_submission(&sub).expect("within budget");

    c.bench_function("wire encode (28 features)", |b| {
        b.iter(|| black_box(encode_submission(black_box(&sub)).unwrap()))
    });
    c.bench_function("wire decode (28 features)", |b| {
        b.iter(|| black_box(decode_submission(black_box(&encoded)).unwrap()))
    });
}

fn bench_risk(c: &mut Criterion) {
    let cluster: Vec<UserAgent> = (102..=109)
        .map(|v| UserAgent::new(Vendor::Chrome, v))
        .chain((102..=109).map(|v| UserAgent::new(Vendor::Edge, v)))
        .collect();
    let claim = UserAgent::new(Vendor::Firefox, 110);
    c.bench_function("risk factor (Algorithm 1, 16-resident cluster)", |b| {
        b.iter(|| black_box(risk_factor(black_box(claim), black_box(&cluster))))
    });
}

criterion_group!(benches, bench_extraction, bench_wire, bench_risk);
criterion_main!(benches);
