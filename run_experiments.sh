#!/bin/sh
# Regenerates every table and figure of the paper. Paper-scale by default
# (205k simulated sessions); pass a smaller count for a quick pass.
set -e
SESSIONS="${1:-205000}"
SWEEP_SESSIONS="${2:-60000}"
OUT="${OUT:-results}"
mkdir -p "$OUT"
run() {
    name="$1"; shift
    echo "=== $name $*"
    cargo run --release -q -p polygraph-bench --bin "$name" -- "$@" | tee "$OUT/$name.txt"
}
run exp_table1
run exp_table2 --sessions "$SWEEP_SESSIONS"
run exp_table3 --sessions "$SESSIONS"
run exp_table4 --sessions "$SESSIONS"
run exp_table5 --sessions "$SESSIONS"
run exp_table6 --sessions "$SESSIONS"
run exp_table7_fig5 --sessions "$SESSIONS"
run exp_table8 --sessions "$SWEEP_SESSIONS"
run exp_fig2_fig3_fig4 --sessions "$SESSIONS"
run exp_table10_11_12 --sessions "$SWEEP_SESSIONS"
run exp_table13_14
run exp_ablations --sessions 40000
run exp_discussion --sessions "$SWEEP_SESSIONS"
echo "all experiments written to $OUT/"
