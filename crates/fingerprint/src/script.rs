//! Generator for the in-page JavaScript collection snippet.
//!
//! The paper's deployment is a small script FinOrg embedded in one flow of
//! its platform (§6.2): it evaluates the probes, collects the integer
//! outputs alongside `navigator.userAgent`, and posts them to the
//! collection endpoint. This module emits that script for any
//! [`FeatureSet`], so a downstream adopter can deploy against real
//! browsers with the exact probe order the trained model expects.
//!
//! Every probe is wrapped in a `try/catch` so a missing interface records
//! `0` instead of aborting collection — the same guarded semantics as the
//! simulation's `own_property_count`.

use crate::probe::Probe;
use crate::vector::FeatureSet;

/// Options for the emitted script.
#[derive(Debug, Clone)]
pub struct ScriptOptions {
    /// Endpoint URL the script posts to.
    pub endpoint: String,
    /// JavaScript identifier for the global collect function.
    pub function_name: String,
}

impl Default for ScriptOptions {
    fn default() -> Self {
        Self {
            endpoint: "/fp/submit".to_string(),
            function_name: "__bpCollect".to_string(),
        }
    }
}

/// Emits the probe-evaluation expression for one probe.
fn probe_js(probe: &Probe) -> String {
    match probe {
        Probe::Count { prototype } => format!(
            "(function(){{try{{return Object.getOwnPropertyNames({prototype}.prototype).length;}}catch(e){{return 0;}}}})()"
        ),
        Probe::Presence(p) => format!(
            "(function(){{try{{return {}.prototype.hasOwnProperty('{}')?1:0;}}catch(e){{return 0;}}}})()",
            p.prototype, p.property
        ),
    }
}

/// Generates the full collection snippet for `features`.
///
/// The script defines one global function that evaluates every probe in
/// feature-set order, assembles `{ua, v}` and POSTs it as JSON via
/// `navigator.sendBeacon` (falling back to `fetch` with `keepalive`).
pub fn collection_script(features: &FeatureSet, options: &ScriptOptions) -> String {
    let mut out = String::with_capacity(4096 + features.len() * 120);
    out.push_str(&format!(
        "// Browser Polygraph collection snippet — {} probes.\n\
         // Integer outputs only; no user-identifying data is read.\n\
         (function () {{\n\
         \x20\x20'use strict';\n\
         \x20\x20function {}() {{\n\
         \x20\x20\x20\x20var v = [\n",
        features.len(),
        options.function_name
    ));
    for probe in features.probes() {
        out.push_str("      ");
        out.push_str(&probe_js(probe));
        out.push_str(",\n");
    }
    out.push_str(&format!(
        "\x20\x20\x20\x20];\n\
         \x20\x20\x20\x20var payload = JSON.stringify({{ ua: navigator.userAgent, v: v }});\n\
         \x20\x20\x20\x20if (navigator.sendBeacon) {{\n\
         \x20\x20\x20\x20\x20\x20navigator.sendBeacon('{endpoint}', payload);\n\
         \x20\x20\x20\x20}} else {{\n\
         \x20\x20\x20\x20\x20\x20fetch('{endpoint}', {{ method: 'POST', body: payload, keepalive: true }});\n\
         \x20\x20\x20\x20}}\n\
         \x20\x20\x20\x20return v;\n\
         \x20\x20}}\n\
         \x20\x20window.{name} = {name};\n\
         \x20\x20{name}();\n\
         }})();\n",
        endpoint = options.endpoint,
        name = options.function_name
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_contains_every_probe() {
        let fs = FeatureSet::table8();
        let js = collection_script(&fs, &ScriptOptions::default());
        for probe in fs.probes() {
            match probe {
                Probe::Count { prototype } => {
                    assert!(
                        js.contains(&format!(
                            "Object.getOwnPropertyNames({prototype}.prototype).length"
                        )),
                        "{prototype} missing from the script"
                    );
                }
                Probe::Presence(p) => {
                    assert!(
                        js.contains(&format!(
                            "{}.prototype.hasOwnProperty('{}')",
                            p.prototype, p.property
                        )),
                        "{} missing from the script",
                        p.expression()
                    );
                }
            }
        }
    }

    #[test]
    fn script_is_guarded_and_posts_to_endpoint() {
        let fs = FeatureSet::table8();
        let opts = ScriptOptions {
            endpoint: "https://collect.example/fp".into(),
            function_name: "collectFp".into(),
        };
        let js = collection_script(&fs, &opts);
        // One try/catch guard per probe: a missing interface yields 0.
        assert_eq!(js.matches("try{").count(), fs.len());
        assert_eq!(js.matches("catch(e){return 0;}").count(), fs.len());
        assert!(js.contains("sendBeacon('https://collect.example/fp'"));
        assert!(js.contains("window.collectFp = collectFp;"));
        assert!(js.contains("navigator.userAgent"));
    }

    #[test]
    fn candidate_script_covers_all_513_probes() {
        let fs = FeatureSet::candidates_513();
        let js = collection_script(&fs, &ScriptOptions::default());
        assert_eq!(js.matches("try{").count(), 513);
        // The deployed script stays small: well under 100 KB of source.
        assert!(js.len() < 100_000, "script is {} bytes", js.len());
    }

    #[test]
    fn probe_order_matches_feature_set_order() {
        // The backend decodes values positionally; the script must emit
        // probes in exactly feature-set order.
        let fs = FeatureSet::table8();
        let js = collection_script(&fs, &ScriptOptions::default());
        let mut last = 0usize;
        for probe in fs.probes() {
            let needle = match probe {
                Probe::Count { prototype } => format!("({prototype}.prototype)"),
                Probe::Presence(p) => format!("hasOwnProperty('{}')", p.property),
            };
            let pos = js[last..]
                .find(&needle)
                .map(|p| last + p)
                .unwrap_or_else(|| {
                    panic!(
                        "probe {} not found after position {last}",
                        probe.expression()
                    )
                });
            last = pos;
        }
    }
}
