//! A versioned on-disk model store.
//!
//! Trained models are JSON documents (everything in
//! [`polygraph_core::TrainedModel`] is serde). The registry writes each
//! published model as `model-v<N>.json` plus a `latest` pointer, using
//! write-to-temp + atomic rename so a crash mid-publish can never leave a
//! half-written "latest" model.

use polygraph_core::TrainedModel;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of versioned models.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Versions currently stored, ascending.
    pub fn versions(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(v) = name
                .strip_prefix("model-v")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|v| v.parse::<u64>().ok())
            {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The newest stored version, if any.
    pub fn latest_version(&self) -> io::Result<Option<u64>> {
        Ok(self.versions()?.into_iter().last())
    }

    /// Publishes a model as the next version and returns that version.
    pub fn publish(&self, model: &TrainedModel) -> io::Result<u64> {
        let version = self.latest_version()?.map_or(1, |v| v + 1);
        let json = serde_json::to_vec_pretty(model)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let tmp = self.dir.join(format!(".model-v{version}.json.tmp"));
        let path = self.model_path(version);
        fs::write(&tmp, &json)?;
        fs::rename(&tmp, &path)?;
        // Refresh the "latest" pointer the same way.
        let tmp = self.dir.join(".latest.tmp");
        fs::write(&tmp, version.to_string())?;
        fs::rename(&tmp, self.dir.join("latest"))?;
        Ok(version)
    }

    /// Loads a specific version.
    pub fn load(&self, version: u64) -> io::Result<TrainedModel> {
        let bytes = fs::read(self.model_path(version))?;
        serde_json::from_slice(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads the newest model, if any.
    pub fn load_latest(&self) -> io::Result<Option<TrainedModel>> {
        match self.latest_version()? {
            Some(v) => self.load(v).map(Some),
            None => Ok(None),
        }
    }

    /// Removes versions older than the newest `keep` (never removing the
    /// latest). Returns the versions removed.
    pub fn prune(&self, keep: usize) -> io::Result<Vec<u64>> {
        let versions = self.versions()?;
        if versions.len() <= keep.max(1) {
            return Ok(Vec::new());
        }
        let cut = versions.len() - keep.max(1);
        let mut removed = Vec::new();
        for &v in versions.get(..cut).unwrap_or_default() {
            fs::remove_file(self.model_path(v))?;
            removed.push(v);
        }
        Ok(removed)
    }

    fn model_path(&self, version: u64) -> PathBuf {
        self.dir.join(format!("model-v{version}.json"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{UserAgent, Vendor};
    use fingerprint::FeatureSet;
    use polygraph_core::{TrainConfig, TrainingSet};

    fn tiny_model(offset: f64) -> TrainedModel {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (offset, UserAgent::new(Vendor::Chrome, 60)),
            (offset + 10.0, UserAgent::new(Vendor::Chrome, 100)),
        ] {
            for j in 0..30 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 2,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        TrainedModel::fit(fs, &set, config).unwrap()
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!(
            "polygraph-registry-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ModelRegistry::open(&dir).unwrap()
    }

    #[test]
    fn publish_assigns_increasing_versions() {
        let reg = temp_registry("versions");
        assert_eq!(reg.latest_version().unwrap(), None);
        assert!(reg.load_latest().unwrap().is_none());
        assert_eq!(reg.publish(&tiny_model(0.0)).unwrap(), 1);
        assert_eq!(reg.publish(&tiny_model(1.0)).unwrap(), 2);
        assert_eq!(reg.versions().unwrap(), vec![1, 2]);
        assert_eq!(reg.latest_version().unwrap(), Some(2));
    }

    #[test]
    fn load_round_trips_the_model() {
        let reg = temp_registry("roundtrip");
        let model = tiny_model(0.0);
        let v = reg.publish(&model).unwrap();
        let restored = reg.load(v).unwrap();
        assert_eq!(restored.cluster_table(), model.cluster_table());
        assert_eq!(
            restored.predict_cluster(&[0.0, 0.0]).unwrap(),
            model.predict_cluster(&[0.0, 0.0]).unwrap()
        );
    }

    #[test]
    fn load_latest_returns_newest() {
        let reg = temp_registry("latest");
        reg.publish(&tiny_model(0.0)).unwrap();
        let newer = tiny_model(5.0);
        reg.publish(&newer).unwrap();
        let restored = reg.load_latest().unwrap().expect("has models");
        assert_eq!(restored.cluster_table(), newer.cluster_table());
    }

    #[test]
    fn prune_keeps_newest() {
        let reg = temp_registry("prune");
        for i in 0..5 {
            reg.publish(&tiny_model(i as f64)).unwrap();
        }
        let removed = reg.prune(2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        assert_eq!(reg.versions().unwrap(), vec![4, 5]);
        // Pruning to zero still keeps the latest.
        let removed = reg.prune(0).unwrap();
        assert_eq!(removed, vec![4]);
        assert_eq!(reg.versions().unwrap(), vec![5]);
    }

    #[test]
    fn missing_version_is_an_error() {
        let reg = temp_registry("missing");
        assert!(reg.load(42).is_err());
    }
}
