//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA needs the eigenvalues and eigenvectors of a covariance matrix, which
//! is always real and symmetric. The Jacobi rotation method is a simple,
//! numerically robust algorithm for exactly that case: it repeatedly zeroes
//! the largest remaining off-diagonal element with a plane rotation until
//! the matrix is (numerically) diagonal. For the 28x28 to a-few-hundred
//! square matrices this project sees, it converges in a handful of sweeps.

use crate::error::MlError;
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by descending eigenvalue. `vectors` holds the
/// eigenvectors as *columns*, so `vectors.col(i)` pairs with `values[i]`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, in the order of `values`.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Returns [`MlError::DimensionMismatch`] for non-square input and
/// [`MlError::InvalidParameter`] when the matrix is not symmetric to within
/// `1e-8` (relative to its largest element).
pub fn symmetric_eigen(a: &Matrix) -> Result<EigenDecomposition, MlError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MlError::DimensionMismatch {
            got: a.cols(),
            expected: n,
            what: "square matrix",
        });
    }
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(MlError::InvalidParameter {
                    name: "matrix",
                    reason: format!("not symmetric at ({i},{j})"),
                });
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n)?;

    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum();
        if off.sqrt() <= 1e-12 * scale {
            return Ok(sorted_decomposition(&m, &v, n));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation parameters.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/columns p and q of `m`.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(MlError::NoConvergence {
        routine: "jacobi eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

fn sorted_decomposition(m: &Matrix, v: &Matrix, n: usize) -> EigenDecomposition {
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| {
        diag[b]
            .partial_cmp(&diag[a])
            .expect("eigenvalues are finite")
    });

    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n).expect("n > 0");
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = m(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = m(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8 || (v0[0] + v0[1]).abs() < 1e-8);
    }

    #[test]
    fn rejects_non_square_and_non_symmetric() {
        let a = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(MlError::DimensionMismatch { .. })
        ));
        let b = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(matches!(
            symmetric_eigen(&b),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn reconstruction_a_v_equals_v_lambda() {
        let a = m(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let av = a.matmul(&e.vectors).unwrap();
        for c in 0..3 {
            for r in 0..3 {
                let expected = e.vectors[(r, c)] * e.values[c];
                assert!(
                    (av[(r, c)] - expected).abs() < 1e-8,
                    "A*v != lambda*v at ({r},{c})"
                );
            }
        }
    }

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut a = Matrix::zeros(n, n).unwrap();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 100.0 - 10.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    proptest! {
        #[test]
        fn prop_eigenvalue_sum_equals_trace(n in 2usize..8, seed in any::<u64>()) {
            let a = random_symmetric(n, seed);
            let e = symmetric_eigen(&a).unwrap();
            let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let sum: f64 = e.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-6, "trace {trace} vs eigen sum {sum}");
        }

        #[test]
        fn prop_eigenvectors_are_orthonormal(n in 2usize..7, seed in any::<u64>()) {
            let a = random_symmetric(n, seed);
            let e = symmetric_eigen(&a).unwrap();
            let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
            for i in 0..n {
                for j in 0..n {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((vtv[(i, j)] - expected).abs() < 1e-7);
                }
            }
        }

        #[test]
        fn prop_values_sorted_descending(n in 2usize..7, seed in any::<u64>()) {
            let a = random_symmetric(n, seed);
            let e = symmetric_eigen(&a).unwrap();
            for w in e.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }
}
