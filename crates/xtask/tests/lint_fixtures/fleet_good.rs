//! Good twin of `fleet_bad.rs`: the same router, but ring placement
//! uses an ordered map keyed by stable node tags, time comes from an
//! injected clock, the socket write happens only after the ring guard
//! is dropped, and the version publish uses SeqCst.
use std::collections::BTreeMap;

pub fn build_ring(nodes: usize, clock: &dyn Clock) -> BTreeMap<u64, usize> {
    let started = clock.now();
    let mut ring = BTreeMap::new();
    ring.insert(started, nodes);
    ring
}

pub fn failover_write(ring: &RwLock<Ring>, stream: &mut TcpStream, frame: &[u8]) {
    let target = {
        let guard = ring.read();
        guard.route(0)
    };
    stream.write_all(frame);
    let _ = target;
}

pub fn publish_node_version(version: &AtomicU64) {
    version.store(2, Ordering::SeqCst);
}
