//! Table 3 (and §6.4): the cluster ↔ user-agent association at k = 11,
//! training accuracy, and outlier counts. Also prints Table 9 (k = 6).

use polygraph_bench::{header, parse_options, report, train_paper_model};
use polygraph_core::{TrainConfig, TrainedModel, TrainingSet};

fn main() {
    let opts = parse_options();
    println!(
        "training Browser Polygraph on {} simulated sessions ...",
        opts.sessions
    );
    let (model, data) = train_paper_model(opts);

    header("§6.4 training statistics");
    report(
        "clustering accuracy (majority metric)",
        "99.6%",
        &polygraph_bench::pct(model.train_accuracy()),
    );
    report(
        "outlier rows removed (Isolation Forest)",
        "172 / 205k",
        &format!("{} / {}", model.outliers_removed(), data.sessions.len()),
    );
    report(
        "distinct user-agents in window",
        "113",
        &data.distinct_user_agents().to_string(),
    );

    header("Table 3: user-agents assigned to clusters (k = 11)");
    println!("  paper:");
    for (c, desc) in [
        (0, "Chrome 110-113, Edge 110-113"),
        (1, "Firefox 101-114"),
        (2, "Chrome 59-68, Firefox 51-91"),
        (3, "Chrome 114, Edge 114"),
        (4, "Chrome 69-89, Edge 79-89"),
        (5, "Chrome 102-109, Edge 102-109"),
        (6, "Edge 17-19, Firefox 46-50"),
        (9, "Firefox 93-100"),
        (10, "Chrome 90-101, Edge 90-101"),
    ] {
        println!("    cluster {c:>2}: {desc}");
    }
    println!("  measured:");
    for (c, _) in model.cluster_table().rows() {
        println!(
            "    cluster {c:>2}: {}",
            model.cluster_table().describe_cluster(c)
        );
    }

    header("Table 9: the same association at the less optimal k = 6");
    let feature_set = fingerprint::FeatureSet::table8();
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let config6 = TrainConfig {
        k: 6,
        ..TrainConfig::default()
    };
    match TrainedModel::fit(feature_set, &training, config6) {
        Ok(model6) => {
            for (c, _) in model6.cluster_table().rows() {
                println!(
                    "    cluster {c:>2}: {}",
                    model6.cluster_table().describe_cluster(c)
                );
            }
            report(
                "k=6 accuracy",
                "(coarser eras)",
                &polygraph_bench::pct(model6.train_accuracy()),
            );
        }
        Err(e) => println!("    k=6 training failed: {e}"),
    }
}
