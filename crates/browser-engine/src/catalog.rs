//! The catalog of legitimate browser releases and their (approximate)
//! release dates.
//!
//! The paper gathered candidate fingerprints from Chrome 59–119,
//! Firefox 46–119, and Edge 17–19 / 79–119 (§6.1), and drives its drift
//! analysis off release dates (§6.6: drift checks run "a few days after
//! the latest releases"). This module provides both: the release list and
//! a month-resolution timeline.

use crate::useragent::{UserAgent, Vendor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A month-resolution date on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate {
    /// Calendar year.
    pub year: u16,
    /// Calendar month, 1–12.
    pub month: u8,
}

impl SimDate {
    /// Creates a date; clamps month into 1–12.
    pub fn new(year: u16, month: u8) -> Self {
        Self {
            year,
            month: month.clamp(1, 12),
        }
    }

    /// Months elapsed since January 2016 (the catalog epoch).
    pub fn months_since_epoch(self) -> i32 {
        (self.year as i32 - 2016) * 12 + (self.month as i32 - 1)
    }

    /// The date `n` months after this one.
    pub fn plus_months(self, n: i32) -> Self {
        let total = self.months_since_epoch() + n;
        let year = 2016 + total.div_euclid(12);
        let month = total.rem_euclid(12) + 1;
        Self {
            year: year as u16,
            month: month as u8,
        }
    }

    /// Whole months from `self` to `other` (negative if `other` earlier).
    pub fn months_until(self, other: SimDate) -> i32 {
        other.months_since_epoch() - self.months_since_epoch()
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// A legitimate browser release: a user-agent plus its release month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Release {
    /// Vendor + major version (OS-agnostic).
    pub ua: UserAgent,
    /// Approximate release month.
    pub date: SimDate,
}

/// Approximate release month of a Chrome major version.
///
/// Chrome shipped every ~6 weeks from 59 (June 2017) to 93, then moved to
/// a 4-week cadence from 94 (September 2021). The 2023 releases that the
/// paper's training cut-off and drift checkpoints hinge on are anchored
/// explicitly: 114 in May, 115 in July (just *after* the mid-July training
/// cut), and 119 in late October (the drift trigger).
pub fn chrome_release_date(version: u32) -> SimDate {
    let epoch = SimDate::new(2017, 6); // Chrome 59
    match version {
        0..=93 => epoch.plus_months(((version as i32 - 59) * 3) / 2),
        94..=114 => SimDate::new(2021, 9).plus_months(version as i32 - 94),
        115 => SimDate::new(2023, 7),
        116 => SimDate::new(2023, 8),
        117 => SimDate::new(2023, 9),
        118 | 119 => SimDate::new(2023, 10),
        v => SimDate::new(2023, 10).plus_months(v as i32 - 119),
    }
}

/// Approximate release month of a Firefox major version, with the same
/// explicit 2023 anchors as Chrome (Firefox 115 on July 4, 119 on
/// October 24 — the Element-overhaul release).
pub fn firefox_release_date(version: u32) -> SimDate {
    let epoch = SimDate::new(2016, 4); // Firefox 46
    match version {
        0..=95 => epoch.plus_months(((version as i32 - 46) * 14) / 10),
        96..=114 => SimDate::new(2022, 1).plus_months(((version as i32 - 96) * 21) / 22),
        115 => SimDate::new(2023, 7),
        116 => SimDate::new(2023, 8),
        117 | 118 => SimDate::new(2023, 9),
        119 => SimDate::new(2023, 10),
        v => SimDate::new(2023, 10).plus_months(v as i32 - 119),
    }
}

/// Approximate release month of an Edge major version (both engines).
pub fn edge_release_date(version: u32) -> SimDate {
    match version {
        17 => SimDate::new(2018, 4),
        18 => SimDate::new(2018, 11),
        19 => SimDate::new(2019, 3),
        // Chromium Edge tracks the matching Chrome major closely.
        v => chrome_release_date(v),
    }
}

/// Release date for any catalogued user-agent.
pub fn release_date(ua: UserAgent) -> SimDate {
    match ua.vendor {
        Vendor::Chrome => chrome_release_date(ua.version),
        Vendor::Firefox => firefox_release_date(ua.version),
        Vendor::Edge => edge_release_date(ua.version),
    }
}

/// Every legitimate release the paper's candidate-generation stage covers:
/// Chrome 59–119, Firefox 46–119, Edge 17–19 and 79–119.
pub fn legitimate_releases() -> Vec<Release> {
    let mut out = Vec::new();
    for v in 59..=119 {
        let ua = UserAgent::new(Vendor::Chrome, v);
        out.push(Release {
            ua,
            date: release_date(ua),
        });
    }
    for v in 46..=119 {
        let ua = UserAgent::new(Vendor::Firefox, v);
        out.push(Release {
            ua,
            date: release_date(ua),
        });
    }
    for v in (17..=19).chain(79..=119) {
        let ua = UserAgent::new(Vendor::Edge, v);
        out.push(Release {
            ua,
            date: release_date(ua),
        });
    }
    out
}

/// Releases already shipped by `date` (inclusive).
pub fn releases_by(date: SimDate) -> Vec<Release> {
    legitimate_releases()
        .into_iter()
        .filter(|r| r.date <= date)
        .collect()
}

/// The newest shipped version of a vendor at `date`, if any.
pub fn latest_version(vendor: Vendor, date: SimDate) -> Option<u32> {
    legitimate_releases()
        .into_iter()
        .filter(|r| r.ua.vendor == vendor && r.date <= date)
        .map(|r| r.ua.version)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_arithmetic() {
        let d = SimDate::new(2023, 3);
        assert_eq!(d.plus_months(10), SimDate::new(2024, 1));
        assert_eq!(d.plus_months(-3), SimDate::new(2022, 12));
        assert_eq!(d.months_until(SimDate::new(2023, 7)), 4);
        assert_eq!(SimDate::new(2016, 1).months_since_epoch(), 0);
    }

    #[test]
    fn date_ordering() {
        assert!(SimDate::new(2023, 3) < SimDate::new(2023, 7));
        assert!(SimDate::new(2022, 12) < SimDate::new(2023, 1));
    }

    #[test]
    fn chrome_anchors() {
        assert_eq!(chrome_release_date(59), SimDate::new(2017, 6));
        assert_eq!(chrome_release_date(94), SimDate::new(2021, 9));
        // Chrome 119 shipped late October / early November 2023.
        let d119 = chrome_release_date(119);
        assert!(
            d119 >= SimDate::new(2023, 9) && d119 <= SimDate::new(2023, 11),
            "{d119}"
        );
    }

    #[test]
    fn firefox_anchors() {
        assert_eq!(firefox_release_date(46), SimDate::new(2016, 4));
        let d119 = firefox_release_date(119);
        assert!(
            d119 >= SimDate::new(2023, 9) && d119 <= SimDate::new(2023, 11),
            "{d119}"
        );
        // Firefox 102 (the Tor ESR base of §6.3) shipped mid-2022.
        let d102 = firefox_release_date(102);
        assert!(
            d102 >= SimDate::new(2022, 4) && d102 <= SimDate::new(2022, 9),
            "{d102}"
        );
    }

    #[test]
    fn edge_anchors() {
        assert_eq!(edge_release_date(18), SimDate::new(2018, 11));
        assert_eq!(edge_release_date(79), chrome_release_date(79));
    }

    #[test]
    fn catalog_covers_paper_ranges() {
        let releases = legitimate_releases();
        // 61 Chrome + 74 Firefox + 44 Edge.
        assert_eq!(releases.len(), 61 + 74 + 44);
        assert!(releases
            .iter()
            .any(|r| r.ua == UserAgent::new(Vendor::Chrome, 59)));
        assert!(releases
            .iter()
            .any(|r| r.ua == UserAgent::new(Vendor::Firefox, 46)));
        assert!(releases
            .iter()
            .any(|r| r.ua == UserAgent::new(Vendor::Edge, 17)));
        assert!(!releases
            .iter()
            .any(|r| r.ua == UserAgent::new(Vendor::Edge, 40)));
    }

    #[test]
    fn dates_are_monotone_per_vendor() {
        for vendor in Vendor::ALL {
            let mut dates: Vec<(u32, SimDate)> = legitimate_releases()
                .into_iter()
                .filter(|r| r.ua.vendor == vendor)
                .map(|r| (r.ua.version, r.date))
                .collect();
            dates.sort_by_key(|&(v, _)| v);
            for w in dates.windows(2) {
                assert!(w[0].1 <= w[1].1, "{vendor}: {:?} then {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn latest_version_tracks_timeline() {
        // Mid-2023: Chrome ~114-115 era (the paper's training cut-off).
        let v = latest_version(Vendor::Chrome, SimDate::new(2023, 7)).unwrap();
        assert!(
            (113..=117).contains(&v),
            "Chrome at 2023-07 was ~114-115, got {v}"
        );
        assert_eq!(latest_version(Vendor::Chrome, SimDate::new(2016, 1)), None);
        let e = latest_version(Vendor::Edge, SimDate::new(2019, 6)).unwrap();
        assert_eq!(e, 19);
    }

    #[test]
    fn releases_by_filters_future() {
        let early = releases_by(SimDate::new(2018, 1));
        assert!(early.iter().all(|r| r.date <= SimDate::new(2018, 1)));
        assert!(early.iter().any(|r| r.ua.vendor == Vendor::Firefox));
        assert!(!early.iter().any(|r| r.ua.version > 70));
    }
}
