//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The real serde_derive needs syn/quote, which cannot be fetched in this
//! build environment. This macro instead walks the raw [`TokenStream`]
//! directly — practical because the workspace only derives on plain
//! braced structs and enums (unit / tuple / braced variants), with no
//! generics and no `#[serde(...)]` attributes.
//!
//! Generated code targets the tree-model traits of the vendored `serde`
//! crate: structs become objects keyed by field name; unit variants
//! become their name as a string; data variants become single-key objects
//! `{"Variant": ...}` (object for braced fields, the bare value for a
//! one-element tuple, an array otherwise).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = gen_serialize(&shape);
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = gen_deserialize(&shape);
    code.parse().expect("serde_derive generated invalid Rust")
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Braced(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Shape {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes (doc comments arrive as `#[doc = ...]`) and
    // the visibility qualifier.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(_)) = toks.peek() {
                    toks.next(); // pub(crate) / pub(super)
                }
            }
            _ => break,
        }
    }
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic type `{name}` is not supported")
            }
            Some(_) => continue,
            None => {
                panic!("serde_derive: `{name}` has no braced body (tuple/unit items unsupported)")
            }
        }
    };
    match keyword.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Field names of a braced field list: `(attrs) (vis) name: Type, ...`.
/// Types are skipped with angle-bracket depth tracking, so a comma inside
/// `HashMap<K, V>` does not end the field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next();
                    }
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        let mut angle = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Braced(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip a `= discriminant` and the separating comma.
        let mut angle = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_top_level_items(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

// ------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut body = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "__map.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(__map)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__t{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__t0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::Value::Object(__outer)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Braced(fields) => {
                        let mut body = String::from("let mut __fields = ::serde::Map::new();\n");
                        for f in fields {
                            body.push_str(&format!(
                                "__fields.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{body}\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__fields));\n\
                             ::serde::Value::Object(__outer)\n}}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__map, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Object(__map) => ::std::result::Result::Ok({name} {{\n{}\n}}),\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::DeError::new(\"{name}: expected object\")),\n\
                 }}\n}}\n}}\n",
                inits.join("\n")
            )
        }
        Shape::Enum { name, variants } => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let datas: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut body = String::new();
            if !units.is_empty() {
                let arms: Vec<String> = units
                    .iter()
                    .map(|v| {
                        format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                            vn = v.name
                        )
                    })
                    .collect();
                body.push_str(&format!(
                    "if let ::serde::Value::String(__s) = __v {{\n\
                     return match __s.as_str() {{\n{}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                     format!(\"{name}: unknown variant {{__s:?}}\"))),\n}};\n}}\n",
                    arms.join("\n")
                ));
            }
            if !datas.is_empty() {
                let mut arms = String::new();
                for v in &datas {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            arms.push_str(&format!(
                                "\"{vn}\" => match __inner {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{vn}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"{name}::{vn}: expected array of {arity}\")),\n}},\n",
                                items.join(", ")
                            ));
                        }
                        VariantKind::Braced(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__fields, \"{f}\")?,"))
                                .collect();
                            arms.push_str(&format!(
                                "\"{vn}\" => match __inner {{\n\
                                 ::serde::Value::Object(__fields) => \
                                 ::std::result::Result::Ok({name}::{vn} {{\n{}\n}}),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"{name}::{vn}: expected object\")),\n}},\n",
                                inits.join("\n")
                            ));
                        }
                    }
                }
                body.push_str(&format!(
                    "if let ::serde::Value::Object(__m) = __v {{\n\
                     if __m.len() == 1 {{\n\
                     let (__k, __inner) = __m.iter().next().expect(\"len checked\");\n\
                     return match __k.as_str() {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                     format!(\"{name}: unknown variant {{__k:?}}\"))),\n}};\n}}\n}}\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\
                 ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"{name}: unrecognised value {{__v:?}}\")))\n}}\n}}\n"
            )
        }
    }
}
