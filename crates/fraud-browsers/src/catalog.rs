//! The fraud-browser product catalog (Table 1).

use browser_engine::catalog::SimDate;
use browser_engine::Engine;
use serde::Serialize;
use std::fmt;

/// Behavioural category of a fraud browser (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Category {
    /// Category 1: fingerprint matches no legitimate browser.
    MismatchedFingerprint,
    /// Category 2: legitimate but *fixed* fingerprint — unchanged when the
    /// user-agent is modified.
    FixedFingerprint,
    /// Category 3: the engine (and hence the fingerprint) swaps together
    /// with the user-agent.
    EngineSwap,
    /// Category 4: a genuine browser used inside a spoofed environment.
    GenuineSpoofedEnvironment,
}

impl Category {
    /// The paper's 1-based category number.
    pub fn number(self) -> u8 {
        match self {
            Category::MismatchedFingerprint => 1,
            Category::FixedFingerprint => 2,
            Category::EngineSwap => 3,
            Category::GenuineSpoofedEnvironment => 4,
        }
    }

    /// Whether coarse-grained fingerprinting can, in principle, detect
    /// this category (the paper targets 1 and 2 only).
    pub fn coarse_grained_detectable(self) -> bool {
        matches!(
            self,
            Category::MismatchedFingerprint | Category::FixedFingerprint
        )
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Category {}", self.number())
    }
}

/// A fraud-browser product.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FraudProduct {
    /// Product name as in Table 1, e.g. `"Octo Browser"`.
    pub name: &'static str,
    /// Product version as in Table 1.
    pub version: &'static str,
    /// Approximate release month (Table 1's "Rel. Date" column).
    pub released: SimDate,
    /// Behavioural category.
    pub category: Category,
    /// Whether the vendor still ships new releases (Table 1's "New Rel?").
    pub actively_released: bool,
    /// The engine the product embeds. For category 1 this is the base the
    /// distortion layer sits on; for category 2 it is the fingerprint the
    /// product always presents; for categories 3–4 it is only a default
    /// (the effective engine follows the chosen profile).
    pub base_engine: Engine,
    /// Product-specific distortion seed (category 1 only).
    pub distortion_seed: Option<u8>,
    /// Global namespace the product injects (§8's AntBrowser observation),
    /// if any.
    pub injected_global: Option<&'static str>,
}

/// The eleven product entries of Table 1.
pub fn table1_products() -> Vec<FraudProduct> {
    use Category::*;
    vec![
        FraudProduct {
            name: "Linken Sphere",
            version: "8.93",
            released: SimDate::new(2022, 4),
            category: MismatchedFingerprint,
            actively_released: false,
            base_engine: Engine::blink(96),
            distortion_seed: Some(1),
            injected_global: None,
        },
        FraudProduct {
            name: "ClonBrowser",
            version: "4.6.6",
            released: SimDate::new(2023, 5),
            category: MismatchedFingerprint,
            actively_released: true,
            base_engine: Engine::blink(112),
            distortion_seed: Some(2),
            injected_global: None,
        },
        FraudProduct {
            name: "Incogniton",
            version: "3.2.7.7",
            released: SimDate::new(2023, 5),
            category: FixedFingerprint,
            actively_released: true,
            base_engine: Engine::blink(112),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "GoLogin",
            version: "3.3.23",
            released: SimDate::new(2023, 5),
            category: FixedFingerprint,
            actively_released: true,
            base_engine: Engine::blink(108),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "CheBrowser",
            version: "0.3.38",
            released: SimDate::new(2023, 5),
            category: FixedFingerprint,
            actively_released: true,
            // CheBrowser sells per-profile engines; this is its default.
            base_engine: Engine::blink(104),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "VMLogin",
            version: "1.3.8.5",
            released: SimDate::new(2023, 4),
            category: FixedFingerprint,
            actively_released: true,
            base_engine: Engine::blink(100),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "Octo Browser",
            version: "1.10",
            released: SimDate::new(2023, 9),
            category: FixedFingerprint,
            actively_released: true,
            base_engine: Engine::blink(110),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "Sphere",
            version: "1.3",
            released: SimDate::new(2023, 11),
            category: FixedFingerprint,
            actively_released: false,
            // The free Sphere build emulates a fingerprint close to
            // Chrome 61 (§7.2).
            base_engine: Engine::blink(61),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "AntBrowser",
            version: "2023.05",
            released: SimDate::new(2023, 5),
            category: FixedFingerprint,
            actively_released: false,
            base_engine: Engine::blink(100),
            distortion_seed: None,
            injected_global: Some("ANTBROWSER"),
        },
        FraudProduct {
            name: "AdsPower",
            version: "4.12.27",
            released: SimDate::new(2022, 12),
            category: EngineSwap,
            actively_released: true,
            base_engine: Engine::blink(108),
            distortion_seed: None,
            injected_global: None,
        },
        FraudProduct {
            name: "AdsPower",
            version: "5.4.20",
            released: SimDate::new(2023, 4),
            category: EngineSwap,
            actively_released: true,
            base_engine: Engine::blink(112),
            distortion_seed: None,
            injected_global: None,
        },
    ]
}

/// Looks a product up by name (latest catalogued version wins).
pub fn product_by_name(name: &str) -> Option<FraudProduct> {
    table1_products().into_iter().rfind(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1_shape() {
        let products = table1_products();
        assert_eq!(products.len(), 11);
        let cat1 = products.iter().filter(|p| p.category.number() == 1).count();
        let cat2 = products.iter().filter(|p| p.category.number() == 2).count();
        let cat3 = products.iter().filter(|p| p.category.number() == 3).count();
        assert_eq!((cat1, cat2, cat3), (2, 7, 2));
    }

    #[test]
    fn category_detectability() {
        assert!(Category::MismatchedFingerprint.coarse_grained_detectable());
        assert!(Category::FixedFingerprint.coarse_grained_detectable());
        assert!(!Category::EngineSwap.coarse_grained_detectable());
        assert!(!Category::GenuineSpoofedEnvironment.coarse_grained_detectable());
    }

    #[test]
    fn category1_products_have_distortion_seeds() {
        for p in table1_products() {
            assert_eq!(
                p.distortion_seed.is_some(),
                p.category == Category::MismatchedFingerprint,
                "{} seed mismatch",
                p.name
            );
        }
    }

    #[test]
    fn antbrowser_pollutes_namespace() {
        let ant = product_by_name("AntBrowser").unwrap();
        assert_eq!(ant.injected_global, Some("ANTBROWSER"));
    }

    #[test]
    fn product_lookup_prefers_latest_version() {
        let ads = product_by_name("AdsPower").unwrap();
        assert_eq!(ads.version, "5.4.20");
        assert!(product_by_name("NotABrowser").is_none());
    }

    #[test]
    fn sphere_emulates_old_chrome() {
        let sphere = product_by_name("Sphere").unwrap();
        assert_eq!(sphere.base_engine, Engine::blink(61));
    }
}
