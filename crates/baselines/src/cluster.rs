//! Clustering comparison harness (Appendix-5, Tables 13/14).
//!
//! Runs the paper's §6.4 clustering recipe — scale, pick PCA components by
//! cumulative variance, pick k by elbow, k-means, majority-cluster
//! accuracy — over any encoded dataset, coarse- or fine-grained.

use browser_engine::UserAgent;
use polygraph_ml::kmeans::{elbow_scan, KMeansConfig};
use polygraph_ml::metrics::majority_cluster_accuracy;
use polygraph_ml::{KMeans, Matrix, MlError, Pca, StandardScaler};

/// Result of one clustering run — a row of Table 13/14.
#[derive(Debug, Clone)]
pub struct ClusteringOutcome {
    /// Samples clustered.
    pub dataset_size: usize,
    /// Feature columns used.
    pub features: usize,
    /// PCA components retained.
    pub pca_components: usize,
    /// Clusters.
    pub k: usize,
    /// Majority-cluster accuracy (Formula 1).
    pub accuracy: f64,
}

/// Runs the full §6.4 recipe over a numeric dataset labelled with
/// user-agents.
///
/// `variance_threshold` picks the PCA width (the paper reads its Figure 2
/// at 0.985); `k_range` bounds the elbow scan; `elbow_threshold` is the
/// minimum relative WCSS improvement that still counts as an elbow.
pub fn cluster_flat_dataset(
    rows: &[Vec<f64>],
    labels: &[UserAgent],
    variance_threshold: f64,
    k_range: std::ops::RangeInclusive<usize>,
    elbow_threshold: f64,
    seed: u64,
) -> Result<ClusteringOutcome, MlError> {
    let x = Matrix::from_rows(rows)?;
    let (_, scaled) = StandardScaler::fit_transform(&x)?;

    // PCA width from the cumulative-variance curve.
    let spectrum = Pca::variance_spectrum(&scaled)?;
    let mut acc = 0.0;
    let mut n_components = spectrum.len();
    for (i, r) in spectrum.iter().enumerate() {
        acc += r;
        if acc >= variance_threshold {
            n_components = i + 1;
            break;
        }
    }
    let n_components = n_components.max(1).min(scaled.cols());
    let pca = Pca::fit(&scaled, n_components)?;
    let projected = pca.transform(&scaled)?;

    // Elbow scan for k, read the way §6.4 reads Figure 4: the largest k
    // whose relative WCSS improvement is still pronounced (>= the
    // threshold) *and* whose absolute improvement is non-negligible
    // relative to the total scatter. Falls back to the knee of the curve
    // when no spike qualifies.
    let ks: Vec<usize> = k_range.clone().filter(|&k| k <= projected.rows()).collect();
    let report = elbow_scan(&projected, &ks, seed)?;
    let total = report.points.first().map(|p| p.wcss).unwrap_or(1.0);
    let mut pronounced = None;
    for w in report.points.windows(2) {
        let drop = w[0].wcss - w[1].wcss;
        if w[1].relative_improvement >= elbow_threshold && drop >= 2e-4 * total {
            pronounced = Some(w[1].k);
        }
    }
    let k = pronounced
        .or_else(|| report.knee())
        .unwrap_or_else(|| *ks.last().expect("non-empty k range"));

    let model = KMeans::fit(&projected, KMeansConfig::new(k).with_seed(seed))?;
    let clusters = model.predict(&projected)?;
    let accuracy = majority_cluster_accuracy(labels, &clusters)?.accuracy;

    Ok(ClusteringOutcome {
        dataset_size: rows.len(),
        features: x.cols(),
        pca_components: n_components,
        k,
        accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    fn ua(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Chrome, v)
    }

    #[test]
    fn clean_separable_data_clusters_perfectly() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (base, version) in [(0.0, 60u32), (50.0, 100), (100.0, 110)] {
            for j in 0..20 {
                rows.push(vec![base + (j % 2) as f64 * 0.2, base * 1.5, 7.0]);
                labels.push(ua(version));
            }
        }
        let out = cluster_flat_dataset(&rows, &labels, 0.985, 2..=8, 0.3, 11).unwrap();
        assert_eq!(out.dataset_size, 60);
        assert!(out.accuracy > 0.99, "got {}", out.accuracy);
        assert!(out.k >= 3);
    }

    #[test]
    fn noisy_features_degrade_accuracy() {
        // Version label correlated only weakly with the features: the
        // ClientJS situation.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 12345u64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64
        };
        for version in [60u32, 100, 110] {
            for _ in 0..30 {
                rows.push(vec![noise(), noise(), (version >= 100) as u8 as f64]);
                labels.push(ua(version));
            }
        }
        let out = cluster_flat_dataset(&rows, &labels, 0.985, 2..=8, 0.3, 11).unwrap();
        assert!(
            out.accuracy < 0.99,
            "noise-dominated features cannot cluster perfectly, got {}",
            out.accuracy
        );
    }

    #[test]
    fn pca_width_respects_variance_threshold() {
        // One dominant direction: a low threshold keeps a single component.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, i as f64 * 2.0, 0.0])
            .collect();
        let labels: Vec<UserAgent> = (0..30).map(|i| ua(60 + (i as u32) / 10)).collect();
        let out = cluster_flat_dataset(&rows, &labels, 0.5, 2..=4, 0.3, 1).unwrap();
        assert_eq!(out.pca_components, 1);
    }
}
