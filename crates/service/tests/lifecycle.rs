//! Regression tests for the risk server's connection lifecycle:
//!
//! * finished connection workers are reaped while the server runs (not
//!   only at shutdown);
//! * an idle keep-alive client survives read-timeout ticks, while a
//!   stalled partial frame does not;
//! * shutdown is bounded by one read-timeout tick even with a
//!   connected-but-silent client.

use browser_engine::{UserAgent, Vendor};
use fingerprint::{encode_submission, FeatureSet, Submission};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::server::{start_risk_server_with, RiskServerConfig, RiskServerHandle};
use polygraph_service::{start_risk_server, Verdict, VerdictStatus};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_detector() -> Detector {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .unwrap();
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 2,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    };
    Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
}

fn honest_frame() -> Vec<u8> {
    let sub = Submission {
        session_id: [7u8; 16],
        user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
        values: vec![10, 10],
    };
    encode_submission(&sub).unwrap().to_vec()
}

fn send_frame(stream: &mut TcpStream, frame: &[u8]) {
    stream
        .write_all(&(frame.len() as u16).to_le_bytes())
        .unwrap();
    stream.write_all(frame).unwrap();
}

fn read_verdict(stream: &mut TcpStream) -> Verdict {
    let mut buf = [0u8; 8];
    stream.read_exact(&mut buf).unwrap();
    Verdict::decode(&buf).unwrap()
}

/// Polls `cond` against the server's stats until it holds or `deadline`
/// elapses.
fn wait_for(
    server: &RiskServerHandle,
    deadline: Duration,
    cond: impl Fn(u64) -> bool,
    read: impl Fn(&RiskServerHandle) -> u64,
) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond(read(server)) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "condition not reached within {deadline:?}; last value {}",
        read(server)
    );
}

#[test]
fn finished_connections_are_reaped_while_serving() {
    let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();

    // Open, use, and close a few connections sequentially.
    for _ in 0..3 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        send_frame(&mut stream, &honest_frame());
        assert_eq!(read_verdict(&mut stream).status, VerdictStatus::Assessed);
        drop(stream);
    }

    // The acceptor loop must join the finished workers while the server
    // keeps running — observable through the reap counter, which final
    // shutdown joins deliberately do not touch.
    wait_for(
        &server,
        Duration::from_secs(5),
        |reaped| reaped >= 3,
        |s| s.stats().connections_reaped,
    );
    let stats = server.stats();
    assert_eq!(stats.connections_opened, 3);
    assert_eq!(stats.connections_closed, 3);
    assert_eq!(stats.connections_errored, 0);
    server.shutdown();
}

#[test]
fn idle_keepalive_client_survives_read_timeouts() {
    let config = RiskServerConfig {
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Stay silent for several read-timeout ticks, then submit. Before the
    // fix the first tick returned Err and killed the connection.
    std::thread::sleep(Duration::from_millis(350));
    send_frame(&mut stream, &honest_frame());
    assert_eq!(
        read_verdict(&mut stream).status,
        VerdictStatus::Assessed,
        "the idle connection must still be alive after several timeouts"
    );
    let stats = server.stats();
    assert!(
        stats.idle_timeouts >= 1,
        "idle ticks must be counted, got {}",
        stats.idle_timeouts
    );
    assert_eq!(stats.connections_errored, 0);
    drop(stream);
    server.shutdown();
}

#[test]
fn stalled_partial_frame_fails_the_connection() {
    let config = RiskServerConfig {
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Declare a 100-byte body but send only 3 bytes, then stall: unlike
    // pure idleness, a half-delivered frame past the timeout is fatal.
    stream.write_all(&100u16.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    wait_for(
        &server,
        Duration::from_secs(5),
        |errored| errored >= 1,
        |s| s.stats().connections_errored,
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn shutdown_is_bounded_with_silent_connected_client() {
    let config = RiskServerConfig {
        read_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();

    // A connected client that never sends a byte. Before the fix the
    // worker only noticed shutdown via its own read timeout *error* path
    // killing the connection — and with the idle fix alone it would spin
    // on idle ticks forever; the stop flag must break the loop.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the accept land

    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown must be bounded by ~one read-timeout tick, took {elapsed:?}"
    );
    drop(stream);
}
