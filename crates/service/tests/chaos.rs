//! The chaos suite: deterministic fault-injection regressions for the
//! client/server protocol.
//!
//! Each test pins one fault class the `polygraph_service::chaos` harness
//! (or a hand-rolled misbehaving server) flushes out:
//!
//! * stale bytes after a read timeout must never misparse as the *next*
//!   request's verdict (the poisoning bugfix);
//! * a connection reset mid-verdict is retried on a fresh connection;
//! * a stall that exhausts retries is an *accounted* client error, and
//!   the `round_trip.count + client.errors == client.requests` identity
//!   holds exactly;
//! * split and slow-loris-dripped frames still parse to correct verdicts;
//! * delayed `STATS` responses inside the deadline succeed;
//! * a full seeded chaos run ends every submission in exactly one of
//!   Assessed / Degraded / client error — zero garbage verdicts.
//!
//! Every test is seeded (`FaultPlan` seeds, `retry_seed`s) so a failure
//! reproduces from the log line alone. The proxy-backed tests run against
//! both connection cores via `for_each_backend`; the three hand-rolled
//! fake-server tests exercise only the client and stay unparametrized.

mod common;

use browser_engine::{UserAgent, Vendor};
use common::for_each_backend;
use fingerprint::{FeatureSet, Submission};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_obs::Registry;
use polygraph_service::client::metric_names;
use polygraph_service::proto::VERDICT_LEN;
use polygraph_service::{
    start_chaos_proxy, start_risk_server_with, FaultConfig, FaultPlan, RiskClient,
    RiskClientConfig, Verdict, VerdictStatus,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The seed of the full chaos run. Change it and the run is a different
/// (but equally reproducible) schedule of faults.
const CHAOS_SEED: u64 = 0xB10B;

fn tiny_detector() -> Detector {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .unwrap();
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 2,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    };
    Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
}

/// A Chrome 100 submission that lands in its expected cluster.
fn honest_submission(tag: u8) -> Submission {
    Submission {
        session_id: [tag; 16],
        user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
        values: vec![10, 10],
    }
}

/// A Chrome 100 claim over Chrome 60's fingerprint: always flagged.
fn lying_submission(tag: u8) -> Submission {
    Submission {
        values: vec![0, 0],
        ..honest_submission(tag)
    }
}

fn fast_retry_config(max_retries: u32, timeout: Duration) -> RiskClientConfig {
    RiskClientConfig {
        request_timeout: timeout,
        max_retries,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        retry_seed: CHAOS_SEED,
    }
}

fn counter(client: &RiskClient, name: &str) -> u64 {
    client
        .registry()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn round_trip_count(client: &RiskClient) -> u64 {
    client
        .registry()
        .snapshot()
        .histograms
        .get(metric_names::ROUND_TRIP_MICROS)
        .map(|h| h.count)
        .unwrap_or(0)
}

/// Reads one length-prefixed request frame off `stream` (the fake-server
/// half of the protocol).
fn read_request(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 2];
    stream.read_exact(&mut header).unwrap();
    let len = u16::from_le_bytes(header) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    body
}

fn good_verdict() -> Verdict {
    Verdict {
        status: VerdictStatus::Assessed,
        flagged: false,
        risk_factor: 0,
        predicted_cluster: 1,
        expected_cluster: Some(1),
    }
}

/// The stale-bytes regression (the original protocol bug): a server that
/// answers a request *after* the client's read deadline. The old client
/// kept the stream; the late verdict bytes then answered the *next*
/// request — a garbage verdict attributed to the wrong session. The
/// poisoning client must discard the stream and retry on a fresh
/// connection, never reading the stale bytes.
#[test]
fn stale_bytes_after_timeout_never_misparse_as_next_verdict() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        // Connection 1, handled on the side: stall past the deadline,
        // then answer late with a poison-pill verdict (flagged, max
        // risk). The pill lands in the client's receive buffer while the
        // client has long moved on — only poisoning keeps it unread.
        let (mut c1, _) = listener.accept().unwrap();
        let late = thread::spawn(move || {
            let _ = read_request(&mut c1);
            thread::sleep(Duration::from_millis(250));
            let pill = Verdict {
                status: VerdictStatus::Assessed,
                flagged: true,
                risk_factor: 20,
                predicted_cluster: 9,
                expected_cluster: Some(1),
            };
            let _ = c1.write_all(&pill.encode());
            thread::sleep(Duration::from_millis(100));
        });
        // Connection 2: the retry, served promptly. Answer correctly,
        // then serve one more request to prove the client's new stream
        // stays in sync.
        let (mut c2, _) = listener.accept().unwrap();
        for _ in 0..2 {
            let _ = read_request(&mut c2);
            c2.write_all(&good_verdict().encode()).unwrap();
        }
        late.join().unwrap();
    });

    let mut client = RiskClient::connect_with_config(
        addr,
        Arc::new(Registry::monotonic()),
        fast_retry_config(1, Duration::from_millis(100)),
    )
    .unwrap();

    let v = client.assess_submission(&honest_submission(1)).unwrap();
    assert_eq!(v.status, VerdictStatus::Assessed);
    assert!(
        !v.flagged,
        "the late poison-pill verdict must never surface"
    );

    // A second request on the now-healthy connection stays in sync.
    let v = client.assess_submission(&honest_submission(2)).unwrap();
    assert!(!v.flagged);

    assert_eq!(counter(&client, metric_names::REQUESTS), 2);
    assert_eq!(counter(&client, metric_names::ERRORS), 0);
    assert_eq!(counter(&client, metric_names::RETRIES), 1);
    assert_eq!(counter(&client, metric_names::POISONED), 1);
    assert_eq!(counter(&client, metric_names::RECONNECTS), 1);
    assert_eq!(round_trip_count(&client), 2);
    drop(client);
    server.join().unwrap();
}

/// A connection reset halfway through a verdict: the client reads a torn
/// 4-of-8-byte response, poisons, and retries on a fresh connection.
#[test]
fn mid_verdict_reset_is_retried_on_a_fresh_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (mut c1, _) = listener.accept().unwrap();
        let _ = read_request(&mut c1);
        let torn = good_verdict().encode();
        c1.write_all(&torn[..VERDICT_LEN / 2]).unwrap();
        drop(c1); // reset mid-verdict
        let (mut c2, _) = listener.accept().unwrap();
        let _ = read_request(&mut c2);
        c2.write_all(&good_verdict().encode()).unwrap();
    });

    let mut client = RiskClient::connect_with_config(
        addr,
        Arc::new(Registry::monotonic()),
        fast_retry_config(1, Duration::from_millis(500)),
    )
    .unwrap();
    let v = client.assess_submission(&honest_submission(3)).unwrap();
    assert_eq!(v.status, VerdictStatus::Assessed);
    assert_eq!(counter(&client, metric_names::RETRIES), 1);
    assert_eq!(counter(&client, metric_names::POISONED), 1);
    assert_eq!(counter(&client, metric_names::ERRORS), 0);
    drop(client);
    server.join().unwrap();
}

/// The backoff-reset bugfix, pinned end-to-end: blip → success → blip.
/// The failure streak must reset on the successful exchange, so the
/// second blip's first-retry sleep is `backoff_base`-scaled again — not
/// scaled by the streak the first blip started. The seeded jitter stream
/// makes both sleeps exactly predictable, and `client.backoff_micros`
/// records what was actually slept.
#[test]
fn backoff_streak_resets_after_a_successful_exchange() {
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        // Connection 1: blip — read the request, close without answering.
        let (mut c1, _) = listener.accept().unwrap();
        let _ = read_request(&mut c1);
        drop(c1);
        // Connection 2: the retry succeeds (streak resets), then the
        // next request on the same stream blips again.
        let (mut c2, _) = listener.accept().unwrap();
        let _ = read_request(&mut c2);
        c2.write_all(&good_verdict().encode()).unwrap();
        let _ = read_request(&mut c2);
        drop(c2);
        // Connection 3: the second retry succeeds.
        let (mut c3, _) = listener.accept().unwrap();
        let _ = read_request(&mut c3);
        c3.write_all(&good_verdict().encode()).unwrap();
    });

    let mut client = RiskClient::connect_with_config(
        addr,
        Arc::new(Registry::monotonic()),
        fast_retry_config(2, Duration::from_millis(500)),
    )
    .unwrap();
    assert!(
        !client
            .assess_submission(&honest_submission(7))
            .unwrap()
            .flagged
    );
    assert!(
        !client
            .assess_submission(&honest_submission(8))
            .unwrap()
            .flagged
    );

    // Reproduce the client's seeded jitter stream: two draws, both over
    // the *base* interval — first-retry sleeps both times.
    let base_us = 5_000u64; // fast_retry_config's 5 ms backoff_base
    let mut rng = ChaCha8Rng::seed_from_u64(CHAOS_SEED);
    let mut draw = |full: u64| full / 2 + rng.next_u64() % (full - full / 2 + 1);
    let expected = draw(base_us) + draw(base_us);

    let snap = client.registry().snapshot();
    let backoffs = snap.histograms.get(metric_names::BACKOFF_MICROS).unwrap();
    assert_eq!(backoffs.count, 2, "one backoff sleep per blip");
    assert_eq!(
        backoffs.sum, expected,
        "both sleeps must be backoff_base-scaled first-retry draws — the \
         streak the first blip started must not survive the success \
         (seed {CHAOS_SEED:#x})"
    );
    assert_eq!(counter(&client, metric_names::RETRIES), 2);
    assert_eq!(counter(&client, metric_names::ERRORS), 0);
    assert_eq!(round_trip_count(&client), 2);
    drop(client);
    server.join().unwrap();
}

/// A server that never answers: the client times out on every attempt,
/// exhausts its retries, and reports an *accounted* error — the counter
/// identity `round_trip.count + client.errors == client.requests` holds
/// exactly, so no request can vanish from the books.
#[test]
fn exhausted_retries_are_an_accounted_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let mut held = Vec::new();
        // Accept (and hold) every attempt without ever answering. The
        // sockets stay open well past the client's whole retry budget so
        // the failure it reports is the deadline, not our teardown.
        for _ in 0..3 {
            if let Ok((mut s, _)) = listener.accept() {
                let _ = read_request(&mut s);
                held.push(s);
            }
        }
        thread::sleep(Duration::from_millis(500));
    });

    let mut client = RiskClient::connect_with_config(
        addr,
        Arc::new(Registry::monotonic()),
        fast_retry_config(2, Duration::from_millis(60)),
    )
    .unwrap();
    // One successful-looking call first is impossible here; go straight
    // to the failure and check the books afterwards.
    let err = client.assess_submission(&honest_submission(4)).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a timeout error, got {err:?}"
    );
    let requests = counter(&client, metric_names::REQUESTS);
    let errors = counter(&client, metric_names::ERRORS);
    assert_eq!(requests, 1);
    assert_eq!(errors, 1);
    assert_eq!(counter(&client, metric_names::RETRIES), 2);
    assert_eq!(counter(&client, metric_names::POISONED), 3);
    assert_eq!(
        round_trip_count(&client) + errors,
        requests,
        "the latency histogram may only count completed round trips"
    );
    drop(client);
    server.join().unwrap();
}

/// Split submission frames (client→server) and slow-loris-dripped
/// verdicts (server→client), via the chaos proxy against a real risk
/// server: framing reassembles both and every verdict is correct.
#[test]
fn split_and_dripped_frames_still_parse_to_correct_verdicts() {
    for_each_backend(|config, backend| {
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let c2s = FaultConfig {
            split_per_mille: 1000, // split every chunk
            delay: Duration::from_millis(2),
            ..FaultConfig::none()
        };
        let s2c = FaultConfig {
            drip_per_mille: 1000, // drip every chunk byte-by-byte
            drip_step: Duration::from_millis(1),
            ..FaultConfig::none()
        };
        let proxy =
            start_chaos_proxy(server.local_addr(), FaultPlan::directional(11, c2s, s2c)).unwrap();

        let mut client = RiskClient::connect_with_config(
            proxy.local_addr(),
            Arc::new(Registry::monotonic()),
            fast_retry_config(0, Duration::from_secs(5)),
        )
        .unwrap();
        for i in 0..8u8 {
            let (sub, expect_flagged) = if i % 2 == 0 {
                (honest_submission(i), false)
            } else {
                (lying_submission(i), true)
            };
            let v = client.assess_submission(&sub).unwrap();
            assert_eq!(
                v.status,
                VerdictStatus::Assessed,
                "[{backend}] submission {i}"
            );
            assert_eq!(v.flagged, expect_flagged, "[{backend}] submission {i}");
        }
        assert_eq!(counter(&client, metric_names::ERRORS), 0, "[{backend}]");
        assert_eq!(counter(&client, metric_names::RETRIES), 0, "[{backend}]");
        drop(client);
        proxy.shutdown();
        server.shutdown();
    });
}

/// A delayed (but in-deadline) `STATS` response: the multi-read stats
/// exchange survives its header and body arriving late and in pieces.
#[test]
fn delayed_stats_response_within_deadline_succeeds() {
    for_each_backend(|config, backend| {
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let s2c = FaultConfig {
            delay_per_mille: 1000,
            delay: Duration::from_millis(40),
            split_per_mille: 0,
            ..FaultConfig::none()
        };
        let proxy = start_chaos_proxy(
            server.local_addr(),
            FaultPlan::directional(23, FaultConfig::none(), s2c),
        )
        .unwrap();

        let mut client = RiskClient::connect_with_config(
            proxy.local_addr(),
            Arc::new(Registry::monotonic()),
            fast_retry_config(1, Duration::from_secs(5)),
        )
        .unwrap();
        client.assess_submission(&honest_submission(9)).unwrap();
        let snap = client.fetch_stats().unwrap();
        assert_eq!(
            snap.counters
                .get(polygraph_service::server::metric_names::ASSESSED),
            Some(&1)
        );
        assert_eq!(
            counter(&client, metric_names::STATS_ERRORS),
            0,
            "[{backend}]"
        );
        drop(client);
        proxy.shutdown();
        server.shutdown();
    });
}

/// The full seeded chaos run: every fault class enabled at once against a
/// real server, with stalls long enough to trip the client deadline. The
/// invariant under test is *zero garbage verdicts*: each submission ends
/// in exactly one of
///
/// * `Assessed` with the flag its fingerprint deserves,
/// * `Degraded` (server shed it honestly), or
/// * a client error after bounded retries (accounted in `client.errors`);
///
/// and the books balance: `round_trip.count + errors == requests`.
#[test]
fn seeded_chaos_run_yields_zero_garbage_verdicts() {
    for_each_backend(|config, backend| {
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let faults = FaultConfig {
            reset_per_mille: 60,
            stall_per_mille: 40,
            stall: Duration::from_millis(350), // > request_timeout: forces poison path
            drip_per_mille: 30,
            drip_step: Duration::from_millis(1),
            split_per_mille: 150,
            delay_per_mille: 100,
            delay: Duration::from_millis(10),
        };
        let proxy = start_chaos_proxy(
            server.local_addr(),
            FaultPlan::symmetric(CHAOS_SEED, faults),
        )
        .unwrap();

        let mut client = RiskClient::connect_with_config(
            proxy.local_addr(),
            Arc::new(Registry::monotonic()),
            fast_retry_config(3, Duration::from_millis(200)),
        )
        .unwrap();

        let total = 60u32;
        let mut assessed = 0u32;
        let mut degraded = 0u32;
        let mut failed = 0u32;
        for i in 0..total {
            let tag = (i % 251) as u8;
            let (sub, expect_flagged) = if i % 2 == 0 {
                (honest_submission(tag), false)
            } else {
                (lying_submission(tag), true)
            };
            match client.assess_submission(&sub) {
                Ok(v) => match v.status {
                    VerdictStatus::Assessed => {
                        // THE invariant: a verdict that claims to assess this
                        // submission must carry this submission's answer. Any
                        // cross-wired response (stale bytes, torn frame
                        // resync) shows up here as a flag mismatch.
                        assert_eq!(
                            v.flagged, expect_flagged,
                            "[{backend}] garbage verdict for submission {i} (seed {CHAOS_SEED:#x})"
                        );
                        assessed += 1;
                    }
                    VerdictStatus::Degraded => degraded += 1,
                    other => panic!("submission {i}: unexpected status {other:?}"),
                },
                Err(_) => failed += 1,
            }
        }

        assert_eq!(assessed + degraded + failed, total, "[{backend}]");
        assert!(
        assessed > total / 2,
        "[{backend}] retries should carry most submissions through (assessed {assessed}/{total})"
    );

        let requests = counter(&client, metric_names::REQUESTS);
        let errors = counter(&client, metric_names::ERRORS);
        assert_eq!(requests, u64::from(total), "[{backend}]");
        assert_eq!(errors, u64::from(failed), "[{backend}]");
        assert_eq!(
            round_trip_count(&client) + errors,
            requests,
            "[{backend}] the latency histogram counts completed round trips only"
        );

        drop(client);
        proxy.shutdown();
        server.shutdown();
    });
}

/// The seeded chaos run again, at a high duplicate ratio with the
/// verdict cache enabled. Session tags vary on every request, but the
/// cache keys on the session-invariant (fingerprint, user-agent) pair —
/// so the two distinct submissions in this mix repeat at a ~0.97
/// duplicate ratio and most answers come from cache, *through the same
/// fault schedule*. Two invariants:
///
/// * zero garbage verdicts: a cached answer must still be *this*
///   submission's answer, fault or no fault;
/// * the cache books balance: every normal-path submission frame the
///   server saw is exactly one hit or one miss, so
///   `cache.hits + cache.misses == assessed + malformed + shed_exempt`
///   (no shedding or malformed traffic occurs here, but the identity is
///   asserted in full).
#[test]
fn seeded_chaos_run_with_cache_keeps_books_balanced() {
    for_each_backend(|config, backend| {
        let config = polygraph_service::RiskServerConfig {
            cache_shards: 4,
            cache_capacity: 256,
            ..config
        };
        let server = start_risk_server_with("127.0.0.1:0", tiny_detector(), config).unwrap();
        let faults = FaultConfig {
            reset_per_mille: 60,
            stall_per_mille: 40,
            stall: Duration::from_millis(350),
            drip_per_mille: 30,
            drip_step: Duration::from_millis(1),
            split_per_mille: 150,
            delay_per_mille: 100,
            delay: Duration::from_millis(10),
        };
        let proxy = start_chaos_proxy(
            server.local_addr(),
            FaultPlan::symmetric(CHAOS_SEED, faults),
        )
        .unwrap();

        let mut client = RiskClient::connect_with_config(
            proxy.local_addr(),
            Arc::new(Registry::monotonic()),
            fast_retry_config(3, Duration::from_millis(200)),
        )
        .unwrap();

        let total = 60u32;
        let mut assessed_ok = 0u32;
        let mut degraded = 0u32;
        let mut failed = 0u32;
        for i in 0..total {
            let tag = (i % 251) as u8;
            let (sub, expect_flagged) = if i % 2 == 0 {
                (honest_submission(tag), false)
            } else {
                (lying_submission(tag), true)
            };
            match client.assess_submission(&sub) {
                Ok(v) => match v.status {
                    VerdictStatus::Assessed => {
                        assert_eq!(
                        v.flagged, expect_flagged,
                        "[{backend}] garbage verdict for submission {i} (seed {CHAOS_SEED:#x}): \
                         a cache hit answered with the wrong pair's verdict"
                    );
                        assessed_ok += 1;
                    }
                    VerdictStatus::Degraded => degraded += 1,
                    other => panic!("submission {i}: unexpected status {other:?}"),
                },
                Err(_) => failed += 1,
            }
        }
        assert_eq!(assessed_ok + degraded + failed, total, "[{backend}]");
        assert!(
        assessed_ok > total / 2,
        "[{backend}] retries should carry most submissions through (assessed {assessed_ok}/{total})"
    );

        drop(client);
        proxy.shutdown();
        let stats = server.stats();
        server.shutdown();

        // Two distinct (fingerprint, UA) pairs in the whole run: after the
        // two cold misses (plus any misses retried across a detector-free
        // moment), everything is a hit.
        assert!(
            stats.cache_hits > 0,
            "[{backend}] a 0.97 duplicate ratio must hit"
        );
        assert!(
            stats.cache_misses >= 2,
            "[{backend}] both distinct pairs miss cold at least once"
        );
        assert_eq!(stats.cache_stale_epoch, 0, "[{backend}] no swap happened");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            stats.assessed + stats.malformed + stats.cache_shed_exempt,
            "[{backend}] cache books must balance: every normal-path submission frame \
         is exactly one hit or one miss (seed {CHAOS_SEED:#x})"
        );
        assert!(
            stats.assessed >= u64::from(assessed_ok),
            "[{backend}] server-side assessments include replies lost to faults"
        );
    });
}
