//! Table 5 (§7.2): detecting fraud-browser sessions on the private test
//! site.
//!
//! Reproduces the paper's experiment: train the production model, then
//! visit a test site with every profile of each product's §7.2 plan and
//! run the resulting fingerprints through the fraud-detection module.

use fraud_browsers::{catalog::product_by_name, ProfilePlan};
use polygraph_bench::{header, parse_options, train_paper_model};
use polygraph_core::Detector;

fn main() {
    let opts = parse_options();
    println!(
        "training Browser Polygraph on {} simulated sessions ...",
        opts.sessions
    );
    let (model, _) = train_paper_model(opts);
    let detector = Detector::new(model);

    header("Table 5: fraud browsers' detection capability");
    println!(
        "  {:<22} {:>8} {:>12} {:>14} {:>8}   (paper: flagged/not, avg rf, recall)",
        "browser", "flagged", "not-flagged", "avg risk", "recall"
    );
    let paper: [(&str, &str); 4] = [
        ("GoLogin", "12/4, 11.66, 75%"),
        ("Incogniton", "7/2, 8.85, 78%"),
        ("Octo Browser", "16/3, 10.18, 84%"),
        ("Sphere", "6/3, 10.5, 67%"),
    ];
    for (name, paper_row) in paper {
        let product = product_by_name(name).expect("catalogued product");
        let plan = ProfilePlan::for_product(&product);
        let mut flagged = 0usize;
        let mut risk_sum = 0u64;
        for profile in &plan.profiles {
            let a = detector
                .assess_browser(&profile.instantiate())
                .expect("assessment succeeds");
            if a.flagged {
                flagged += 1;
                risk_sum += a.risk_factor as u64;
            }
        }
        let total = plan.profiles.len();
        let avg_risk = if flagged > 0 {
            risk_sum as f64 / flagged as f64
        } else {
            0.0
        };
        println!(
            "  {:<22} {:>8} {:>12} {:>14.2} {:>7.0}%   (paper: {paper_row})",
            format!("{}-{}", product.name, product.version),
            flagged,
            total - flagged,
            avg_risk,
            100.0 * flagged as f64 / total as f64,
        );
    }

    header("category 3 control (undetectable by design, §2.3)");
    let ads = product_by_name("AdsPower").expect("catalogued");
    let plan = ProfilePlan::for_product(&ads);
    let flagged = plan
        .profiles
        .iter()
        .filter(|p| {
            detector
                .assess_browser(&p.instantiate())
                .expect("assess")
                .flagged
        })
        .count();
    println!(
        "  AdsPower (engine-swap): {flagged} of {} profiles flagged (expected ~0; \
         \n  residual flags come from sparse-user-agent table alignment, not detection)",
        plan.profiles.len()
    );
}
