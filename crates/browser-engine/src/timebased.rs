//! Time-based (presence/absence) features.
//!
//! BrowserPrint-style fingerprinting records whether a specific property
//! exists on a prototype. The paper started from BrowserPrint's 313 such
//! probes, found that most had stopped varying in post-2020 browsers, and
//! kept only 6 (Table 8, rows 23–28).
//!
//! This module models the full 313-probe population: the six live probes
//! are authored with real vendor/version semantics; the remainder are
//! procedurally generated so that — exactly as the paper found — they are
//! constant across every browser in the studied window and get filtered
//! out during pre-processing.

use crate::engine::{Engine, EngineFamily};
use crate::protodb::{fnv1a, fnv1a_pair};
use serde::{Deserialize, Serialize};

/// A `X.prototype.hasOwnProperty('y')` probe.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PresenceProbe {
    /// Prototype (interface) name.
    pub prototype: String,
    /// Property name tested for.
    pub property: String,
}

impl PresenceProbe {
    /// Creates a probe spec.
    pub fn new(prototype: &str, property: &str) -> Self {
        Self {
            prototype: prototype.into(),
            property: property.into(),
        }
    }

    /// The JavaScript expression this probe models, for display.
    pub fn expression(&self) -> String {
        format!(
            "{}.prototype.hasOwnProperty('{}')",
            self.prototype, self.property
        )
    }
}

/// The six live time-based features of Table 8 (rows 23–28), in table
/// order.
pub fn table8_presence_probes() -> [PresenceProbe; 6] {
    [
        PresenceProbe::new("Navigator", "deviceMemory"),
        PresenceProbe::new("BaseAudioContext", "currentTime"),
        PresenceProbe::new("HTMLVideoElement", "webkitDisplayingFullscreen"),
        PresenceProbe::new("Screen", "orientation"),
        PresenceProbe::new("Window", "speechSynthesis"),
        PresenceProbe::new("CSSStyleDeclaration", "getPropertyValue"),
    ]
}

/// Evaluates a presence probe against an engine.
///
/// The six live probes have authored semantics; every other probe in the
/// BrowserPrint-style candidate population answers a constant derived from
/// its name — the paper's observation that those probes "did not track
/// browser changes after 2020".
pub fn has_own_property(engine: Engine, probe: &PresenceProbe) -> bool {
    use EngineFamily::*;
    match (probe.prototype.as_str(), probe.property.as_str()) {
        // Device Memory API: Blink-only, shipped with the 69-era platform
        // wave (aligning presence flips with shape-era boundaries is what
        // keeps Table 3's cross-vendor merges tight).
        ("Navigator", "deviceMemory") => engine.family == Blink && engine.version >= 69,
        // BaseAudioContext split out of AudioContext: Blink 59+, Gecko 51+
        // (the Quantum-era audio rework), never in EdgeHTML.
        ("BaseAudioContext", "currentTime") => match engine.family {
            Blink => engine.version >= 59,
            Gecko => engine.version >= 51,
            EdgeHtml => false,
        },
        // webkit-prefixed fullscreen accessor: a Blink family marker,
        // exposed on the prototype from the 69-era WebIDL pass.
        ("HTMLVideoElement", "webkitDisplayingFullscreen") => {
            engine.family == Blink && engine.version >= 69
        }
        // Screen Orientation API: all of Blink, Gecko from the Quantum
        // rework (51), never EdgeHTML.
        ("Screen", "orientation") => match engine.family {
            Blink => true,
            Gecko => engine.version >= 51,
            EdgeHtml => false,
        },
        // Gecko hangs window properties off Window.prototype; Blink puts
        // speechSynthesis on the instance. Gecko moved it onto the
        // prototype in the 93 WebIDL pass and the 119 rework moved it off
        // again (part of the drift event of Table 6).
        ("Window", "speechSynthesis") => {
            engine.family == Gecko && (93..119).contains(&engine.version)
        }
        // On the prototype in Blink and Quantum-era Gecko; EdgeHTML and
        // pre-Quantum Gecko kept it on the instance, and the Gecko 119
        // CSSOM overhaul moved it back there (part of the drift event of
        // Table 6).
        ("CSSStyleDeclaration", "getPropertyValue") => match engine.family {
            Blink => true,
            Gecko => (51..119).contains(&engine.version),
            EdgeHtml => false,
        },
        // Everything else: constant by name, as the paper found for the
        // stale BrowserPrint probes.
        (proto, prop) => {
            fnv1a_pair(fnv1a(proto.as_bytes()), fnv1a(prop.as_bytes())).is_multiple_of(2)
        }
    }
}

/// Generates the full 313-probe candidate population: the 6 live probes of
/// Table 8 followed by 307 stale BrowserPrint-era probes.
pub fn browserprint_candidates() -> Vec<PresenceProbe> {
    let mut probes: Vec<PresenceProbe> = table8_presence_probes().to_vec();
    // Plausible interface/property vocabulary for the stale probes. The
    // names are synthetic; what matters is that the probes answer a
    // constant across the studied browser window.
    const INTERFACES: [&str; 20] = [
        "Navigator",
        "Window",
        "Document",
        "Element",
        "HTMLElement",
        "Screen",
        "History",
        "Location",
        "Performance",
        "CanvasRenderingContext2D",
        "AudioContext",
        "MediaDevices",
        "Notification",
        "Gamepad",
        "Battery",
        "NetworkInformation",
        "Storage",
        "Crypto",
        "XMLHttpRequest",
        "WebSocket",
    ];
    const PROPERTIES: [&str; 17] = [
        "webkitTemporaryStorage",
        "mozInnerScreenX",
        "msLaunchUri",
        "vendorSub",
        "oscpu",
        "buildID",
        "webkitPersistentStorage",
        "onwebkitfullscreenchange",
        "mozPaintCount",
        "msCrypto",
        "webkitRequestFileSystem",
        "onmozorientationchange",
        "taintEnabled",
        "webkitAudioDecodedByteCount",
        "mozFullScreen",
        "msManipulationViewsEnabled",
        "webkitHidden",
    ];
    let mut i = 0usize;
    'outer: for prop in PROPERTIES {
        for iface in INTERFACES {
            if probes.len() == 313 {
                break 'outer;
            }
            // Skip collisions with the live probes.
            let candidate = PresenceProbe::new(iface, prop);
            if probes.contains(&candidate) {
                continue;
            }
            probes.push(candidate);
            i += 1;
        }
    }
    debug_assert_eq!(i + 6, probes.len());
    assert_eq!(
        probes.len(),
        313,
        "BrowserPrint candidate population must be 313 probes"
    );
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_313_unique_probes() {
        let probes = browserprint_candidates();
        assert_eq!(probes.len(), 313);
        let mut set = std::collections::HashSet::new();
        for p in &probes {
            assert!(set.insert(p.clone()), "duplicate probe {}", p.expression());
        }
    }

    #[test]
    fn device_memory_is_blink_69_plus() {
        let probe = PresenceProbe::new("Navigator", "deviceMemory");
        assert!(!has_own_property(Engine::blink(68), &probe));
        assert!(has_own_property(Engine::blink(69), &probe));
        assert!(!has_own_property(Engine::gecko(119), &probe));
        assert!(!has_own_property(Engine::edge_html(18), &probe));
    }

    #[test]
    fn webkit_fullscreen_marks_modern_blink() {
        let probe = PresenceProbe::new("HTMLVideoElement", "webkitDisplayingFullscreen");
        assert!(!has_own_property(Engine::blink(68), &probe));
        assert!(has_own_property(Engine::blink(69), &probe));
        assert!(has_own_property(Engine::blink(119), &probe));
        assert!(!has_own_property(Engine::gecko(119), &probe));
    }

    #[test]
    fn group1_bits_are_identical_across_old_blink_and_quantum_gecko() {
        // The Table 3 cluster-2 merge requires Chrome 59-68 and
        // Firefox 51-92 to agree on every presence bit.
        for probe in table8_presence_probes() {
            for (b, g) in [(59, 51), (63, 78), (68, 92)] {
                assert_eq!(
                    has_own_property(Engine::blink(b), &probe),
                    has_own_property(Engine::gecko(g), &probe),
                    "{} splits Chrome {b} from Firefox {g}",
                    probe.expression()
                );
            }
        }
    }

    #[test]
    fn speech_synthesis_marks_modern_gecko() {
        let probe = PresenceProbe::new("Window", "speechSynthesis");
        assert!(has_own_property(Engine::gecko(93), &probe));
        assert!(!has_own_property(Engine::gecko(92), &probe));
        assert!(!has_own_property(Engine::gecko(119), &probe));
        assert!(!has_own_property(Engine::blink(119), &probe));
    }

    #[test]
    fn get_property_value_flips_at_gecko_119() {
        let probe = PresenceProbe::new("CSSStyleDeclaration", "getPropertyValue");
        assert!(has_own_property(Engine::gecko(118), &probe));
        assert!(!has_own_property(Engine::gecko(119), &probe));
        assert!(
            !has_own_property(Engine::gecko(50), &probe),
            "pre-Quantum: instance-bound"
        );
        assert!(has_own_property(Engine::blink(119), &probe));
        assert!(!has_own_property(Engine::edge_html(18), &probe));
    }

    #[test]
    fn group0_bits_are_identical_across_edgehtml_and_prequantum_gecko() {
        // The Table 3 cluster-6 merge requires EdgeHTML and Firefox 46-50
        // to agree on every presence bit.
        for probe in table8_presence_probes() {
            for fx in 46..=50 {
                assert_eq!(
                    has_own_property(Engine::edge_html(18), &probe),
                    has_own_property(Engine::gecko(fx), &probe),
                    "{} splits the EdgeHTML / Firefox {fx} group",
                    probe.expression()
                );
            }
        }
    }

    #[test]
    fn stale_probes_are_constant_across_studied_browsers() {
        // Every non-Table-8 probe must answer identically for all engines in
        // the studied window — the paper's reason for dropping them.
        let live = table8_presence_probes();
        let engines = [
            Engine::blink(59),
            Engine::blink(90),
            Engine::blink(119),
            Engine::gecko(46),
            Engine::gecko(102),
            Engine::gecko(119),
            Engine::edge_html(18),
        ];
        for probe in browserprint_candidates() {
            if live.contains(&probe) {
                continue;
            }
            let first = has_own_property(engines[0], &probe);
            for &e in &engines[1..] {
                assert_eq!(
                    has_own_property(e, &probe),
                    first,
                    "stale probe {} must be constant",
                    probe.expression()
                );
            }
        }
    }

    #[test]
    fn exactly_six_probes_vary() {
        let engines = [
            Engine::blink(59),
            Engine::blink(63),
            Engine::blink(119),
            Engine::gecko(46),
            Engine::gecko(53),
            Engine::gecko(118),
            Engine::gecko(119),
            Engine::edge_html(18),
        ];
        let varying = browserprint_candidates()
            .into_iter()
            .filter(|p| {
                let first = has_own_property(engines[0], p);
                engines[1..]
                    .iter()
                    .any(|&e| has_own_property(e, p) != first)
            })
            .count();
        assert_eq!(varying, 6);
    }

    #[test]
    fn expression_renders_js() {
        let p = PresenceProbe::new("Screen", "orientation");
        assert_eq!(
            p.expression(),
            "Screen.prototype.hasOwnProperty('orientation')"
        );
    }
}
