//! Software-specific fraud-browser markers (§8, "Deployment scope").
//!
//! The paper observes that anti-detect products often make themselves
//! *more* fingerprintable than stock browsers: AntBrowser injects an
//! `ANTBROWSER` object and `antBrowser`-prefixed attributes into the page
//! namespace — echoing Nikiforakis et al.'s finding that spoofing
//! extensions ironically aid fingerprinting. The paper leaves automating
//! this as future work; this module implements the direct version: a
//! curated marker dictionary plus a scanner that checks a browser's
//! global namespace against it.
//!
//! Marker detection is complementary to the clustering detector: it
//! catches specific *products* (including category 3, which the
//! coarse-grained fingerprint cannot see) but goes stale with each product
//! release, exactly as the paper says of manual regex defences (§9).

use crate::catalog::Category;
use browser_engine::BrowserInstance;
use serde::Serialize;

/// One known product marker: a global name a product injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Marker {
    /// The injected global's name.
    pub global: &'static str,
    /// The product known to inject it.
    pub product: &'static str,
    /// The product's category (markers can implicate category 3 too).
    pub category: Category,
}

/// The curated marker dictionary: the §8 AntBrowser observation plus the
/// same class of leak for other products (each product's updater/IPC
/// bridge names, as a field analyst would curate them).
pub const KNOWN_MARKERS: [Marker; 6] = [
    Marker {
        global: "ANTBROWSER",
        product: "AntBrowser",
        category: Category::FixedFingerprint,
    },
    Marker {
        global: "antBrowserProfile",
        product: "AntBrowser",
        category: Category::FixedFingerprint,
    },
    Marker {
        global: "__lsphere_bridge",
        product: "Linken Sphere",
        category: Category::MismatchedFingerprint,
    },
    Marker {
        global: "__clonInject",
        product: "ClonBrowser",
        category: Category::MismatchedFingerprint,
    },
    Marker {
        global: "adspower_helper",
        product: "AdsPower",
        category: Category::EngineSwap,
    },
    Marker {
        global: "__gl_profile_sync",
        product: "GoLogin",
        category: Category::FixedFingerprint,
    },
];

/// A marker found on a scanned browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MarkerHit {
    /// The matched marker.
    pub marker: Marker,
}

/// Scans a browser's global namespace for known product markers.
pub fn scan_markers(browser: &BrowserInstance) -> Vec<MarkerHit> {
    KNOWN_MARKERS
        .iter()
        .filter(|m| browser.has_global(m.global))
        .map(|&marker| MarkerHit { marker })
        .collect()
}

/// True when the browser carries any known product marker.
pub fn has_any_marker(browser: &BrowserInstance) -> bool {
    KNOWN_MARKERS.iter().any(|m| browser.has_global(m.global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::product_by_name;
    use crate::profile::FraudProfile;
    use browser_engine::{UserAgent, Vendor};

    #[test]
    fn antbrowser_profile_trips_the_scanner() {
        let ant = product_by_name("AntBrowser").unwrap();
        let instance = FraudProfile::new(ant, UserAgent::new(Vendor::Chrome, 100)).instantiate();
        let hits = scan_markers(&instance);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].marker.product, "AntBrowser");
        assert!(has_any_marker(&instance));
    }

    #[test]
    fn stock_browsers_carry_no_markers() {
        for release in browser_engine::catalog::legitimate_releases() {
            let b = BrowserInstance::genuine(release.ua);
            assert!(
                scan_markers(&b).is_empty(),
                "{} tripped a marker",
                release.ua.label()
            );
        }
    }

    #[test]
    fn category3_products_are_marker_detectable() {
        // The clustering detector cannot see AdsPower (engine-swap);
        // a leaked helper global can.
        let ads = product_by_name("AdsPower").unwrap();
        let instance = FraudProfile::new(ads, UserAgent::new(Vendor::Firefox, 110))
            .instantiate()
            .polluted("adspower_helper");
        assert!(instance.is_consistent(), "cat 3 fools the fingerprint");
        let hits = scan_markers(&instance);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].marker.category, Category::EngineSwap);
    }

    #[test]
    fn marker_dictionary_has_no_duplicate_globals() {
        let mut names: Vec<&str> = KNOWN_MARKERS.iter().map(|m| m.global).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KNOWN_MARKERS.len());
    }
}
