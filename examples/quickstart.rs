//! Quickstart: train Browser Polygraph on simulated traffic and interrogate
//! a few browsers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{BrowserInstance, Engine, UserAgent, Vendor};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::traffic::{generate, TrafficConfig};

fn main() {
    // 1. The paper's final 28-feature coarse-grained fingerprint schema.
    let features = FeatureSet::table8();
    println!(
        "feature set: {} probes (22 deviation-based + 6 time-based)",
        features.len()
    );

    // 2. A window of simulated logged-in traffic (stand-in for FinOrg's
    //    production data; scale up to 205_000 for the paper-sized run).
    let window = TrafficConfig::paper_training().with_sessions(20_000);
    println!("generating {} sessions of traffic ...", window.sessions);
    let data = generate(&features, &window);
    let (rows, user_agents) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, user_agents).expect("well-formed traffic");

    // 3. Train: scale -> outlier removal -> PCA(7) -> k-means(11).
    let model = TrainedModel::fit(features.clone(), &training, TrainConfig::default())
        .expect("training succeeds");
    println!(
        "trained: {:.2}% clustering accuracy, {} outliers removed",
        model.train_accuracy() * 100.0,
        model.outliers_removed()
    );
    println!("cluster table (the paper's Table 3):");
    for (cluster, _) in model.cluster_table().rows() {
        println!(
            "  cluster {cluster:>2}: {}",
            model.cluster_table().describe_cluster(cluster)
        );
    }

    // 4. Interrogate browsers.
    let detector = Detector::new(model);

    let honest = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    let verdict = detector.assess_browser(&honest).expect("assess");
    println!(
        "\ngenuine Chrome 112        -> flagged: {}, risk factor: {}",
        verdict.flagged, verdict.risk_factor
    );

    // A category-2 fraud browser: embedded Blink 110 claiming the victim's
    // Firefox 109.
    let fraud =
        BrowserInstance::with_engine(Engine::blink(110), UserAgent::new(Vendor::Firefox, 109));
    let verdict = detector.assess_browser(&fraud).expect("assess");
    println!(
        "Blink 110 claiming Firefox 109 -> flagged: {}, risk factor: {} (vendor mismatch = {})",
        verdict.flagged,
        verdict.risk_factor,
        browser_polygraph::core::MAX_RISK
    );

    // A same-vendor version lie.
    let stale =
        BrowserInstance::with_engine(Engine::blink(95), UserAgent::new(Vendor::Chrome, 113));
    let verdict = detector.assess_browser(&stale).expect("assess");
    println!(
        "Blink 95 claiming Chrome 113   -> flagged: {}, risk factor: {}",
        verdict.flagged, verdict.risk_factor
    );
}
