//! Quantized vs staged agreement, verdict for verdict.
//!
//! The quantized fast path promises to change arithmetic, never
//! decisions: every `Assessment` it produces must equal the staged f64
//! path's field for field, across the fraud-browser taxonomy (all four
//! behavioural categories of Table 1) and across degenerate inputs —
//! zero-variance columns, extreme magnitudes, fractional values, and
//! single-centroid models.

use browser_engine::{BrowserInstance, UserAgent, Vendor};
use fingerprint::FeatureSet;
use fraud_browsers::{table1_products, FraudProfile};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A full-width model over the genuine release catalogue — the same
/// shape the serving path runs (28 features, default k and components).
fn catalogue_model(k_override: Option<usize>) -> TrainedModel {
    let fs = FeatureSet::table8();
    let mut set = TrainingSet::new(fs.len());
    for r in browser_engine::catalog::legitimate_releases() {
        let fp = fs.extract(&BrowserInstance::genuine(r.ua));
        for _ in 0..3 {
            set.push(fp.as_f64(), r.ua).unwrap();
        }
    }
    let mut config = TrainConfig {
        min_samples_for_majority: 1,
        ..Default::default()
    };
    if let Some(k) = k_override {
        config.k = k;
    }
    TrainedModel::fit(fs, &set, config).unwrap()
}

fn paired_detectors(k_override: Option<usize>) -> (Detector, Detector) {
    let staged = Detector::new(catalogue_model(k_override));
    let mut quantized = staged.clone();
    quantized.quantize().unwrap();
    (staged, quantized)
}

/// The default-config pair, fitted once and shared across all property
/// cases (fitting per case would dominate the suite's runtime).
fn detectors() -> &'static (Detector, Detector) {
    static PAIR: OnceLock<(Detector, Detector)> = OnceLock::new();
    PAIR.get_or_init(|| paired_detectors(None))
}

fn assert_agree(staged: &Detector, quantized: &Detector, sessions: &[(Vec<f64>, UserAgent)]) {
    let a = staged.assess_many(sessions);
    let b = quantized.assess_many(sessions);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            format!("{x:?}"),
            format!("{y:?}"),
            "session {i} diverged: {:?}",
            sessions[i]
        );
    }
}

fn vendor_of(idx: usize) -> Vendor {
    [Vendor::Chrome, Vendor::Firefox, Vendor::Edge][idx % 3]
}

proptest! {
    /// Every Table 1 fraud product, instantiated with an arbitrary
    /// stolen claim, assesses identically on both paths.
    #[test]
    fn fraud_taxonomy_agrees(vendor_idx in 0usize..3, version in 1u32..200) {
        let (staged, quantized) = detectors();
        let claimed = UserAgent::new(vendor_of(vendor_idx), version);
        let fs = staged.model().feature_set().clone();
        let mut sessions = Vec::new();
        for product in table1_products() {
            let profile = FraudProfile::new(product, claimed);
            let instance = profile.instantiate();
            let fp = fs.extract(&instance);
            sessions.push((fp.as_f64(), instance.claimed_user_agent()));
        }
        // A genuine control session rides along.
        let genuine = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 100 + version % 10));
        sessions.push((fs.extract(&genuine).as_f64(), genuine.claimed_user_agent()));
        assert_agree(staged, quantized, &sessions);
    }

    /// Degenerate raw rows: extreme magnitudes (far past the integer
    /// fast-path limit), fractional values, zeros, and mixtures. The
    /// quantized path must route them through the staged fallback and
    /// agree exactly — including wrong-width error cases.
    #[test]
    fn degenerate_inputs_agree(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..40),
        vendor_idx in 0usize..3,
        version in 1u32..200,
    ) {
        let (staged, quantized) = detectors();
        let claimed = UserAgent::new(vendor_of(vendor_idx), version);
        // Map each raw draw onto one of the degenerate value classes.
        let values: Vec<f64> = raw
            .iter()
            .map(|&r| match r % 6 {
                0 => 0.0,
                1 => (r % 500) as f64,             // in-domain count
                2 => (r % 1_000_000_000) as f64,   // large but integral
                3 => 1e300,                        // far past x_limit
                4 => 0.5,                          // fractional
                _ => (r % 50) as f64 + 0.25,       // fractional count
            })
            .collect();
        let sessions = vec![(values, claimed)];
        assert_agree(staged, quantized, &sessions);
    }
}

/// A single-centroid model (k = 1) cannot misroute anything; both paths
/// must agree on every session, genuine and fraudulent alike.
#[test]
fn single_centroid_model_agrees() {
    let (staged, quantized) = paired_detectors(Some(1));
    let fs = staged.model().feature_set().clone();
    let mut sessions = Vec::new();
    for r in browser_engine::catalog::legitimate_releases() {
        let instance = BrowserInstance::genuine(r.ua);
        sessions.push((fs.extract(&instance).as_f64(), r.ua));
    }
    for product in table1_products() {
        let profile = FraudProfile::new(product, UserAgent::new(Vendor::Chrome, 90));
        let instance = profile.instantiate();
        sessions.push((
            fs.extract(&instance).as_f64(),
            instance.claimed_user_agent(),
        ));
    }
    assert_agree(&staged, &quantized, &sessions);
}

/// Zero-variance feature columns (shared constant probes) survive the
/// whole pipeline: the scaler passes them through at scale 1.0, the
/// compiler folds them without poisoning the weights, and both paths
/// agree — including on all-constant rows.
#[test]
fn zero_variance_columns_agree() {
    let (staged, quantized) = detectors();
    let width = staged.model().feature_set().len();
    let mut sessions = Vec::new();
    for magnitude in [0u32, 1, 7, 450] {
        sessions.push((
            vec![f64::from(magnitude); width],
            UserAgent::new(Vendor::Firefox, 115),
        ));
    }
    assert_agree(staged, quantized, &sessions);
}
