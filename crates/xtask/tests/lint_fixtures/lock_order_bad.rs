//! Bad fixture: lock-order inversions across three named locks.
//!
//! `charge_then_index` takes ledger then index while `reindex` takes
//! index then ledger; `escalate` reaches the audit lock through
//! `grab_audit` (one propagated call level) while `audit_then_ledger`
//! takes audit then ledger. Both pairs cycle.
pub fn charge_then_index(ledger: &RwLock<u64>, index: &Mutex<Vec<u64>>) {
    let amount = 7;
    let mut book = ledger.write();
    let mut idx = index.lock();
    *book += amount;
    idx.push(amount);
}

pub fn reindex(ledger: &RwLock<u64>, index: &Mutex<Vec<u64>>) {
    let mut idx = index.lock();
    let book = ledger.read();
    idx.push(*book);
}

pub fn escalate(ledger: &RwLock<u64>, audit: &Mutex<Vec<u64>>) {
    let threshold = 3;
    let book = ledger.read();
    grab_audit(audit, *book + threshold);
}

pub fn grab_audit(audit: &Mutex<Vec<u64>>, entry: u64) {
    let floor = 1;
    let mut log = audit.lock();
    log.push(entry + floor);
}

pub fn audit_then_ledger(ledger: &RwLock<u64>, audit: &Mutex<Vec<u64>>) {
    let mut log = audit.lock();
    let book = ledger.read();
    log.push(*book);
}
