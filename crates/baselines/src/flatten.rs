//! The Appendix-5 flattening pipeline: nested JSON → numeric matrix.
//!
//! The paper's recipe, verbatim: flatten nested objects into per-key
//! columns; keep numeric values; map booleans to 0/1; encode strings as
//! numeric categories; fill missing values with −1; drop columns with
//! unique values across all data points; for ClientJS, also drop
//! user-agent-derived columns.

use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A flattened scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A numeric value, kept as-is.
    Num(f64),
    /// A boolean, later encoded 0/1.
    Bool(bool),
    /// A string, later encoded as a category index.
    Str(String),
}

/// Flattens a JSON document into dotted-path scalars. Arrays become
/// `path.0`, `path.1`, … entries.
pub fn flatten_json(value: &Value) -> BTreeMap<String, FlatValue> {
    let mut out = BTreeMap::new();
    flatten_into(value, String::new(), &mut out);
    out
}

fn flatten_into(value: &Value, prefix: String, out: &mut BTreeMap<String, FlatValue>) {
    match value {
        Value::Object(map) => {
            for (k, v) in map {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(v, key, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                let key = if prefix.is_empty() {
                    i.to_string()
                } else {
                    format!("{prefix}.{i}")
                };
                flatten_into(v, key, out);
            }
        }
        Value::Number(n) => {
            out.insert(prefix, FlatValue::Num(n.as_f64().unwrap_or(0.0)));
        }
        Value::Bool(b) => {
            out.insert(prefix, FlatValue::Bool(*b));
        }
        Value::String(s) => {
            out.insert(prefix, FlatValue::Str(s.clone()));
        }
        Value::Null => { /* treated as missing: no entry, encoded -1 later */ }
    }
}

/// A dataset encoded for clustering.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// Column names retained after dropping unique/constant columns.
    pub columns: Vec<String>,
    /// One numeric row per input document, parallel to `columns`.
    pub rows: Vec<Vec<f64>>,
    /// Column names dropped for having a distinct value per row.
    pub dropped_unique: Vec<String>,
    /// Column names dropped for carrying a single value.
    pub dropped_constant: Vec<String>,
}

/// Encodes a collection of flattened documents into a numeric matrix per
/// the Appendix-5 recipe. `exclude` drops columns by name prefix before
/// encoding (the ClientJS UA-derived fields).
pub fn encode_dataset(docs: &[BTreeMap<String, FlatValue>], exclude: &[&str]) -> EncodedDataset {
    // Collect the column universe.
    let mut columns: BTreeSet<String> = BTreeSet::new();
    for d in docs {
        for k in d.keys() {
            if !exclude
                .iter()
                .any(|e| k == e || k.starts_with(&format!("{e}.")))
            {
                columns.insert(k.clone());
            }
        }
    }
    let columns: Vec<String> = columns.into_iter().collect();

    // Build per-column categorical codebooks for strings.
    let mut codebooks: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for col in &columns {
        let mut cats: BTreeSet<&str> = BTreeSet::new();
        for d in docs {
            if let Some(FlatValue::Str(s)) = d.get(col) {
                cats.insert(s);
            }
        }
        if !cats.is_empty() {
            codebooks.insert(
                col,
                cats.into_iter().enumerate().map(|(i, s)| (s, i)).collect(),
            );
        }
    }

    // Encode.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(docs.len());
    for d in docs {
        let row: Vec<f64> = columns
            .iter()
            .map(|col| match d.get(col) {
                Some(FlatValue::Num(n)) => *n,
                Some(FlatValue::Bool(b)) => *b as u8 as f64,
                Some(FlatValue::Str(s)) => codebooks
                    .get(col.as_str())
                    .and_then(|cb| cb.get(s.as_str()))
                    .map(|&i| i as f64)
                    .unwrap_or(-1.0),
                None => -1.0,
            })
            .collect();
        rows.push(row);
    }

    // Drop all-distinct and single-valued columns.
    let n = rows.len();
    let mut keep = Vec::new();
    let mut dropped_unique = Vec::new();
    let mut dropped_constant = Vec::new();
    for (ci, col) in columns.iter().enumerate() {
        let mut distinct: BTreeSet<u64> = BTreeSet::new();
        for r in &rows {
            distinct.insert(r[ci].to_bits());
        }
        if distinct.len() == n && n > 1 {
            dropped_unique.push(col.clone());
        } else if distinct.len() <= 1 {
            dropped_constant.push(col.clone());
        } else {
            keep.push(ci);
        }
    }
    let kept_columns: Vec<String> = keep.iter().map(|&i| columns[i].clone()).collect();
    let kept_rows: Vec<Vec<f64>> = rows
        .into_iter()
        .map(|r| keep.iter().map(|&i| r[i]).collect())
        .collect();

    EncodedDataset {
        columns: kept_columns,
        rows: kept_rows,
        dropped_unique,
        dropped_constant,
    }
}

/// The UA-derived ClientJS columns excluded before clustering
/// (Appendix-5: "since some features were directly extracted from the
/// user-agent string, we excluded those features as well").
pub const CLIENTJS_UA_DERIVED: [&str; 6] = [
    "userAgent",
    "browser",
    "browserVersion",
    "browserMajorVersion",
    "engine",
    "os",
];

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn flatten_handles_nesting_and_arrays() {
        let v = json!({
            "a": { "b": 1, "c": [true, "x"] },
            "d": null,
        });
        let flat = flatten_json(&v);
        assert_eq!(flat.get("a.b"), Some(&FlatValue::Num(1.0)));
        assert_eq!(flat.get("a.c.0"), Some(&FlatValue::Bool(true)));
        assert_eq!(flat.get("a.c.1"), Some(&FlatValue::Str("x".into())));
        assert!(!flat.contains_key("d"), "null is missing, not a value");
    }

    #[test]
    fn encode_maps_types_per_recipe() {
        let docs: Vec<_> = [
            json!({ "n": 5, "b": true,  "s": "red",  "m": 1 }),
            json!({ "n": 7, "b": false, "s": "blue"          }),
        ]
        .iter()
        .map(flatten_json)
        .collect();
        let enc = encode_dataset(&docs, &[]);
        // "m" is missing in row 2 -> -1; all columns here are distinct
        // (two rows, two values) so they'd be unique-dropped... except n=2
        // rows with 2 distinct values means distinct == n: dropped.
        // Use the fact to check the drop logic:
        assert!(enc.columns.is_empty() || !enc.dropped_unique.is_empty());
    }

    #[test]
    fn encode_categorical_and_missing() {
        let docs: Vec<_> = [
            json!({ "s": "red",  "k": 1 }),
            json!({ "s": "blue", "k": 1 }),
            json!({ "s": "red",  "k": 1 }),
        ]
        .iter()
        .map(flatten_json)
        .collect();
        let enc = encode_dataset(&docs, &[]);
        // "s": categories sorted -> blue=0, red=1. "k": constant, dropped.
        assert_eq!(enc.columns, vec!["s".to_string()]);
        assert_eq!(enc.rows, vec![vec![1.0], vec![0.0], vec![1.0]]);
        assert_eq!(enc.dropped_constant, vec!["k".to_string()]);
    }

    #[test]
    fn unique_columns_are_dropped() {
        let docs: Vec<_> = [
            json!({ "id": "a", "x": 1 }),
            json!({ "id": "b", "x": 1 }),
            json!({ "id": "c", "x": 2 }),
        ]
        .iter()
        .map(flatten_json)
        .collect();
        let enc = encode_dataset(&docs, &[]);
        assert_eq!(enc.dropped_unique, vec!["id".to_string()]);
        assert_eq!(enc.columns, vec!["x".to_string()]);
    }

    #[test]
    fn exclusion_drops_prefixed_columns() {
        let docs: Vec<_> = [
            json!({ "userAgent": "Mozilla/a", "browser": "Chrome", "keepme": 1 }),
            json!({ "userAgent": "Mozilla/b", "browser": "Edge",   "keepme": 2 }),
            json!({ "userAgent": "Mozilla/c", "browser": "Chrome", "keepme": 2 }),
        ]
        .iter()
        .map(flatten_json)
        .collect();
        let enc = encode_dataset(&docs, &CLIENTJS_UA_DERIVED);
        assert_eq!(enc.columns, vec!["keepme".to_string()]);
    }

    #[test]
    fn rows_stay_parallel_to_columns() {
        let docs: Vec<_> = (0..10)
            .map(|i| {
                flatten_json(&json!({ "a": i % 3, "b": i % 2 == 0, "c": format!("v{}", i % 4) }))
            })
            .collect();
        let enc = encode_dataset(&docs, &[]);
        for r in &enc.rows {
            assert_eq!(r.len(), enc.columns.len());
        }
        assert_eq!(enc.rows.len(), 10);
    }
}
