//! Good twin of `lock_order_bad.rs`: both paths take the locks in the
//! same global order (vault before roster), so the aggregated
//! lock-order graph stays acyclic.
pub fn charge_in_order(vault: &RwLock<u64>, roster: &Mutex<Vec<u64>>) {
    let mut book = vault.write();
    let mut idx = roster.lock();
    *book += 1;
    idx.push(*book);
}

pub fn settle_in_order(vault: &RwLock<u64>, roster: &Mutex<Vec<u64>>) {
    let book = vault.read();
    let mut idx = roster.lock();
    idx.push(*book);
}
