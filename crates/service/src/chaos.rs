//! polygraph-chaos: deterministic fault injection for the service stack.
//!
//! The paper deploys Browser Polygraph inside a risk-based authentication
//! path (§1, §4) where the fingerprint verdict is one signal among many —
//! an unreachable or desynced risk server must degrade gracefully, never
//! stall a login. This module provides the fault model that lets tests
//! *prove* that property instead of assuming it:
//!
//! * [`FaultConfig`] / [`FaultPlan`] — a seeded, ChaCha-driven description
//!   of which wire-layer faults to inject and how often. Every decision is
//!   a pure function of (seed, stream id, draw index), so a failing chaos
//!   run reproduces exactly from its seed.
//! * [`FaultSession`] — the per-direction decision stream a pump consults:
//!   given a chunk of bytes to forward, it plans the delivery as a
//!   sequence of [`DeliveryStep`]s (sends, pauses, an optional mid-chunk
//!   connection reset).
//! * [`ChaosProxy`] — a test-only TCP proxy that sits between a
//!   [`crate::RiskClient`] and a risk server and applies a [`FaultPlan`]
//!   to both directions independently: partial writes, split/merged
//!   frames, read stalls past the client deadline, mid-verdict resets,
//!   slow-loris byte drips, and delayed `STATS` responses.
//!
//! The module lives in the workspace's determinism *and* panic-safety
//! lint zones (`lint.toml`): no wall-clock reads, no non-ChaCha RNG, no
//! `unwrap`/indexing on the pump path — a fault injector that itself
//! panics would mask the bug it was built to flush out.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Which faults a [`FaultPlan`] injects and how often, as per-mille
/// probabilities drawn once per forwarded chunk. Classes are checked in a
/// fixed order (reset, stall, drip, split, delay) and at most one fires
/// per chunk, so the decision stream is stable under config edits that
/// leave earlier classes untouched.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Chance (‰) of closing the connection after forwarding only the
    /// first half of a chunk — the "mid-verdict reset".
    pub reset_per_mille: u16,
    /// Chance (‰) of holding a whole chunk for [`FaultConfig::stall`]
    /// before forwarding it — long enough to trip a peer's read deadline.
    pub stall_per_mille: u16,
    /// The stall duration. Point this past the client's request timeout to
    /// exercise the timeout-then-retry path.
    pub stall: Duration,
    /// Chance (‰) of slow-loris delivery: the chunk's first bytes are
    /// forwarded one at a time, [`FaultConfig::drip_step`] apart.
    pub drip_per_mille: u16,
    /// Pause between dripped bytes. Keep it under the receiver's read
    /// timeout: a drip is slow progress, not a stall.
    pub drip_step: Duration,
    /// Chance (‰) of splitting a chunk at a drawn boundary into two
    /// separate writes (a partial write / split frame).
    pub split_per_mille: u16,
    /// Chance (‰) of delaying a chunk by [`FaultConfig::delay`] before
    /// forwarding it whole — the "slow `STATS` response".
    pub delay_per_mille: u16,
    /// The plain-delay duration.
    pub delay: Duration,
}

/// How many leading bytes of a chunk a drip delivers one at a time before
/// the remainder goes out in one write. Bounds drip wall-time while still
/// crossing every interesting frame boundary (headers are 2–7 bytes).
const DRIP_PREFIX: usize = 16;

impl FaultConfig {
    /// A config that injects nothing — the proxy becomes a plain relay.
    pub fn none() -> Self {
        Self {
            reset_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::from_millis(0),
            drip_per_mille: 0,
            drip_step: Duration::from_millis(0),
            split_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(0),
        }
    }

    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.reset_per_mille > 0
            || self.stall_per_mille > 0
            || self.drip_per_mille > 0
            || self.split_per_mille > 0
            || self.delay_per_mille > 0
    }
}

/// A seeded fault plan: one [`FaultConfig`] per proxy direction plus the
/// ChaCha seed every [`FaultSession`] derives from.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Faults applied to client→server traffic (submission frames).
    pub client_to_server: FaultConfig,
    /// Faults applied to server→client traffic (verdicts, `STATS`).
    pub server_to_client: FaultConfig,
}

impl FaultPlan {
    /// A plan applying `config` to both directions.
    pub fn symmetric(seed: u64, config: FaultConfig) -> Self {
        Self {
            seed,
            client_to_server: config.clone(),
            server_to_client: config,
        }
    }

    /// A plan with distinct per-direction configs.
    pub fn directional(
        seed: u64,
        client_to_server: FaultConfig,
        server_to_client: FaultConfig,
    ) -> Self {
        Self {
            seed,
            client_to_server,
            server_to_client,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The decision stream for one pump direction. `stream` must be unique
    /// per (connection, direction); the proxy uses `2·conn` for
    /// client→server and `2·conn + 1` for server→client, so every session
    /// draws from an independent ChaCha keystream of the same seed.
    pub fn session(&self, stream: u64, config: FaultConfig) -> FaultSession {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        rng.set_stream(stream);
        FaultSession { rng, config }
    }
}

/// One step of a planned chunk delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStep {
    /// Sleep for the duration before the next send.
    Pause(Duration),
    /// Forward the next `n` bytes of the chunk.
    Send(usize),
}

/// How a chunk should be delivered: the steps in order, then optionally a
/// hard connection reset (remaining bytes are dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Delivery steps, consumed in order.
    pub steps: Vec<DeliveryStep>,
    /// Close both directions after the steps ran (bytes not covered by a
    /// [`DeliveryStep::Send`] are lost, as in a real connection reset).
    pub reset_after: bool,
}

impl ChunkPlan {
    fn clean(len: usize) -> Self {
        Self {
            steps: vec![DeliveryStep::Send(len)],
            reset_after: false,
        }
    }
}

/// The per-direction decision stream: a ChaCha keystream plus the config
/// saying which faults may fire.
#[derive(Debug)]
pub struct FaultSession {
    rng: ChaCha8Rng,
    config: FaultConfig,
}

impl FaultSession {
    /// Draws one per-mille roll. Always consumes exactly one RNG word so
    /// the decision stream stays aligned across runs.
    fn roll(&mut self, per_mille: u16) -> bool {
        let draw = self.rng.next_u32() % 1000;
        per_mille > 0 && draw < u32::from(per_mille)
    }

    /// Plans the delivery of an `len`-byte chunk. Classes are tried in a
    /// fixed order and at most one fires; every call consumes the same
    /// number of probability draws regardless of which (plus one extra
    /// draw for the boundary when a reset or split fires).
    pub fn plan_chunk(&mut self, len: usize) -> ChunkPlan {
        let reset = self.roll(self.config.reset_per_mille);
        let stall = self.roll(self.config.stall_per_mille);
        let drip = self.roll(self.config.drip_per_mille);
        let split = self.roll(self.config.split_per_mille);
        let delay = self.roll(self.config.delay_per_mille);
        if len == 0 {
            return ChunkPlan::clean(0);
        }
        if reset {
            // Forward only the first half, then cut the connection: the
            // peer sees a torn frame followed by EOF/reset.
            return ChunkPlan {
                steps: vec![DeliveryStep::Send(len / 2)],
                reset_after: true,
            };
        }
        if stall {
            return ChunkPlan {
                steps: vec![
                    DeliveryStep::Pause(self.config.stall),
                    DeliveryStep::Send(len),
                ],
                reset_after: false,
            };
        }
        if drip {
            let dripped = len.min(DRIP_PREFIX);
            let mut steps = Vec::with_capacity(dripped * 2 + 1);
            for _ in 0..dripped {
                steps.push(DeliveryStep::Pause(self.config.drip_step));
                steps.push(DeliveryStep::Send(1));
            }
            if len > dripped {
                steps.push(DeliveryStep::Send(len - dripped));
            }
            return ChunkPlan {
                steps,
                reset_after: false,
            };
        }
        if split && len >= 2 {
            // Boundary in 1..len so both halves are non-empty.
            let at = 1 + (self.rng.next_u32() as usize) % (len - 1);
            return ChunkPlan {
                steps: vec![
                    DeliveryStep::Send(at),
                    DeliveryStep::Pause(self.config.delay),
                    DeliveryStep::Send(len - at),
                ],
                reset_after: false,
            };
        }
        if delay {
            return ChunkPlan {
                steps: vec![
                    DeliveryStep::Pause(self.config.delay),
                    DeliveryStep::Send(len),
                ],
                reset_after: false,
            };
        }
        ChunkPlan::clean(len)
    }
}

/// Handle to a running chaos proxy. Dropping it without
/// [`ChaosProxy::shutdown`] leaves the threads to exit on their next
/// stop-flag poll.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    resets: Arc<AtomicU64>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections the proxy has reset so far (both directions).
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::SeqCst)
    }

    /// Stops the acceptor and every pump, then joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// How often pumps poll the stop flag while idle; also the granularity at
/// which a shutdown interrupts a quiet connection.
const PUMP_POLL: Duration = Duration::from_millis(10);

/// Starts a chaos proxy on an ephemeral localhost port, relaying every
/// accepted connection to `upstream` with `plan`'s faults applied.
pub fn start_chaos_proxy(upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let resets = Arc::new(AtomicU64::new(0));

    let acceptor = {
        let stop = Arc::clone(&stop);
        let resets = Arc::clone(&resets);
        thread::spawn(move || acceptor_loop(listener, upstream, plan, stop, resets))
    };

    Ok(ChaosProxy {
        addr,
        stop,
        resets,
        acceptor: Some(acceptor),
    })
}

fn acceptor_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
    resets: Arc<AtomicU64>,
) {
    let mut pumps: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut conn: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        pumps.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((downstream, _)) => {
                match TcpStream::connect(upstream) {
                    Ok(up) => {
                        spawn_pumps(&mut pumps, downstream, up, &plan, conn, &stop, &resets);
                    }
                    // Upstream down: the client sees an immediate close,
                    // which is itself a fault worth surviving.
                    Err(_) => drop(downstream),
                }
                conn += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for p in pumps {
        let _ = p.join();
    }
}

fn spawn_pumps(
    pumps: &mut Vec<thread::JoinHandle<()>>,
    downstream: TcpStream,
    upstream: TcpStream,
    plan: &FaultPlan,
    conn: u64,
    stop: &Arc<AtomicBool>,
    resets: &Arc<AtomicU64>,
) {
    let Ok(down_clone) = downstream.try_clone() else {
        return;
    };
    let Ok(up_clone) = upstream.try_clone() else {
        return;
    };
    let c2s = plan.session(conn * 2, plan.client_to_server.clone());
    let s2c = plan.session(conn * 2 + 1, plan.server_to_client.clone());
    {
        let stop = Arc::clone(stop);
        let resets = Arc::clone(resets);
        pumps.push(thread::spawn(move || {
            pump(downstream, up_clone, c2s, stop, resets)
        }));
    }
    {
        let stop = Arc::clone(stop);
        let resets = Arc::clone(resets);
        pumps.push(thread::spawn(move || {
            pump(upstream, down_clone, s2c, stop, resets)
        }));
    }
}

/// Forwards bytes from `src` to `dst`, applying the session's chunk plans.
/// Returns when either side closes, a planned reset fires, or the proxy
/// stops.
fn pump(
    src: TcpStream,
    mut dst: TcpStream,
    mut session: FaultSession,
    stop: Arc<AtomicBool>,
    resets: Arc<AtomicU64>,
) {
    let mut src = src;
    if src.set_read_timeout(Some(PUMP_POLL)).is_err() {
        return;
    }
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        };
        let plan = session.plan_chunk(n);
        let mut offset = 0usize;
        let mut failed = false;
        for step in &plan.steps {
            match *step {
                DeliveryStep::Pause(d) => sleep_interruptibly(d, &stop),
                DeliveryStep::Send(len) => {
                    let Some(bytes) = chunk.get(offset..offset + len) else {
                        failed = true;
                        break;
                    };
                    if dst.write_all(bytes).is_err() {
                        failed = true;
                        break;
                    }
                    offset += len;
                }
            }
        }
        if plan.reset_after {
            resets.fetch_add(1, Ordering::SeqCst);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            break;
        }
        if failed {
            break;
        }
    }
    // Propagate EOF so the peer's pump/reader unblocks promptly.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Sleeps `total` in stop-flag-sized slices so shutdown is never blocked
/// behind a long planned stall.
fn sleep_interruptibly(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    while !remaining.is_zero() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let slice = remaining.min(PUMP_POLL);
        thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_faults() -> FaultConfig {
        FaultConfig {
            reset_per_mille: 100,
            stall_per_mille: 100,
            stall: Duration::from_millis(50),
            drip_per_mille: 100,
            drip_step: Duration::from_millis(1),
            split_per_mille: 300,
            delay_per_mille: 300,
            delay: Duration::from_millis(2),
        }
    }

    #[test]
    fn plans_are_reproducible_from_the_seed() {
        let plan = FaultPlan::symmetric(42, all_faults());
        let mut a = plan.session(0, plan.client_to_server.clone());
        let mut b = plan.session(0, plan.client_to_server.clone());
        for len in [1usize, 8, 150, 4096, 3, 7, 1024] {
            assert_eq!(a.plan_chunk(len), b.plan_chunk(len));
        }
    }

    #[test]
    fn sessions_on_distinct_streams_diverge() {
        let plan = FaultPlan::symmetric(42, all_faults());
        let mut a = plan.session(0, plan.client_to_server.clone());
        let mut b = plan.session(1, plan.client_to_server.clone());
        let plans_a: Vec<ChunkPlan> = (0..64).map(|_| a.plan_chunk(256)).collect();
        let plans_b: Vec<ChunkPlan> = (0..64).map(|_| b.plan_chunk(256)).collect();
        assert_ne!(plans_a, plans_b, "independent keystreams must differ");
    }

    #[test]
    fn plans_cover_every_byte_or_reset() {
        let plan = FaultPlan::symmetric(7, all_faults());
        let mut s = plan.session(3, plan.client_to_server.clone());
        for len in 1usize..200 {
            let p = s.plan_chunk(len);
            let sent: usize = p
                .steps
                .iter()
                .map(|st| match st {
                    DeliveryStep::Send(n) => *n,
                    DeliveryStep::Pause(_) => 0,
                })
                .sum();
            if p.reset_after {
                assert!(sent <= len, "a reset may drop bytes, never invent them");
            } else {
                assert_eq!(sent, len, "non-reset plans must deliver every byte");
            }
        }
    }

    #[test]
    fn inactive_config_plans_clean_deliveries() {
        let plan = FaultPlan::symmetric(1, FaultConfig::none());
        assert!(!FaultConfig::none().is_active());
        assert!(all_faults().is_active());
        let mut s = plan.session(0, FaultConfig::none());
        for len in [0usize, 1, 4096] {
            assert_eq!(s.plan_chunk(len), ChunkPlan::clean(len));
        }
    }

    #[test]
    fn proxy_relays_transparently_with_no_faults() {
        // Echo upstream: whatever arrives goes straight back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = thread::spawn(move || {
            if let Ok((mut s, _)) = upstream.accept() {
                let mut buf = [0u8; 64];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    if s.write_all(buf.get(..n).unwrap_or_default()).is_err() {
                        break;
                    }
                }
            }
        });

        let proxy =
            start_chaos_proxy(upstream_addr, FaultPlan::symmetric(0, FaultConfig::none())).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client.set_nodelay(true).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"polygraph").unwrap();
        let mut back = [0u8; 9];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"polygraph");
        assert_eq!(proxy.resets(), 0);
        drop(client);
        proxy.shutdown();
        let _ = echo.join();
    }
}
