//! Rendering of lint results as human-readable text, machine-readable
//! JSON, or SARIF 2.1.0 for code-scanning UIs.
//!
//! The JSON report is committed to the repository as
//! `results/lint_baseline.json`, so it must be byte-stable across runs:
//! diagnostics are sorted, and no timestamps, host names, or absolute
//! paths appear anywhere. The JSON and SARIF are hand-assembled —
//! `xtask` takes no external dependencies, by design.

use crate::config::AllowEntry;
use crate::rules::{Diagnostic, RULE_CATALOG};
use std::fmt::Write as _;

/// Result of a full lint run, post-allowlist.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Diagnostics suppressed by `lint.toml` allow entries.
    pub suppressed: usize,
    /// Allow entries that matched nothing — usually stale after a fix.
    pub unused_allows: Vec<AllowEntry>,
}

impl LintReport {
    /// Whether the run should exit zero. Stale allow entries fail the
    /// run too (POLY-H004): an audited exception that matches nothing is
    /// an audit that outlived the code it excused.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.unused_allows.is_empty()
    }

    /// Human-readable rendering, one `file:line: [RULE] message` per
    /// diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                out,
                "error: stale allow entry (POLY-H004: {} in {}{}) — remove it from lint.toml",
                a.rule,
                a.file,
                a.line.map(|l| format!(":{l}")).unwrap_or_default()
            );
        }
        let _ = writeln!(
            out,
            "polygraph-lint: {} file(s) scanned, {} violation(s), {} suppressed by lint.toml",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed
        );
        out
    }

    /// Deterministic JSON rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.diagnostics.len());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                " \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} ",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            );
            out.push('}');
        }
        if self.diagnostics.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"unused_allows\": [");
        for (i, a) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                " \"rule\": {}, \"file\": {}",
                json_str(&a.rule),
                json_str(&a.file)
            );
            if let Some(line) = a.line {
                let _ = write!(out, ", \"line\": {line}");
            }
            out.push_str(" }");
        }
        if self.unused_allows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// SARIF 2.1.0 rendering for code-scanning UIs. One run, the full
    /// rule catalog up front, one `result` per surviving diagnostic —
    /// and one per stale allow entry (POLY-H004), anchored to
    /// `lint.toml` line 1 since the hand-rolled TOML reader does not
    /// track entry positions. Deterministic like the JSON rendering.
    pub fn render_sarif(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"polygraph-lint\",\n          \"rules\": [",
        );
        for (i, r) in RULE_CATALOG.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}",
                json_str(r.id),
                json_str(r.short)
            );
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        let mut first = true;
        let mut push_result =
            |out: &mut String, rule: &str, message: &str, uri: &str, line: u32| {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n        {{ \"ruleId\": {}, \"level\": \"error\", \"message\": {{ \"text\": \
                 {} }}, \"locations\": [ {{ \"physicalLocation\": {{ \"artifactLocation\": \
                 {{ \"uri\": {} }}, \"region\": {{ \"startLine\": {} }} }} }} ] }}",
                    json_str(rule),
                    json_str(message),
                    json_str(uri),
                    line
                );
            };
        for d in &self.diagnostics {
            push_result(&mut out, d.rule, &d.message, &d.file, d.line.max(1));
        }
        for a in &self.unused_allows {
            let message = format!(
                "stale allow entry: {} in {}{} matches no finding — remove it from lint.toml",
                a.rule,
                a.file,
                a.line.map(|l| format!(":{l}")).unwrap_or_default()
            );
            push_result(&mut out, "POLY-H004", &message, "lint.toml", 1);
        }
        if first {
            out.push_str("]\n");
        } else {
            out.push_str("\n      ]\n");
        }
        out.push_str("    }\n  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                rule: "POLY-P001",
                file: "crates/service/src/server.rs".into(),
                line: 42,
                message: "`unwrap()` in a panic-safety zone".into(),
            }],
            files_scanned: 7,
            suppressed: 1,
            unused_allows: Vec::new(),
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let text = sample().render_text();
        assert!(text.contains("crates/service/src/server.rs:42: [POLY-P001]"));
        assert!(text.contains("7 file(s) scanned, 1 violation(s), 1 suppressed"));
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let a = sample().render_json();
        let b = sample().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"violations\": 1"));
        assert!(a.contains("\"rule\": \"POLY-P001\""));
        assert!(!a.contains("timestamp"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let r = LintReport {
            diagnostics: Vec::new(),
            files_scanned: 0,
            suppressed: 0,
            unused_allows: Vec::new(),
        };
        let json = r.render_json();
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"unused_allows\": []"));
        assert!(r.is_clean());
    }

    #[test]
    fn stale_allows_fail_the_run_and_render_as_errors() {
        let r = LintReport {
            diagnostics: Vec::new(),
            files_scanned: 3,
            suppressed: 0,
            unused_allows: vec![AllowEntry {
                rule: "POLY-P001".into(),
                file: "gone.rs".into(),
                line: Some(9),
                reason: "stale".into(),
            }],
        };
        assert!(!r.is_clean(), "stale allows must exit nonzero");
        let text = r.render_text();
        assert!(text.contains("error: stale allow entry (POLY-H004: POLY-P001 in gone.rs:9)"));
    }

    #[test]
    fn sarif_is_stable_and_carries_rules_and_locations() {
        let a = sample().render_sarif();
        assert_eq!(a, sample().render_sarif());
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"name\": \"polygraph-lint\""));
        // Catalog: every rule is declared even when it did not fire.
        assert!(a.contains("\"id\": \"POLY-L001\""));
        assert!(a.contains("\"id\": \"POLY-H004\""));
        // The one finding is anchored to its file and line.
        assert!(a.contains("\"ruleId\": \"POLY-P001\""));
        assert!(a.contains("\"uri\": \"crates/service/src/server.rs\""));
        assert!(a.contains("\"startLine\": 42"));
        assert!(!a.contains("timestamp"));
    }

    #[test]
    fn sarif_reports_stale_allows_against_lint_toml() {
        let mut r = sample();
        r.diagnostics.clear();
        r.unused_allows.push(AllowEntry {
            rule: "POLY-D001".into(),
            file: "gone.rs".into(),
            line: None,
            reason: "stale".into(),
        });
        let sarif = r.render_sarif();
        assert!(sarif.contains("\"ruleId\": \"POLY-H004\""));
        assert!(sarif.contains("\"uri\": \"lint.toml\""));
    }
}
