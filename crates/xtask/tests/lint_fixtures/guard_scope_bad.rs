//! Bad fixture: lock guards held across blocking calls — directly
//! (socket flush, pool submit-and-wait, detector assess) and one
//! propagated call level through `nap_briefly`.
pub fn flush_under_guard(state: &RwLock<Vec<u8>>, sock: &mut TcpStream) {
    let snapshot = state.read();
    sock.write_all(&snapshot).ok();
}

pub fn submit_under_guard(state: &RwLock<Vec<u8>>, pool: &ThreadPool) {
    let work = 4;
    let snapshot = state.read();
    pool.run(work, |i| snapshot.first().copied());
}

pub fn assess_under_guard(slot: &RwLock<Detector>, values: &[u8]) {
    let detector = slot.read();
    detector.assess(values);
}

pub fn propagated_block(state: &RwLock<Vec<u8>>) {
    let snapshot = state.read();
    nap_briefly(snapshot.len());
}

pub fn nap_briefly(rounds: usize) {
    let tick = rounds;
    thread::sleep(tick);
}
