//! Algorithm 1: the session `risk_factor`.
//!
//! Given a session's claimed user-agent and the user-agents resident in
//! the cluster its fingerprint was assigned to, the risk factor is the
//! minimum "distance" from the claim to any resident:
//!
//! * different vendor → distance 20 (the maximum);
//! * same vendor → `⌊|Δversion| / 4⌋` — the divisor 4 was chosen
//!   empirically from the width of the version runs in Table 3, so that a
//!   fingerprint landing one cluster over (an update inconsistency, not
//!   fraud) scores 0 or 1 rather than tripping the alarm.

use browser_engine::UserAgent;

/// The maximum (vendor-mismatch) distance of Algorithm 1.
pub const MAX_RISK: u32 = 20;

/// The version-difference divisor of Algorithm 1.
pub const VERSION_DIVISOR: u32 = 4;

/// Computes Algorithm 1.
///
/// ```
/// use browser_engine::{UserAgent, Vendor};
/// use polygraph_core::risk_factor;
///
/// // The session claims Chrome 59 but its fingerprint landed in the
/// // cluster holding Chrome/Edge 102-109:
/// let residents: Vec<UserAgent> =
///     (102..=109).map(|v| UserAgent::new(Vendor::Chrome, v)).collect();
/// assert_eq!(risk_factor(UserAgent::new(Vendor::Chrome, 59), &residents), 10);
/// // A vendor mismatch is maximal:
/// assert_eq!(risk_factor(UserAgent::new(Vendor::Firefox, 105), &residents), 20);
/// // The claim sitting in its own cluster scores zero:
/// assert_eq!(risk_factor(UserAgent::new(Vendor::Chrome, 105), &residents), 0);
/// ```
///
/// Returns [`MAX_RISK`] when the predicted cluster holds no user-agents at
/// all (the paper's k=11 model has two such clusters, 7 and 8, which catch
/// sparse perturbation mass) — an empty neighbourhood is maximally
/// suspicious.
pub fn risk_factor(claimed: UserAgent, cluster_user_agents: &[UserAgent]) -> u32 {
    let mut risk = MAX_RISK;
    for ua in cluster_user_agents {
        let distance = if claimed.vendor != ua.vendor {
            MAX_RISK
        } else {
            claimed.version.abs_diff(ua.version) / VERSION_DIVISOR
        };
        risk = risk.min(distance);
    }
    risk
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;
    use proptest::prelude::*;

    fn c(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Chrome, v)
    }
    fn f(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Firefox, v)
    }

    #[test]
    fn claim_resident_in_cluster_scores_zero() {
        assert_eq!(risk_factor(c(110), &[c(110), c(111)]), 0);
    }

    #[test]
    fn near_miss_same_vendor_scores_zero() {
        // floor(|110-109|/4) = 0 — adjacent-release mismatches are cheap,
        // by design (§6.5: "reduces the likelihood of false negatives...
        // similar vendor but a different release").
        assert_eq!(risk_factor(c(110), &[c(109)]), 0);
        assert_eq!(risk_factor(c(110), &[c(107)]), 0);
        assert_eq!(risk_factor(c(110), &[c(106)]), 1);
    }

    #[test]
    fn vendor_mismatch_is_max() {
        assert_eq!(risk_factor(c(110), &[f(110)]), MAX_RISK);
    }

    #[test]
    fn minimum_over_cluster_wins() {
        // A Firefox resident (20) and a Chrome 70 resident (10): min wins.
        assert_eq!(risk_factor(c(110), &[f(110), c(70)]), 10);
    }

    #[test]
    fn empty_cluster_is_max_risk() {
        assert_eq!(risk_factor(c(110), &[]), MAX_RISK);
    }

    #[test]
    fn paper_example_old_chrome_claim_vs_modern_cluster() {
        // Claimed Chrome 59 landing in cluster 5 (Chrome/Edge 102-109):
        // floor(|59-102|/4) = 10 — the magnitude of Table 5's averages.
        let cluster5: Vec<UserAgent> = (102..=109)
            .map(c)
            .chain((102..=109).map(|v| UserAgent::new(Vendor::Edge, v)))
            .collect();
        assert_eq!(risk_factor(c(59), &cluster5), 10);
    }

    proptest! {
        #[test]
        fn prop_risk_bounded_and_zero_on_self(
            v in 46u32..130,
            others in proptest::collection::vec(46u32..130, 0..20),
        ) {
            let cluster: Vec<UserAgent> = others.iter().map(|&x| c(x)).collect();
            let r = risk_factor(c(v), &cluster);
            prop_assert!(r <= MAX_RISK);
            let mut with_self = cluster;
            with_self.push(c(v));
            prop_assert_eq!(risk_factor(c(v), &with_self), 0);
        }

        #[test]
        fn prop_adding_residents_never_raises_risk(
            v in 46u32..130,
            a in 46u32..130,
            b in 46u32..130,
        ) {
            let r1 = risk_factor(c(v), &[c(a)]);
            let r2 = risk_factor(c(v), &[c(a), c(b)]);
            prop_assert!(r2 <= r1);
        }
    }
}
