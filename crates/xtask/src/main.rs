//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `lint [--format text|json|sarif] [--root PATH] [--config PATH]
//!   [--self-check]` — run the polygraph-lint static-analysis pass
//!   (`--json` stays as an alias for `--format json`). Exit 0 when
//!   clean, 1 when violations or stale allow entries survive, 2 on
//!   usage or I/O errors. `--self-check` instead lints the linter's own
//!   fixture corpus and verifies every rule still fires where expected.
//! * `bench-check [--current PATH] [--baseline PATH]
//!   [--max-regress-pct N] [--min-speedup X] [--fleet PATH]
//!   [--fleet-only] [--min-fleet-scaling X] [--retrain PATH]
//!   [--retrain-only] [--min-retrain-speedup X]
//!   [--min-shadow-agreement X] [--root PATH]` — the
//!   performance gate: compare `results/BENCH_serving.json` (freshly
//!   emitted by `bench_serving --smoke`) against the committed
//!   `results/bench_baseline.json`. When `results/BENCH_fleet.json`
//!   exists (or `--fleet` names one), the fleet gate runs too: merged
//!   verdict identity, monotonic node-count scaling, and the chaos
//!   leg's invariants. Likewise `results/BENCH_retrain.json` (or
//!   `--retrain`) adds the streaming-retrain gate: mini-batch refit
//!   speedup, shadow-leg agreement, and promoted-verdict byte identity.
//!   `--fleet-only` / `--retrain-only` skip the serving comparison —
//!   the CI fleet and retrain jobs emit only their own artifact. Exit 0
//!   when within thresholds, 1 on a regression, 2 on usage or I/O
//!   errors.
//!
//! This is a binary target, so the console belongs to it (POLY-H002
//! exempts `main.rs`); everything else lives in the `xtask` library so
//! the integration tests can drive it in-process.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{BenchCheckConfig, LintConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("bench-check") => bench_check_command(&args[1..]),
        Some(other) => {
            let _ = writeln!(std::io::stderr(), "unknown subcommand {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            let _ = writeln!(std::io::stderr(), "{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--format text|json|sarif] [--root PATH] \
                     [--config PATH] [--self-check]\n       \
                     cargo xtask bench-check [--current PATH] [--baseline PATH] \
                     [--max-regress-pct N] [--min-speedup X] [--fleet PATH] [--fleet-only] \
                     [--min-fleet-scaling X] [--retrain PATH] [--retrain-only] \
                     [--min-retrain-speedup X] [--min-shadow-agreement X] [--root PATH]";

fn bench_check_command(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut fleet: Option<PathBuf> = None;
    let mut fleet_only = false;
    let mut retrain: Option<PathBuf> = None;
    let mut retrain_only = false;
    let mut config = BenchCheckConfig::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args.get(i).map(String::as_str) {
            Some("--root") if take_value(i).is_some() => {
                root = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--current") if take_value(i).is_some() => {
                current = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--baseline") if take_value(i).is_some() => {
                baseline = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--max-regress-pct") if take_value(i).is_some() => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => config.max_regress_pct = v,
                    None => {
                        let _ = writeln!(std::io::stderr(), "invalid --max-regress-pct\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            Some("--min-speedup") if take_value(i).is_some() => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => config.min_speedup = v,
                    None => {
                        let _ = writeln!(std::io::stderr(), "invalid --min-speedup\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            Some("--fleet") if take_value(i).is_some() => {
                fleet = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--fleet-only") => {
                fleet_only = true;
                i += 1;
            }
            Some("--min-fleet-scaling") if take_value(i).is_some() => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => config.min_fleet_scaling = v,
                    None => {
                        let _ = writeln!(std::io::stderr(), "invalid --min-fleet-scaling\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            Some("--retrain") if take_value(i).is_some() => {
                retrain = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--retrain-only") => {
                retrain_only = true;
                i += 1;
            }
            Some("--min-retrain-speedup") if take_value(i).is_some() => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => config.min_retrain_speedup = v,
                    None => {
                        let _ =
                            writeln!(std::io::stderr(), "invalid --min-retrain-speedup\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            Some("--min-shadow-agreement") if take_value(i).is_some() => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => config.min_shadow_agreement = v,
                    None => {
                        let _ =
                            writeln!(std::io::stderr(), "invalid --min-shadow-agreement\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            Some(other) => {
                let _ = writeln!(std::io::stderr(), "unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            None => break,
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "error: {e}");
            return ExitCode::from(2);
        }
    };
    let current = current.unwrap_or_else(|| root.join("results/BENCH_serving.json"));
    let baseline = baseline.unwrap_or_else(|| root.join("results/bench_baseline.json"));
    let fleet_path = fleet.unwrap_or_else(|| root.join("results/BENCH_fleet.json"));
    let retrain_path = retrain.unwrap_or_else(|| root.join("results/BENCH_retrain.json"));

    let mut pass = true;
    if !fleet_only && !retrain_only {
        match xtask::bench::check_files(&current, &baseline, config) {
            Ok(report) => {
                let _ = write!(std::io::stdout(), "{}", report.text);
                pass &= report.pass;
            }
            Err(e) => {
                let _ = writeln!(std::io::stderr(), "error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Each artifact gate runs whenever its artifact is around (and
    // always under its `--*-only` flag, where a missing artifact is an
    // error, not a silent pass). An `--*-only` flag narrows the run to
    // that single gate.
    if fleet_only || (!retrain_only && fleet_path.exists()) {
        match xtask::bench::check_fleet_file(&fleet_path, config) {
            Ok(report) => {
                let _ = write!(std::io::stdout(), "{}", report.text);
                pass &= report.pass;
            }
            Err(e) => {
                let _ = writeln!(std::io::stderr(), "error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if retrain_only || (!fleet_only && retrain_path.exists()) {
        match xtask::bench::check_retrain_file(&retrain_path, config) {
            Ok(report) => {
                let _ = write!(std::io::stdout(), "{}", report.text);
                pass &= report.pass;
            }
            Err(e) => {
                let _ = writeln!(std::io::stderr(), "error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum LintFormat {
    Text,
    Json,
    Sarif,
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut format = LintFormat::Text;
    let mut self_check = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args.get(i).map(String::as_str) {
            Some("--json") => {
                format = LintFormat::Json;
                i += 1;
            }
            Some("--format") if i + 1 < args.len() => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("text") => LintFormat::Text,
                    Some("json") => LintFormat::Json,
                    Some("sarif") => LintFormat::Sarif,
                    other => {
                        let _ = writeln!(
                            std::io::stderr(),
                            "unknown --format {other:?} (expected text, json, or sarif)\n{USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            Some("--self-check") => {
                self_check = true;
                i += 1;
            }
            Some("--root") if i + 1 < args.len() => {
                root = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--config") if i + 1 < args.len() => {
                config_path = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some(other) => {
                let _ = writeln!(std::io::stderr(), "unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            None => break,
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "error: {e}");
            return ExitCode::from(2);
        }
    };

    if self_check {
        let fixtures = root.join("crates/xtask/tests/lint_fixtures");
        return match xtask::self_check(&fixtures) {
            Ok(()) => {
                let _ = writeln!(
                    std::io::stdout(),
                    "polygraph-lint self-check: every rule fires in its fixture, good twins \
                     are clean, stale allows fail"
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                let _ = writeln!(std::io::stderr(), "error: {e}");
                ExitCode::from(1)
            }
        };
    }

    let mut config = LintConfig::default();
    let config_file = config_path.unwrap_or_else(|| root.join("lint.toml"));
    match std::fs::read_to_string(&config_file) {
        Ok(text) => {
            if let Err(e) = config.apply_toml(&text) {
                let _ = writeln!(std::io::stderr(), "error: {e}");
                return ExitCode::from(2);
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            let _ = writeln!(
                std::io::stderr(),
                "error: failed to read {}: {e}",
                config_file.display()
            );
            return ExitCode::from(2);
        }
    }

    let pool = polygraph_ml::pool::ThreadPool::with_default_parallelism();
    let report = match xtask::lint_workspace_with_pool(&root, &config, &pool) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "error: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        LintFormat::Text => report.render_text(),
        LintFormat::Json => report.render_json(),
        LintFormat::Sarif => report.render_sarif(),
    };
    let _ = write!(std::io::stdout(), "{rendered}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml found above {}",
                    start.display()
                ))
            }
        }
    }
}
