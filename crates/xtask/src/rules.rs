//! The lint rules.
//!
//! Four rule families, matching the invariants the pipeline depends on:
//!
//! | Code      | Zone            | Forbids                                         |
//! |-----------|-----------------|-------------------------------------------------|
//! | POLY-D001 | determinism     | hash-ordered collections (`HashMap`/`HashSet`)  |
//! | POLY-D002 | determinism     | wall-clock / OS entropy (`SystemTime`, `Instant::now`, `thread_rng`, `from_entropy`) |
//! | POLY-D003 | determinism     | non-ChaCha RNG types (`StdRng`, `SmallRng`, …)  |
//! | POLY-D004 | determinism, key-determinism | seeded std hashers (`RandomState`, `DefaultHasher`) |
//! | POLY-P001 | panic-safety    | `unwrap(`                                       |
//! | POLY-P002 | panic-safety    | `expect(`                                       |
//! | POLY-P003 | panic-safety    | `panic!` / `todo!` / `unimplemented!`           |
//! | POLY-P004 | panic-safety    | slice/array indexing `expr[…]`                  |
//! | POLY-H001 | everywhere      | `unsafe`                                        |
//! | POLY-H002 | library sources | `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` |
//! | POLY-H003 | library sources | `pub fn x_with_pool` without a delegating serial twin `fn x` |
//! | POLY-H004 | lint.toml       | `[[allow]]` entries that match no finding (stale audits) |
//! | POLY-L001 | concurrency     | cycles in the aggregated lock-order graph       |
//! | POLY-L002 | concurrency     | lock guards held across blocking calls          |
//! | POLY-L003 | concurrency     | `Ordering::Relaxed` without an audited `[[allow]]` |
//!
//! The POLY-L rules run on the parser tier (see [`crate::parser`] and
//! [`crate::concurrency`]): L003 is per-file and dispatched here; L001
//! and L002 need zone-wide call propagation, so [`crate::lint_workspace`]
//! runs them after every file is summarized. POLY-H004 is synthesized by
//! the report from the allowlist outcome, not from source tokens.
//!
//! Zone rules skip `#[cfg(test)]` regions: tests may unwrap and may use
//! hash sets to assert uniqueness. POLY-H001 applies to test code too —
//! `unsafe` is never fine without an audit.

use crate::lexer::{Token, TokenKind};

/// One finding, pre-allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `POLY-P001`.
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    pub determinism: bool,
    /// Key-determinism zone (the verdict cache and its service callers):
    /// only POLY-D004 applies — cache keys must come from a fixed hasher
    /// so replays and fixtures hash identically in every process.
    pub key_determinism: bool,
    pub panic_safety: bool,
    /// Library source (not a binary target, not tests/, not examples/):
    /// subject to the hygiene rules.
    pub library: bool,
    /// Concurrency zone (the sharded cache, the service crate, the
    /// thread pool): subject to the POLY-L rules.
    pub concurrency: bool,
}

/// One catalog row: rule code plus the short description rendered into
/// reports (SARIF requires the full rule table up front).
pub struct RuleInfo {
    pub id: &'static str,
    pub short: &'static str,
}

/// Every rule the linter can emit, in code order. Keep in sync with the
/// table in the module docs; `--self-check` cross-checks the scan rules
/// against the fixtures.
pub const RULE_CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "POLY-D001",
        short: "hash-ordered collection in a determinism zone",
    },
    RuleInfo {
        id: "POLY-D002",
        short: "wall-clock or OS-entropy input in a determinism zone",
    },
    RuleInfo {
        id: "POLY-D003",
        short: "non-ChaCha RNG in a determinism zone",
    },
    RuleInfo {
        id: "POLY-D004",
        short: "per-process-seeded std hasher in a key-determinism zone",
    },
    RuleInfo {
        id: "POLY-P001",
        short: "unwrap() in a panic-safety zone",
    },
    RuleInfo {
        id: "POLY-P002",
        short: "expect(…) in a panic-safety zone",
    },
    RuleInfo {
        id: "POLY-P003",
        short: "panicking macro in a panic-safety zone",
    },
    RuleInfo {
        id: "POLY-P004",
        short: "slice/array indexing in a panic-safety zone",
    },
    RuleInfo {
        id: "POLY-H001",
        short: "unsafe outside the audited allowlist",
    },
    RuleInfo {
        id: "POLY-H002",
        short: "console print macro in library code",
    },
    RuleInfo {
        id: "POLY-H003",
        short: "pooled function without a delegating serial twin",
    },
    RuleInfo {
        id: "POLY-H004",
        short: "stale [[allow]] entry matching no finding",
    },
    RuleInfo {
        id: "POLY-L001",
        short: "lock-order cycle across the concurrency zone",
    },
    RuleInfo {
        id: "POLY-L002",
        short: "lock guard held across a blocking call",
    },
    RuleInfo {
        id: "POLY-L003",
        short: "Ordering::Relaxed in the concurrency zone without an audit",
    },
];

/// Runs every applicable rule over one file's token stream.
pub fn check_file(rel_path: &str, tokens: &[Token], class: FileClass) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if class.determinism {
        check_hash_collections(rel_path, tokens, &mut out);
        check_wall_clock_entropy(rel_path, tokens, &mut out);
        check_non_chacha_rng(rel_path, tokens, &mut out);
    }
    if class.determinism || class.key_determinism {
        check_random_hashers(rel_path, tokens, &mut out);
    }
    if class.panic_safety {
        check_unwrap_expect(rel_path, tokens, &mut out);
        check_panic_macros(rel_path, tokens, &mut out);
        check_indexing(rel_path, tokens, &mut out);
    }
    check_unsafe(rel_path, tokens, &mut out);
    if class.library {
        check_print_macros(rel_path, tokens, &mut out);
        check_pool_twins(rel_path, tokens, &mut out);
    }
    if class.concurrency {
        crate::concurrency::check_relaxed_orderings(rel_path, tokens, &mut out);
    }
    out
}

const HASH_COLLECTIONS: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

fn check_hash_collections(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens.iter().filter(|t| !t.in_test) {
        if let Some(id) = t.ident() {
            if HASH_COLLECTIONS.contains(&id) {
                out.push(Diagnostic {
                    rule: "POLY-D001",
                    file: path.into(),
                    line: t.line,
                    message: format!(
                        "`{id}` in a determinism zone: iteration order varies with the \
                         per-process hash seed, which breaks bit-identical retraining; \
                         use BTreeMap/BTreeSet or drain through sorted keys"
                    ),
                });
            }
        }
    }
}

fn check_wall_clock_entropy(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let flagged = match id {
            "SystemTime" | "thread_rng" | "from_entropy" => true,
            // `Instant` alone can name a type in a signature; only the
            // `Instant::now` call observes the wall clock.
            "Instant" => {
                live.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && live.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && live.get(i + 3).is_some_and(|t| t.is_ident("now"))
            }
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                rule: "POLY-D002",
                file: path.into(),
                line: t.line,
                message: format!(
                    "`{id}` in a determinism zone: wall-clock or OS-entropy input makes \
                     training runs unrepeatable; thread seeds and simulated dates through \
                     the config instead"
                ),
            });
        }
    }
}

const NON_CHACHA_RNGS: &[&str] = &["StdRng", "SmallRng", "ThreadRng", "OsRng", "EntropyRng"];

fn check_non_chacha_rng(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens.iter().filter(|t| !t.in_test) {
        if let Some(id) = t.ident() {
            if NON_CHACHA_RNGS.contains(&id) {
                out.push(Diagnostic {
                    rule: "POLY-D003",
                    file: path.into(),
                    line: t.line,
                    message: format!(
                        "`{id}` in a determinism zone: only ChaCha RNGs are stable across \
                         platforms and rand versions; construct ChaCha8Rng/ChaCha20Rng \
                         from an explicit seed"
                    ),
                });
            }
        }
    }
}

const RANDOM_HASHERS: &[&str] = &["RandomState", "DefaultHasher"];

fn check_random_hashers(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens.iter().filter(|t| !t.in_test) {
        if let Some(id) = t.ident() {
            if RANDOM_HASHERS.contains(&id) {
                out.push(Diagnostic {
                    rule: "POLY-D004",
                    file: path.into(),
                    line: t.line,
                    message: format!(
                        "`{id}` in a key-determinism zone: std hashers seed per process, so \
                         cache keys and replays would not reproduce across runs; hash with \
                         the fixed fingerprint::wire::fnv1a64 (or key a BTreeMap) instead"
                    ),
                });
            }
        }
    }
}

fn check_unwrap_expect(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !live.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        match id {
            "unwrap" => out.push(Diagnostic {
                rule: "POLY-P001",
                file: path.into(),
                line: t.line,
                message: "`unwrap()` in a panic-safety zone: the serve path must answer \
                          Malformed, never unwind; propagate with `?` or match"
                    .into(),
            }),
            "expect" => out.push(Diagnostic {
                rule: "POLY-P002",
                file: path.into(),
                line: t.line,
                message: "`expect(…)` in a panic-safety zone: the serve path must answer \
                          Malformed, never unwind; propagate with `?` or match"
                    .into(),
            }),
            _ => {}
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn check_panic_macros(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if PANIC_MACROS.contains(&id) && live.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(Diagnostic {
                rule: "POLY-P003",
                file: path.into(),
                line: t.line,
                message: format!(
                    "`{id}!` in a panic-safety zone: a panicking worker drops its \
                     connection and every queued frame on it; return a typed error"
                ),
            });
        }
    }
}

/// Keywords that may legitimately precede a `[` without forming an index
/// expression (`&mut [u8]`, `for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

fn check_indexing(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let indexes_into = match &live[i - 1].kind {
            TokenKind::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
            TokenKind::Punct(']') | TokenKind::Punct(')') => true,
            _ => false,
        };
        if indexes_into {
            out.push(Diagnostic {
                rule: "POLY-P004",
                file: path.into(),
                line: t.line,
                message: "slice/array indexing in a panic-safety zone: `expr[…]` panics on \
                          out-of-range input; use `.get(…)`, destructuring, or iterators"
                    .into(),
            });
        }
    }
}

fn check_unsafe(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        if t.is_ident("unsafe") {
            out.push(Diagnostic {
                rule: "POLY-H001",
                file: path.into(),
                line: t.line,
                message: "`unsafe` outside the audited allowlist: every crate here builds \
                          with #![forbid(unsafe_code)]; allowlist in lint.toml only with a \
                          written audit"
                    .into(),
            });
        }
    }
}

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn check_print_macros(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if PRINT_MACROS.contains(&id) && live.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(Diagnostic {
                rule: "POLY-H002",
                file: path.into(),
                line: t.line,
                message: format!(
                    "`{id}!` in a library crate: console output belongs to binaries or an \
                     explicit Write sink (see polygraph-bench), not library code"
                ),
            });
        }
    }
}

/// Enforces the PR-1 contract: every `pub fn x_with_pool` keeps a serial
/// twin `fn x` in the same file, and the twin delegates (there is at least
/// one call of `x_with_pool` that is not its declaration), so the serial
/// and pooled paths cannot drift apart.
fn check_pool_twins(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let live: Vec<&Token> = tokens.iter().filter(|t| !t.in_test).collect();
    for (i, t) in live.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let Some(base) = id.strip_suffix("_with_pool") else {
            continue;
        };
        if base.is_empty() {
            continue;
        }
        let is_decl = i > 0 && live[i - 1].is_ident("fn");
        if !is_decl {
            continue;
        }
        let is_pub = i >= 2 && live[i - 2].is_ident("pub") || i >= 3 && live[i - 3].is_ident("pub"); // pub(crate) fn …
        if !is_pub {
            continue;
        }
        let twin_declared = live
            .windows(2)
            .any(|w| w[0].is_ident("fn") && w[1].is_ident(base));
        let delegated = live
            .iter()
            .enumerate()
            .any(|(j, u)| u.is_ident(id) && (j == 0 || !live[j - 1].is_ident("fn")));
        if !twin_declared {
            out.push(Diagnostic {
                rule: "POLY-H003",
                file: path.into(),
                line: t.line,
                message: format!(
                    "`pub fn {id}` has no serial twin: declare `pub fn {base}` in the same \
                     file delegating to `{id}(…, &ThreadPool::serial())`"
                ),
            });
        } else if !delegated {
            out.push(Diagnostic {
                rule: "POLY-H003",
                file: path.into(),
                line: t.line,
                message: format!(
                    "`{id}` is declared but never called in this file: the serial twin \
                     `{base}` must delegate to it so the two paths cannot drift"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(src: &str, class: FileClass) -> Vec<Diagnostic> {
        check_file("test.rs", &tokenize(src), class)
    }

    const DET: FileClass = FileClass {
        determinism: true,
        key_determinism: false,
        panic_safety: false,
        library: false,
        concurrency: false,
    };
    const KEYS: FileClass = FileClass {
        determinism: false,
        key_determinism: true,
        panic_safety: false,
        library: false,
        concurrency: false,
    };
    const PANIC: FileClass = FileClass {
        determinism: false,
        key_determinism: false,
        panic_safety: true,
        library: false,
        concurrency: false,
    };
    const LIB: FileClass = FileClass {
        determinism: false,
        key_determinism: false,
        panic_safety: false,
        library: true,
        concurrency: false,
    };

    #[test]
    fn hash_map_flagged_in_determinism_zone_only() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run(src, DET).len(), 1);
        assert_eq!(run(src, DET)[0].rule, "POLY-D001");
        assert!(run(src, PANIC).is_empty());
    }

    #[test]
    fn random_hashers_flagged_in_key_determinism_and_determinism_zones() {
        let src = "use std::collections::hash_map::RandomState;\nlet mut h = DefaultHasher::new();";
        let d = run(src, KEYS);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "POLY-D004"));
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
        // The wider determinism zone forbids them too …
        assert_eq!(
            run(src, DET)
                .iter()
                .filter(|d| d.rule == "POLY-D004")
                .count(),
            2
        );
        // … but the key-determinism zone applies no other D rules.
        assert!(run("use std::collections::HashMap;", KEYS).is_empty());
        assert!(run(src, PANIC).is_empty());
    }

    #[test]
    fn instant_now_flagged_but_instant_type_is_not() {
        assert_eq!(run("let t = Instant::now();", DET).len(), 1);
        assert!(run("fn f(deadline: Instant) {}", DET).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        assert!(run("x.unwrap_or_else(|| 3);", PANIC).is_empty());
        assert_eq!(run("x.unwrap();", PANIC).len(), 1);
    }

    #[test]
    fn expected_cluster_field_is_not_expect() {
        assert!(run("let c = v.expected_cluster;", PANIC).is_empty());
        assert_eq!(run("v.expect(\"boom\");", PANIC).len(), 1);
    }

    #[test]
    fn indexing_flags_expressions_not_types() {
        assert_eq!(run("let x = data[0];", PANIC).len(), 1);
        assert_eq!(run("let y = calls()[1];", PANIC).len(), 1);
        assert!(run("let b: [u8; 16] = make();", PANIC).is_empty());
        assert!(run("fn f(x: &mut [u8]) {}", PANIC).is_empty());
        assert!(run("let v = vec![1, 2];", PANIC).is_empty());
        assert!(run("#[derive(Debug)] struct S;", PANIC).is_empty());
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        let src = "let [a, b, rest @ ..] = arr else { return; };";
        assert!(run(src, PANIC).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt_from_zone_rules() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); let h = HashMap::new(); } }";
        assert!(run(src, PANIC).is_empty());
        assert!(run(src, DET).is_empty());
    }

    #[test]
    fn unsafe_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { fn t() { unsafe { core(); } } }";
        let d = run(src, PANIC);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "POLY-H001");
    }

    #[test]
    fn print_macros_flagged_in_library_code() {
        assert_eq!(run("println!(\"x\");", LIB).len(), 1);
        assert!(run("writeln!(sink, \"x\");", LIB).is_empty());
        // Test code may print while debugging.
        assert!(run("#[cfg(test)]\nmod t { fn f() { println!(\"x\"); } }", LIB).is_empty());
    }

    #[test]
    fn pool_twin_contract() {
        let good = "pub fn fit(x: u8) { fit_with_pool(x) }\npub fn fit_with_pool(x: u8) {}";
        assert!(run(good, LIB).is_empty());
        let missing_twin = "pub fn fit_with_pool(x: u8) {}";
        let d = run(missing_twin, LIB);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "POLY-H003");
        let non_delegating = "pub fn fit(x: u8) {}\npub fn fit_with_pool(x: u8) {}";
        assert_eq!(run(non_delegating, LIB).len(), 1);
    }

    #[test]
    fn diagnostics_carry_lines() {
        let src = "fn a() {}\nfn b() { x.unwrap(); }";
        let d = run(src, PANIC);
        assert_eq!(d[0].line, 2);
    }
}
