//! The fingerprint collection service: a framed TCP endpoint receiving the
//! ≤1 KB submissions of the deployed in-page script.
//!
//! FinOrg's constraint (§3) is an end-to-end budget — small payload, fast
//! service — so the service is deliberately minimal: length-prefixed
//! frames, strict validation at the parser boundary, one status byte back.
//! Fault injection (smoltcp-style `drop`/`corrupt` chances) lives in the
//! client so robustness tests can exercise the server's error paths.
//!
//! ```text
//! client                                server
//!   | -- u16 LE length, frame bytes --> |  decode, record
//!   | <------- 1 status byte ---------- |  0 = accepted, 1 = rejected
//! ```

use fingerprint::{decode_submission, encode_submission, Submission, MAX_SUBMISSION_BYTES};
use parking_lot::Mutex;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Status byte for an accepted submission.
pub const STATUS_ACCEPTED: u8 = 0;
/// Status byte for a rejected (malformed) submission.
pub const STATUS_REJECTED: u8 = 1;

/// Aggregate counters of a running collector.
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Submissions decoded and recorded.
    pub accepted: AtomicUsize,
    /// Frames rejected by the wire parser.
    pub rejected: AtomicUsize,
    /// Connections served.
    pub connections: AtomicUsize,
}

/// Handle to a running collection server. Dropping the handle without
/// calling [`CollectorHandle::shutdown`] leaves the acceptor thread
/// running until process exit; call `shutdown` for an orderly stop.
pub struct CollectorHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    submissions: Arc<Mutex<Vec<Submission>>>,
    stats: Arc<CollectorStats>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl CollectorHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of everything received so far.
    pub fn submissions(&self) -> Vec<Submission> {
        self.submissions.lock().clone()
    }

    /// Shared counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Stops accepting, joins the acceptor thread, and returns everything
    /// received.
    pub fn shutdown(mut self) -> Vec<Submission> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let subs = self.submissions.lock().clone();
        subs
    }
}

/// Starts a collection server on `addr` (use `127.0.0.1:0` for an
/// ephemeral port).
pub fn start_collector(addr: &str) -> io::Result<CollectorHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let submissions = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(CollectorStats::default());

    let acceptor = {
        let stop = Arc::clone(&stop);
        let submissions = Arc::clone(&submissions);
        let stats = Arc::clone(&stats);
        thread::spawn(move || {
            let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let submissions = Arc::clone(&submissions);
                        let stats = Arc::clone(&stats);
                        workers.push(thread::spawn(move || {
                            let _ = serve_connection(stream, &submissions, &stats);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        })
    };

    Ok(CollectorHandle {
        addr: local,
        stop,
        submissions,
        stats,
        acceptor: Some(acceptor),
    })
}

fn serve_connection(
    mut stream: TcpStream,
    submissions: &Mutex<Vec<Submission>>,
    stats: &CollectorStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // Frames are tiny and latency-bound: disable Nagle so the status byte
    // goes straight out.
    stream.set_nodelay(true)?;
    loop {
        let mut len_buf = [0u8; 2];
        match stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            // Clean EOF between frames ends the connection.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let len = u16::from_le_bytes(len_buf) as usize;
        if len > MAX_SUBMISSION_BYTES {
            // Oversized frame: reject and drop the connection — we cannot
            // resynchronise after refusing to read the body.
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(&[STATUS_REJECTED]);
            return Ok(());
        }
        let mut frame = vec![0u8; len];
        stream.read_exact(&mut frame)?;
        match decode_submission(&frame) {
            Ok(sub) => {
                submissions.lock().push(sub);
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                stream.write_all(&[STATUS_ACCEPTED])?;
            }
            Err(_) => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                stream.write_all(&[STATUS_REJECTED])?;
            }
        }
    }
}

/// Client-side fault injection, in the spirit of smoltcp's example
/// harnesses: each submission may be silently dropped or have one byte
/// corrupted before transmission.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability of dropping a submission entirely.
    pub drop_chance: f64,
    /// Probability of corrupting one byte of the frame.
    pub corrupt_chance: f64,
}

/// Outcome of one client submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Server acknowledged the submission.
    Accepted,
    /// Server rejected the frame (e.g. it was corrupted in flight).
    Rejected,
    /// The fault injector dropped the frame before transmission.
    Dropped,
}

/// A collection client: the stand-in for the in-page script's uploader.
pub struct CollectorClient {
    stream: TcpStream,
    faults: FaultConfig,
    rng: ChaCha8Rng,
}

impl CollectorClient {
    /// Connects to a collector.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            faults: FaultConfig::default(),
            rng: ChaCha8Rng::seed_from_u64(0),
        })
    }

    /// Enables fault injection with a deterministic seed.
    pub fn with_faults(mut self, faults: FaultConfig, seed: u64) -> Self {
        self.faults = faults;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Encodes, (maybe) mangles, sends one submission and awaits the
    /// status byte.
    pub fn submit(&mut self, sub: &Submission) -> io::Result<SubmitOutcome> {
        let frame = encode_submission(sub)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if self.rng.gen::<f64>() < self.faults.drop_chance {
            return Ok(SubmitOutcome::Dropped);
        }
        let mut bytes = frame.to_vec();
        if self.rng.gen::<f64>() < self.faults.corrupt_chance {
            let idx = self.rng.gen_range(0..bytes.len());
            bytes[idx] ^= 0xA5;
        }
        let len = (bytes.len() as u16).to_le_bytes();
        self.stream.write_all(&len)?;
        self.stream.write_all(&bytes)?;
        let mut status = [0u8; 1];
        self.stream.read_exact(&mut status)?;
        Ok(if status[0] == STATUS_ACCEPTED {
            SubmitOutcome::Accepted
        } else {
            SubmitOutcome::Rejected
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{BrowserInstance, UserAgent, Vendor};
    use fingerprint::FeatureSet;

    fn sample_submission(seed: u8) -> Submission {
        let fs = FeatureSet::table8();
        let ua = UserAgent::new(Vendor::Chrome, 110 + seed as u32 % 4);
        let b = BrowserInstance::genuine(ua);
        Submission {
            session_id: [seed; 16],
            user_agent: ua.to_ua_string(),
            values: fs.extract(&b).values().to_vec(),
        }
    }

    #[test]
    fn submissions_round_trip_through_the_service() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let mut client = CollectorClient::connect(server.local_addr()).unwrap();
        for i in 0..10u8 {
            let outcome = client.submit(&sample_submission(i)).unwrap();
            assert_eq!(outcome, SubmitOutcome::Accepted);
        }
        drop(client);
        let received = server.shutdown();
        assert_eq!(received.len(), 10);
        assert_eq!(received[3].session_id, [3u8; 16]);
    }

    #[test]
    fn corrupted_frames_are_rejected_not_fatal() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let mut client = CollectorClient::connect(server.local_addr())
            .unwrap()
            .with_faults(
                FaultConfig {
                    drop_chance: 0.0,
                    corrupt_chance: 1.0,
                },
                7,
            );
        let mut rejected = 0;
        for i in 0..20u8 {
            match client.submit(&sample_submission(i)) {
                Ok(SubmitOutcome::Rejected) => rejected += 1,
                // A corrupted length field can desynchronise the stream;
                // magic/UA corruption is cleanly rejected.
                Ok(SubmitOutcome::Accepted) | Ok(SubmitOutcome::Dropped) => {}
                Err(_) => break,
            }
        }
        assert!(
            rejected >= 10,
            "most corrupted frames must be rejected, got {rejected}"
        );
        let stats_rejected = server.stats().rejected.load(Ordering::Relaxed);
        assert!(stats_rejected >= rejected);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn dropped_frames_never_reach_the_server() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let mut client = CollectorClient::connect(server.local_addr())
            .unwrap()
            .with_faults(
                FaultConfig {
                    drop_chance: 1.0,
                    corrupt_chance: 0.0,
                },
                7,
            );
        for i in 0..5u8 {
            assert_eq!(
                client.submit(&sample_submission(i)).unwrap(),
                SubmitOutcome::Dropped
            );
        }
        drop(client);
        let received = server.shutdown();
        assert!(received.is_empty());
    }

    #[test]
    fn multiple_concurrent_clients() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                thread::spawn(move || {
                    let mut client = CollectorClient::connect(addr).unwrap();
                    for i in 0..25u8 {
                        let outcome = client.submit(&sample_submission(t * 25 + i)).unwrap();
                        assert_eq!(outcome, SubmitOutcome::Accepted);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let received = server.shutdown();
        assert_eq!(received.len(), 100);
        assert_eq!(server_distinct_ids(&received), 100);
    }

    fn server_distinct_ids(subs: &[Submission]) -> usize {
        let mut ids: Vec<[u8; 16]> = subs.iter().map(|s| s.session_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Declare a 60 KB frame.
        raw.write_all(&(60_000u16).to_le_bytes()).unwrap();
        let mut status = [0u8; 1];
        raw.read_exact(&mut status).unwrap();
        assert_eq!(status[0], STATUS_REJECTED);
        drop(raw);
        server.shutdown();
    }

    #[test]
    fn stats_count_connections() {
        let server = start_collector("127.0.0.1:0").unwrap();
        let _a = CollectorClient::connect(server.local_addr()).unwrap();
        let _b = CollectorClient::connect(server.local_addr()).unwrap();
        // Give the acceptor a moment to pick both up.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 2);
        drop(_a);
        drop(_b);
        server.shutdown();
    }
}
