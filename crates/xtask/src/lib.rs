//! polygraph-lint: the workspace's static-analysis pass.
//!
//! `cargo xtask lint` walks every `.rs` file in the workspace, tokenizes
//! it with [`lexer`], and enforces the project invariants that `rustc`
//! cannot see (see [`rules`] for the rule table and DESIGN.md for the
//! rationale). Violations carry `file:line` positions; `lint.toml` holds
//! audited exceptions.

pub mod bench;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use bench::{BenchCheckConfig, BenchCheckReport};
pub use config::{AllowEntry, LintConfig};
pub use report::LintReport;
pub use rules::{Diagnostic, FileClass};

use std::path::Path;

/// Lints every `.rs` file under `root`, applying the allowlist, and
/// returns the report. Errors only on I/O or configuration problems —
/// rule violations are data, not errors.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<LintReport, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &config.exclude, &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("failed to read {rel}: {e}"))?;
        let tokens = lexer::tokenize(&source);
        let class = classify(rel, config);
        diagnostics.extend(rules::check_file(rel, &tokens, class));
    }

    let (diagnostics, suppressed, unused_allows) = apply_allowlist(diagnostics, &config.allow);
    let mut diagnostics = diagnostics;
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
        unused_allows,
    })
}

/// Classifies one workspace-relative path against the configured zones.
pub fn classify(rel: &str, config: &LintConfig) -> FileClass {
    FileClass {
        determinism: config
            .determinism_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        key_determinism: config
            .key_determinism_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        panic_safety: config
            .panic_zone
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        library: is_library_file(rel),
    }
}

/// Whether a workspace-relative path is library source code, subject to
/// the hygiene rules (POLY-H002/H003). Binary targets (`src/bin/`,
/// `src/main.rs`) own the console; tests, benches, and examples are
/// scanned for the other rules but may print.
fn is_library_file(rel: &str) -> bool {
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    if !in_src {
        return false;
    }
    if rel.contains("/src/bin/") || rel.starts_with("src/bin/") {
        return false;
    }
    let basename = rel.rsplit('/').next().unwrap_or(rel);
    basename != "main.rs"
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(rel) = relative_slash_path(root, &path) else {
            continue;
        };
        let file_type = entry
            .file_type()
            .map_err(|e| format!("failed to stat {rel}: {e}"))?;
        if file_type.is_dir() {
            let rel_dir = format!("{rel}/");
            if exclude.iter().any(|p| rel_dir.starts_with(p.as_str())) {
                continue;
            }
            collect_rs_files(root, &path, exclude, out)?;
        } else if file_type.is_file()
            && rel.ends_with(".rs")
            && !exclude.iter().any(|p| rel.starts_with(p.as_str()))
        {
            out.push(rel);
        }
    }
    Ok(())
}

/// The `/`-separated path of `path` relative to `root`, or None for
/// non-UTF-8 names (which cannot be workspace sources).
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(comp.as_os_str().to_str()?);
    }
    Some(out)
}

/// Splits diagnostics into (surviving, suppressed-count, unused allows).
/// An allow entry matches on rule + file, optionally narrowed to a line.
fn apply_allowlist(
    diagnostics: Vec<Diagnostic>,
    allow: &[AllowEntry],
) -> (Vec<Diagnostic>, usize, Vec<AllowEntry>) {
    let mut used = vec![false; allow.len()];
    let mut surviving = Vec::new();
    let mut suppressed = 0usize;
    for d in diagnostics {
        let hit = allow.iter().position(|a| {
            a.rule == d.rule && a.file == d.file && a.line.is_none_or(|l| l == d.line)
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => surviving.push(d),
        }
    }
    let unused = allow
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| a.clone())
        .collect();
    (surviving, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_classification() {
        assert!(is_library_file("crates/ml/src/metrics.rs"));
        assert!(is_library_file("crates/service/src/server.rs"));
        assert!(!is_library_file("crates/service/src/main.rs"));
        assert!(!is_library_file("crates/bench/src/bin/exp_tables.rs"));
        assert!(!is_library_file("crates/core/tests/train_integration.rs"));
        assert!(!is_library_file("crates/ml/benches/kmodes.rs"));
    }

    #[test]
    fn zone_classification_uses_prefixes() {
        let c = LintConfig::default();
        assert!(classify("crates/ml/src/kmodes.rs", &c).determinism);
        assert!(!classify("crates/ml/src/kmodes.rs", &c).panic_safety);
        assert!(classify("crates/service/src/proto.rs", &c).panic_safety);
        assert!(!classify("crates/service/src/lib.rs", &c).panic_safety);
        assert!(classify("crates/cache/src/lib.rs", &c).key_determinism);
        assert!(classify("crates/service/src/server.rs", &c).key_determinism);
        assert!(!classify("crates/ml/src/kmodes.rs", &c).key_determinism);
    }

    #[test]
    fn allowlist_matches_rule_file_and_optional_line() {
        let diags = vec![
            Diagnostic {
                rule: "POLY-P001",
                file: "a.rs".into(),
                line: 3,
                message: String::new(),
            },
            Diagnostic {
                rule: "POLY-P001",
                file: "a.rs".into(),
                line: 9,
                message: String::new(),
            },
        ];
        let allow = vec![AllowEntry {
            rule: "POLY-P001".into(),
            file: "a.rs".into(),
            line: Some(3),
            reason: "test".into(),
        }];
        let (left, suppressed, unused) = apply_allowlist(diags, &allow);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 9);
        assert_eq!(suppressed, 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_allow_entries_are_reported() {
        let allow = vec![AllowEntry {
            rule: "POLY-D001".into(),
            file: "never.rs".into(),
            line: None,
            reason: "stale".into(),
        }];
        let (_, suppressed, unused) = apply_allowlist(Vec::new(), &allow);
        assert_eq!(suppressed, 0);
        assert_eq!(unused.len(), 1);
    }
}
