//! A concrete browser instance: the thing a fingerprinting script probes.
//!
//! [`BrowserInstance`] combines an engine build with any number of
//! configuration perturbations and answers the two probe primitives the
//! paper's script uses:
//!
//! * `Object.getOwnPropertyNames(X.prototype).length` →
//!   [`BrowserInstance::own_property_count`]
//! * `X.prototype.hasOwnProperty('y')` →
//!   [`BrowserInstance::has_own_property`]
//!
//! It also reports the user-agent the instance *claims*, which for a
//! genuine browser matches its engine and for a fraud browser is whatever
//! the operator configured.

use crate::engine::Engine;
use crate::eras::Era;
use crate::perturb::{CountEffect, Perturbation};
use crate::protodb;
use crate::timebased::{self, PresenceProbe};
use crate::useragent::UserAgent;
use serde::{Deserialize, Serialize};

/// A probe-able browser instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrowserInstance {
    engine: Engine,
    claimed_user_agent: UserAgent,
    perturbations: Vec<Perturbation>,
    /// Extra own properties injected into the global namespace by the
    /// product itself (e.g. AntBrowser's `ANTBROWSER` object, §8) — fraud
    /// browsers are often *more* fingerprintable than stock ones.
    namespace_pollution: Vec<String>,
}

impl BrowserInstance {
    /// A genuine, unmodified browser whose claim matches its engine.
    pub fn genuine(ua: UserAgent) -> Self {
        Self {
            engine: Engine::for_genuine(ua),
            claimed_user_agent: ua,
            perturbations: Vec::new(),
            namespace_pollution: Vec::new(),
        }
    }

    /// An instance with an explicit engine and claim — the fraud-browser
    /// constructor.
    pub fn with_engine(engine: Engine, claimed: UserAgent) -> Self {
        Self {
            engine,
            claimed_user_agent: claimed,
            perturbations: Vec::new(),
            namespace_pollution: Vec::new(),
        }
    }

    /// Adds a configuration perturbation. Perturbations that do not apply
    /// to this engine family are ignored (a Firefox pref cannot be set on
    /// Chrome).
    pub fn perturbed(mut self, p: Perturbation) -> Self {
        if p.applies_to(self.engine.family) {
            self.perturbations.push(p);
        }
        self
    }

    /// Injects a product-specific global (namespace pollution).
    pub fn polluted(mut self, name: &str) -> Self {
        self.namespace_pollution.push(name.to_string());
        self
    }

    /// The engine actually running.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The era of the running engine.
    pub fn era(&self) -> Era {
        Era::of(self.engine)
    }

    /// The user-agent this instance claims in `navigator.userAgent`.
    pub fn claimed_user_agent(&self) -> UserAgent {
        self.claimed_user_agent
    }

    /// Whether the claim matches the engine — false for category-1/2 fraud
    /// configurations.
    pub fn is_consistent(&self) -> bool {
        Engine::for_genuine(self.claimed_user_agent) == self.engine
    }

    /// Active perturbations.
    pub fn perturbations(&self) -> &[Perturbation] {
        &self.perturbations
    }

    /// Product-injected global names (empty for stock browsers).
    pub fn namespace_pollution(&self) -> &[String] {
        &self.namespace_pollution
    }

    /// Answers `Object.getOwnPropertyNames(<proto>.prototype).length`.
    ///
    /// Returns 0 for interfaces this engine does not implement, exactly as
    /// the collection script records a guarded probe.
    pub fn own_property_count(&self, proto: &str) -> u32 {
        let Some(base) = protodb::own_property_count(proto, self.era()) else {
            return 0;
        };
        let mut count = base as i64;
        for p in &self.perturbations {
            match p.count_effect(proto) {
                CountEffect::Zero => return 0,
                CountEffect::Add(d) => count += d as i64,
            }
        }
        count.max(0) as u32
    }

    /// Answers `<proto>.prototype.hasOwnProperty('<prop>')`.
    pub fn has_own_property(&self, probe: &PresenceProbe) -> bool {
        timebased::has_own_property(self.engine, probe)
    }

    /// Answers `typeof window.<name> !== "undefined"` for product-injected
    /// globals — the fingerprintable namespace pollution of §8.
    pub fn has_global(&self, name: &str) -> bool {
        self.namespace_pollution.iter().any(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::useragent::Vendor;

    #[test]
    fn genuine_instance_is_consistent() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
        assert!(b.is_consistent());
        assert_eq!(b.engine(), Engine::blink(112));
    }

    #[test]
    fn spoofed_instance_is_inconsistent() {
        let b =
            BrowserInstance::with_engine(Engine::blink(95), UserAgent::new(Vendor::Firefox, 110));
        assert!(!b.is_consistent());
    }

    #[test]
    fn chrome_and_edge_answer_probes_identically() {
        let chrome = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111));
        let edge = BrowserInstance::genuine(UserAgent::new(Vendor::Edge, 111));
        for proto in protodb::DEVIATION_PROTOTYPES {
            assert_eq!(
                chrome.own_property_count(proto),
                edge.own_property_count(proto),
                "{proto} must match across Blink-branded browsers"
            );
        }
    }

    #[test]
    fn missing_interfaces_probe_as_zero() {
        let old_edge = BrowserInstance::genuine(UserAgent::new(Vendor::Edge, 18));
        assert_eq!(old_edge.own_property_count("WebGL2RenderingContext"), 0);
        assert_eq!(old_edge.own_property_count("StaticRange"), 0);
        assert!(old_edge.own_property_count("Element") > 0);
    }

    #[test]
    fn duckduckgo_extension_increments_element_by_two() {
        let stock = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111));
        let with_ext = stock
            .clone()
            .perturbed(Perturbation::ChromeExtensionDuckDuckGo);
        assert_eq!(
            with_ext.own_property_count("Element"),
            stock.own_property_count("Element") + 2
        );
        // Everything else untouched.
        assert_eq!(
            with_ext.own_property_count("Document"),
            stock.own_property_count("Document")
        );
    }

    #[test]
    fn firefox_pref_zeroes_service_workers() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 110))
            .perturbed(Perturbation::FirefoxDisableServiceWorkers);
        assert_eq!(b.own_property_count("ServiceWorkerRegistration"), 0);
        assert_eq!(b.own_property_count("ServiceWorkerContainer"), 0);
    }

    #[test]
    fn inapplicable_perturbation_is_ignored() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111))
            .perturbed(Perturbation::FirefoxDisableServiceWorkers);
        assert!(b.perturbations().is_empty());
        assert!(b.own_property_count("ServiceWorkerRegistration") > 0);
    }

    #[test]
    fn brave_differs_from_chrome_on_element_only_slightly() {
        // §6.3: Brave reports a Chrome UA but diverges on interfaces such
        // as Element.
        let chrome = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111));
        let brave = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111))
            .perturbed(Perturbation::BraveShields);
        assert!(brave.is_consistent(), "Brave claims Chrome and runs Blink");
        let diff = chrome.own_property_count("Element") as i64
            - brave.own_property_count("Element") as i64;
        assert_eq!(diff, 4);
    }

    #[test]
    fn tor_claims_modern_firefox_with_old_engine() {
        // §6.3: Tor's UA said Firefox 102 while its engine lagged ~a year.
        let tor =
            BrowserInstance::with_engine(Engine::gecko(91), UserAgent::new(Vendor::Firefox, 102))
                .perturbed(Perturbation::TorPatches);
        assert!(!tor.is_consistent());
        let genuine_102 = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 102));
        assert_ne!(
            tor.own_property_count("Element"),
            genuine_102.own_property_count("Element")
        );
    }

    #[test]
    fn perturbation_never_underflows() {
        // Stack every count-reducing perturbation; counts must clamp at 0.
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 102))
            .perturbed(Perturbation::TorPatches)
            .perturbed(Perturbation::FirefoxTransformGetters);
        for proto in protodb::DEVIATION_PROTOTYPES {
            let _ = b.own_property_count(proto); // must not panic
        }
    }

    #[test]
    fn namespace_pollution_is_observable() {
        let ant =
            BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110)).polluted("ANTBROWSER");
        assert!(ant.has_global("ANTBROWSER"));
        assert!(!ant.has_global("OTHER"));
        let stock = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110));
        assert!(!stock.has_global("ANTBROWSER"));
    }

    #[test]
    fn perturbation_order_does_not_matter() {
        // Count effects are Adds plus saturating Zeros, so any ordering of
        // the same perturbation set must answer identically — sessions do
        // not depend on the order extensions were installed in.
        use Perturbation::*;
        let perturbations = [
            ChromeExtensionDuckDuckGo,
            DisableWebRtc,
            MiscExtension { seed: 7 },
            BraveShields,
        ];
        let ua = UserAgent::new(Vendor::Chrome, 110);
        let forward = perturbations
            .iter()
            .fold(BrowserInstance::genuine(ua), |b, &p| b.perturbed(p));
        let backward = perturbations
            .iter()
            .rev()
            .fold(BrowserInstance::genuine(ua), |b, &p| b.perturbed(p));
        for proto in protodb::DEVIATION_PROTOTYPES {
            assert_eq!(
                forward.own_property_count(proto),
                backward.own_property_count(proto),
                "{proto} depends on perturbation order"
            );
        }
    }

    #[test]
    fn presence_probe_dispatches_to_engine() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110));
        assert!(b.has_own_property(&PresenceProbe::new("Navigator", "deviceMemory")));
        let f = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 110));
        assert!(!f.has_own_property(&PresenceProbe::new("Navigator", "deviceMemory")));
    }
}
