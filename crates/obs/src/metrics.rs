//! The three metric kinds: counters, gauges, and fixed-bucket histograms.
//!
//! All of them are lock-free atomics, safe to hammer from connection
//! workers. The histogram layout is *fixed at compile time* —
//! power-of-two microsecond buckets — so a snapshot's shape never depends
//! on the values observed, which keeps the text exposition byte-stable
//! across platforms and runs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set / add / sub).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: upper bounds `2^0 .. 2^20` microseconds
/// (1 µs … ~1.05 s) plus one overflow bucket.
pub const BUCKETS: usize = 22;

/// Index of the overflow (`+inf`) bucket.
pub const OVERFLOW_BUCKET: usize = BUCKETS - 1;

/// The inclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i < OVERFLOW_BUCKET {
        Some(1u64 << i)
    } else {
        None
    }
}

/// The bucket a value lands in: the smallest `i` with
/// `value <= bucket_bound(i)`, or the overflow bucket.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2.
    let idx = (u64::BITS - (value - 1).leading_zeros()) as usize;
    idx.min(OVERFLOW_BUCKET)
}

/// A fixed-bucket histogram of `u64` observations (microseconds on the
/// latency paths, frame counts on the batch-size path).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(b) = self.buckets.get(bucket_index(value)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts, in bound order.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| {
            self.buckets
                .get(i)
                .map(|b| b.load(Ordering::Relaxed))
                .unwrap_or(0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), OVERFLOW_BUCKET);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(10), Some(1024));
        assert_eq!(bucket_bound(20), Some(1 << 20));
        assert_eq!(bucket_bound(OVERFLOW_BUCKET), None);
    }

    #[test]
    fn every_value_lands_in_its_bound() {
        for v in (0..4096u64).chain([1 << 19, (1 << 20) - 1, 1 << 20]) {
            let i = bucket_index(v);
            if let Some(bound) = bucket_bound(i) {
                assert!(v <= bound, "{v} must be <= {bound}");
                if i > 0 {
                    let below = bucket_bound(i - 1).unwrap();
                    assert!(v > below, "{v} must be > {below} (bucket {i})");
                }
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::default();
        for v in [0, 1, 2, 1000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2_001_003);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 1); // 2
        assert_eq!(counts[10], 1); // 1000 <= 1024
        assert_eq!(counts[OVERFLOW_BUCKET], 1); // 2s > ~1.05s cap
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(-9);
        assert_eq!(g.get(), -2);
    }
}
