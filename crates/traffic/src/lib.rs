//! # traffic
//!
//! Web-scale traffic simulation — the stand-in for FinOrg's production
//! deployment (§6.2, §7.1):
//!
//! * [`market`] — which browser releases are *in use* at a given date
//!   (adoption decay over the release catalog);
//! * [`session`] — one logged-in user session: anonymised ID, timestamp,
//!   claimed user-agent, fingerprint, FinOrg risk tags, and (simulation
//!   only!) the ground truth of what produced it;
//! * [`mod@generate`] — the 205k-session generator with configuration noise,
//!   privacy forks, a small fraud-browser population, and the tag model
//!   calibrated to Table 4's base rates;
//! * [`synthetic`] — BrowserStack-style clean sweeps across OSes
//!   (Appendix-5, Tables 13/14);
//! * [`collect`] — a framed TCP collection service carrying the ≤1 KB
//!   submissions of the deployed fingerprinting script, with
//!   fault-injection hooks for robustness testing;
//! * [`store`] — the durable JSONL session store joining collection output
//!   to training input ("periodic datasets", §6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod generate;
pub mod market;
pub mod session;
pub mod store;
pub mod synthetic;

pub use generate::{generate, TrafficConfig, TrafficDataset};
pub use session::{GroundTruth, Session, Tags};
pub use store::SessionStore;
