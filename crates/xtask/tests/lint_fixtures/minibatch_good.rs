//! Good twin of `minibatch_bad.rs`: the same refit plumbing, but batch
//! order comes from a seeded ChaCha draw over an ordered map, the batch
//! cut is a counter instead of the wall clock, and the serving model is
//! cloned out of the detector guard before the refit runs.
use std::collections::BTreeMap;

pub fn batch_order(rows: usize, rng: &mut ChaCha8Rng) -> BTreeMap<usize, usize> {
    let cut = rng.next_u64() as usize;
    let mut order = BTreeMap::new();
    order.insert(rows, cut);
    order
}

pub fn refit_outside_guard(slot: &RwLock<DetectorSlot>, window: &TrainingSet) {
    let serving = {
        let guard = slot.read();
        guard.model().clone()
    };
    serving.refit_streaming(window);
}
