//! Stratified sampling for oversized training sets (§8, "Scale of the
//! database").
//!
//! When the collected dataset outgrows what retraining can chew through,
//! the paper proposes stratified sampling: shrink the data while keeping
//! every stratum — here, every user-agent — represented. Uniform
//! subsampling would do the opposite: the sparse old browsers that already
//! need lab alignment (Edge 17, the enterprise pins) would vanish first.
//!
//! [`stratified_sample`] keeps a fixed fraction of each user-agent's
//! sessions but never fewer than `min_per_stratum` (or the stratum's full
//! size, if smaller) — so a 10× reduction of the bulk leaves the rare
//! strata untouched.

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use browser_engine::UserAgent;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration for [`stratified_sample`].
#[derive(Debug, Clone, Copy)]
pub struct StratifiedConfig {
    /// Fraction of each stratum to keep (0, 1].
    pub fraction: f64,
    /// Keep at least this many sessions per user-agent (clamped to the
    /// stratum size).
    pub min_per_stratum: usize,
    /// RNG seed for the within-stratum choice.
    pub seed: u64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        Self {
            fraction: 0.1,
            min_per_stratum: 200,
            seed: 0x57A7,
        }
    }
}

/// Draws a stratified subsample of `data`, stratified by user-agent.
pub fn stratified_sample(
    data: &TrainingSet,
    config: StratifiedConfig,
) -> Result<TrainingSet, PolygraphError> {
    if !(0.0..=1.0).contains(&config.fraction) || config.fraction == 0.0 {
        return Err(PolygraphError::BadTrainingSet(format!(
            "fraction must be in (0, 1], got {}",
            config.fraction
        )));
    }
    let mut strata: HashMap<UserAgent, Vec<usize>> = HashMap::new();
    for (i, ua) in data.user_agents().iter().enumerate() {
        strata.entry(*ua).or_default().push(i);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut keep: Vec<usize> = Vec::new();
    // Deterministic iteration order: sort strata by user-agent.
    let mut uas: Vec<UserAgent> = strata.keys().copied().collect();
    uas.sort();
    for ua in uas {
        let members = &strata[&ua];
        let target = ((members.len() as f64 * config.fraction).round() as usize)
            .max(config.min_per_stratum)
            .min(members.len());
        let mut chosen: Vec<usize> = members.choose_multiple(&mut rng, target).copied().collect();
        keep.append(&mut chosen);
    }
    keep.sort_unstable();
    let keep_set: std::collections::HashSet<usize> = keep.into_iter().collect();
    Ok(data.filtered(|i| keep_set.contains(&i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;

    fn ua(v: u32) -> UserAgent {
        UserAgent::new(Vendor::Chrome, v)
    }

    /// 3000 sessions of a popular UA, 40 of a rare one.
    fn skewed_set() -> TrainingSet {
        let mut set = TrainingSet::new(1);
        for i in 0..3000 {
            set.push(vec![i as f64], ua(110)).unwrap();
        }
        for i in 0..40 {
            set.push(vec![i as f64], ua(17)).unwrap();
        }
        set
    }

    fn count(set: &TrainingSet, target: UserAgent) -> usize {
        set.user_agents().iter().filter(|&&u| u == target).count()
    }

    #[test]
    fn bulk_shrinks_but_rare_strata_survive_whole() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 0.1,
                min_per_stratum: 200,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(count(&sampled, ua(110)), 300, "10% of the bulk");
        assert_eq!(
            count(&sampled, ua(17)),
            40,
            "the rare stratum is kept whole"
        );
    }

    #[test]
    fn min_per_stratum_floors_the_draw() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 0.01,
                min_per_stratum: 100,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(count(&sampled, ua(110)), 100, "floored at min_per_stratum");
        assert_eq!(count(&sampled, ua(17)), 40);
    }

    #[test]
    fn fraction_one_is_identity_sized() {
        let data = skewed_set();
        let sampled = stratified_sample(
            &data,
            StratifiedConfig {
                fraction: 1.0,
                min_per_stratum: 1,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(sampled.len(), data.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = skewed_set();
        let cfg = StratifiedConfig {
            fraction: 0.2,
            min_per_stratum: 10,
            seed: 9,
        };
        let a = stratified_sample(&data, cfg).unwrap();
        let b = stratified_sample(&data, cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn invalid_fraction_rejected() {
        let data = skewed_set();
        for fraction in [0.0, -0.5, 1.5] {
            assert!(stratified_sample(
                &data,
                StratifiedConfig {
                    fraction,
                    min_per_stratum: 1,
                    seed: 1
                }
            )
            .is_err());
        }
    }
}
