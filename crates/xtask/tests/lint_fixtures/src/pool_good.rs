//! Pool-twin fixture: serial twin delegates to the pooled variant.

pub fn fit(x: u32) -> u32 {
    fit_with_pool(x)
}

pub fn fit_with_pool(x: u32) -> u32 {
    x
}
