//! The session store: durable collection output, training input.
//!
//! The paper's deployment collects continuously and retrains from
//! accumulated batches ("they provided us with periodic datasets", §6.2).
//! This module is that joint: the collection service's submissions are
//! appended to a JSON-lines file (one submission per line, crash-tolerant
//! by construction — a torn final line is skipped on load) and read back
//! as the `(rows, user-agents)` pairs the training pipeline consumes.

use browser_engine::UserAgent;
use fingerprint::Submission;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// An append-only JSONL store of fingerprint submissions.
#[derive(Debug)]
pub struct SessionStore {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: usize,
}

impl SessionStore {
    /// Opens (creating if needed) a store at `path`; appends go to the end.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(Self {
            path: path.as_ref().to_path_buf(),
            writer: BufWriter::new(file),
            appended: 0,
        })
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Submissions appended through this handle (not counting prior
    /// contents).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Appends one submission.
    pub fn append(&mut self, sub: &Submission) -> io::Result<()> {
        let line = serde_json::to_string(sub)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.appended += 1;
        Ok(())
    }

    /// Flushes buffered appends to disk.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Loads every parseable submission from a store file. A torn or
    /// corrupt line (e.g. from a crash mid-append) is skipped, not fatal;
    /// the number of skipped lines is returned alongside the data.
    pub fn load(path: impl AsRef<Path>) -> io::Result<(Vec<Submission>, usize)> {
        let file = File::open(path.as_ref())?;
        let reader = BufReader::new(file);
        let mut out = Vec::new();
        let mut skipped = 0usize;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Submission>(&line) {
                Ok(sub) => out.push(sub),
                Err(_) => skipped += 1,
            }
        }
        Ok((out, skipped))
    }

    /// Converts stored submissions into the `(rows, user-agents)` pairs
    /// the training pipeline consumes, dropping submissions whose
    /// user-agent does not parse or whose width differs from `expected_width`.
    pub fn to_training_pairs(
        submissions: &[Submission],
        expected_width: usize,
    ) -> (Vec<Vec<f64>>, Vec<UserAgent>) {
        let mut rows = Vec::new();
        let mut uas = Vec::new();
        for sub in submissions {
            if sub.values.len() != expected_width {
                continue;
            }
            let Ok(ua) = sub.user_agent.parse::<UserAgent>() else {
                continue;
            };
            rows.push(sub.values.iter().map(|&v| v as f64).collect());
            uas.push(ua);
        }
        (rows, uas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{BrowserInstance, Vendor};
    use fingerprint::FeatureSet;

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "polygraph-store-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn sample(i: u8) -> Submission {
        let fs = FeatureSet::table8();
        let ua = UserAgent::new(Vendor::Chrome, 110 + (i as u32 % 4));
        Submission {
            session_id: [i; 16],
            user_agent: ua.to_ua_string(),
            values: fs.extract(&BrowserInstance::genuine(ua)).values().to_vec(),
        }
    }

    #[test]
    fn append_flush_load_round_trips() {
        let path = temp_store("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path).unwrap();
        for i in 0..25u8 {
            store.append(&sample(i)).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.appended(), 25);
        let (subs, skipped) = SessionStore::load(&path).unwrap();
        assert_eq!(subs.len(), 25);
        assert_eq!(skipped, 0);
        assert_eq!(subs[7].session_id, [7u8; 16]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = temp_store("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SessionStore::open(&path).unwrap();
            store.append(&sample(1)).unwrap();
            store.flush().unwrap();
        }
        {
            let mut store = SessionStore::open(&path).unwrap();
            store.append(&sample(2)).unwrap();
            store.flush().unwrap();
        }
        let (subs, _) = SessionStore::load(&path).unwrap();
        assert_eq!(subs.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let path = temp_store("torn");
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path).unwrap();
        store.append(&sample(1)).unwrap();
        store.flush().unwrap();
        // Simulate a crash mid-append: a truncated JSON line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"session_id\":[9,9,9").unwrap();
        }
        let (subs, skipped) = SessionStore::load(&path).unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn training_pairs_filter_garbage() {
        let good = sample(1);
        let bad_ua = Submission {
            user_agent: "curl/8.0".into(),
            ..sample(2)
        };
        let bad_width = Submission {
            values: vec![1, 2, 3],
            ..sample(3)
        };
        let (rows, uas) = SessionStore::to_training_pairs(&[good.clone(), bad_ua, bad_width], 28);
        assert_eq!(rows.len(), 1);
        assert_eq!(uas.len(), 1);
        assert_eq!(rows[0].len(), 28);
        assert_eq!(uas[0].label(), "Chrome 111");
        let _ = good;
    }

    #[test]
    fn loading_missing_file_errors() {
        assert!(SessionStore::load("/definitely/not/here.jsonl").is_err());
    }
}
