//! Table 7 and Figure 5 (§7.4): the privacy analysis — per-feature
//! entropy and fingerprint anonymity sets.
//!
//! The claims to reproduce: no collected feature carries more normalised
//! entropy than the user-agent string itself, only a negligible fraction
//! of fingerprints are unique, and the overwhelming majority sit in
//! anonymity sets larger than 50 users.

use polygraph_bench::{header, parse_options, pct, report};
use polygraph_ml::privacy::{anonymity_sets, normalized_entropy, shannon_entropy};
use traffic::{generate, TrafficConfig};

fn main() {
    let opts = parse_options();
    let fs = fingerprint::FeatureSet::table8();
    let config = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &config);

    header("Table 7: entropy of collected attributes (sorted by normalised entropy)");
    // The user-agent plus the seven features the paper lists.
    let names = fs.names();
    let feature_rows: Vec<(&str, &str, Option<usize>)> = vec![
        ("user-agent", "5.97 / 0.58", None),
        (
            "Element count",
            "2.51 / 0.47",
            names.iter().position(|n| n.contains("(Element.")),
        ),
        (
            "SVGElement count",
            "2.33 / 0.43",
            names.iter().position(|n| n.contains("(SVGElement.")),
        ),
        (
            "Document count",
            "2.17 / 0.42",
            names.iter().position(|n| n.contains("(Document.")),
        ),
        (
            "IntersectionObserver count",
            "1.33 / 0.37",
            names
                .iter()
                .position(|n| n.contains("(IntersectionObserver.")),
        ),
        (
            "webkitDisplayingFullscreen bit",
            "0.58 / 0.37",
            names
                .iter()
                .position(|n| n.contains("webkitDisplayingFullscreen")),
        ),
        (
            "CSSRule count",
            "0.56 / 0.35",
            names.iter().position(|n| n.contains("(CSSRule.")),
        ),
        (
            "StaticRange count",
            "0.58 / 0.29",
            names.iter().position(|n| n.contains("(StaticRange.")),
        ),
    ];

    // Normalisation: entropy divided by log2(#distinct user-agents) — the
    // scale on which the user-agent itself saturates; see EXPERIMENTS.md
    // for why absolute normalised values differ from AmIUnique's
    // dataset-size convention while the *ordering* is what matters.
    let ua_strings: Vec<String> = data.sessions.iter().map(|s| s.claimed.label()).collect();
    let mut measured: Vec<(String, f64, f64)> = Vec::new();
    let h_ua = shannon_entropy(&ua_strings);
    measured.push(("user-agent".into(), h_ua, normalized_entropy(&ua_strings)));
    for (label, _, idx) in &feature_rows[1..] {
        let idx = idx.expect("feature present in Table 8 set");
        let vals: Vec<u32> = data.sessions.iter().map(|s| s.values[idx]).collect();
        measured.push((
            (*label).into(),
            shannon_entropy(&vals),
            normalized_entropy(&vals),
        ));
    }

    println!(
        "  {:<34} {:>22} {:>22}",
        "attribute", "paper (H / norm)", "measured (H / norm)"
    );
    for ((label, paper, _), (_, h, hn)) in feature_rows.iter().zip(&measured) {
        println!("  {label:<34} {paper:>22} {:>15.2} / {:.4}", h, hn);
    }

    let max_feature_h = measured[1..].iter().map(|(_, h, _)| *h).fold(0.0, f64::max);
    header("the privacy invariant");
    report(
        "user-agent carries the most entropy",
        "yes",
        if h_ua >= max_feature_h {
            "yes"
        } else {
            "NO — violated"
        },
    );

    header("Figure 5: anonymity sets of the full 28-value fingerprints");
    let fingerprints: Vec<Vec<u32>> = data.sessions.iter().map(|s| s.values.clone()).collect();
    let rep = anonymity_sets(&fingerprints);
    report("unique fingerprints", "0.3%", &pct(rep.unique_fraction));
    report(
        "fingerprints in sets > 50",
        "95.6%",
        &pct(rep.large_set_fraction),
    );
    println!("  full histogram (fraction of fingerprints per set-size bucket):");
    for b in &rep.buckets {
        let bar_len = (b.fraction * 60.0).round() as usize;
        println!(
            "    {:>9}: {:>7}  {}",
            b.label,
            pct(b.fraction),
            "#".repeat(bar_len)
        );
    }
    report(
        "distinct fingerprint values",
        "(coarse)",
        &rep.distinct_values.to_string(),
    );
}
