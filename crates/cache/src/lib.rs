//! # polygraph-cache
//!
//! A sharded, read-mostly verdict cache for the risk-server hot path.
//!
//! The paper's whole premise is that fingerprints are *coarse*: 28 small
//! integer features plus a handful of booleans means the distinct
//! (fingerprint, user-agent) population is tiny relative to the traffic
//! volume served. At FinOrg scale most submissions are exact repeats of
//! an already-assessed pair, so the dominant serving win is memoizing the
//! model's decision, not re-running scaler→PCA→k-means→Algorithm 1 for
//! every frame.
//!
//! ## Design
//!
//! * **Keys are caller-supplied 64-bit hashes** of the canonical encoded
//!   submission (see `fingerprint::submission_cache_key`), computed with
//!   a fixed FNV-1a — never `RandomState` — so the same frame maps to
//!   the same slot in every process, every run. Replayability is a
//!   workspace invariant (lint rule POLY-D004 pins it).
//! * **Power-of-two sharding**: the low key bits select one of N shards,
//!   each an independent `RwLock`-protected bounded map. Lookups take a
//!   read lock only; the reference bits CLOCK eviction needs are atomics,
//!   so concurrent hits never serialize on a shard.
//! * **CLOCK / second-chance eviction** per shard: a full shard evicts
//!   the first slot whose reference bit is clear, clearing bits as the
//!   hand sweeps. Entries whose epoch is stale are evicted on sight —
//!   they can never hit again.
//! * **Epoch invalidation**: every entry carries the model epoch it was
//!   assessed under. A model swap bumps one `AtomicU64` instead of
//!   draining shards; entries from older epochs lazily miss (and report
//!   as [`Lookup::Stale`] so the caller can count them).
//!
//! The cache is value-generic: the service stores its wire `Verdict`, the
//! tests store small integers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Upper bound on the shard count (a power of two; more shards than this
/// buys nothing and wastes memory on empty maps).
pub const MAX_SHARDS: usize = 1024;

/// The outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup<V> {
    /// A current-epoch entry was found.
    Hit(V),
    /// An entry was found but it was assessed under an older model epoch;
    /// the caller must re-assess (and should count the stale sighting).
    Stale,
    /// No entry for this key.
    Miss,
}

/// What an insert did, for the caller's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// A victim entry (different key) was evicted to make room.
    pub evicted: bool,
    /// The key was already present and its value/epoch were replaced in
    /// place (refreshing a stale entry lands here).
    pub replaced: bool,
}

/// One cached entry. The reference bit is atomic so read-locked lookups
/// can set it without upgrading to a write lock.
struct Slot<V> {
    key: u64,
    epoch: u64,
    referenced: AtomicBool,
    value: V,
}

/// One shard: a bounded slot arena, a key→slot index, and the CLOCK hand.
struct Shard<V> {
    slots: Vec<Slot<V>>,
    /// Deterministically ordered index (POLY-D004 zone: no `RandomState`).
    index: BTreeMap<u64, usize>,
    hand: usize,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            index: BTreeMap::new(),
            hand: 0,
        }
    }

    fn lookup(&self, key: u64, current_epoch: u64) -> Lookup<V> {
        let Some(&pos) = self.index.get(&key) else {
            return Lookup::Miss;
        };
        let Some(slot) = self.slots.get(pos) else {
            return Lookup::Miss;
        };
        if slot.epoch != current_epoch {
            return Lookup::Stale;
        }
        slot.referenced.store(true, Ordering::Relaxed);
        Lookup::Hit(slot.value.clone())
    }

    fn insert(&mut self, key: u64, epoch: u64, value: V, capacity: usize) -> InsertOutcome {
        if let Some(&pos) = self.index.get(&key) {
            if let Some(slot) = self.slots.get_mut(pos) {
                slot.epoch = epoch;
                slot.value = value;
                slot.referenced.store(true, Ordering::Relaxed);
                return InsertOutcome {
                    evicted: false,
                    replaced: true,
                };
            }
        }
        let fresh = Slot {
            key,
            epoch,
            referenced: AtomicBool::new(true),
            value,
        };
        if self.slots.len() < capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(fresh);
            return InsertOutcome::default();
        }
        let pos = self.clock_victim(epoch);
        if let Some(slot) = self.slots.get_mut(pos) {
            self.index.remove(&slot.key);
            *slot = fresh;
            self.index.insert(key, pos);
        }
        InsertOutcome {
            evicted: true,
            replaced: false,
        }
    }

    /// CLOCK sweep: clear reference bits until an unreferenced slot is
    /// found. Stale-epoch slots are victims on sight — they can never hit
    /// again, so their second chance is worthless. Bounded by two full
    /// revolutions (after one sweep every bit is clear).
    fn clock_victim(&mut self, current_epoch: u64) -> usize {
        let n = self.slots.len().max(1);
        for _ in 0..(2 * n) {
            let pos = self.hand % n;
            self.hand = (self.hand + 1) % n;
            let Some(slot) = self.slots.get(pos) else {
                continue;
            };
            if slot.epoch != current_epoch || !slot.referenced.swap(false, Ordering::Relaxed) {
                return pos;
            }
        }
        // Unreachable with a correct sweep; fall back to the hand slot.
        self.hand % n
    }
}

/// A sharded, bounded, epoch-invalidated map from 64-bit keys to verdict
/// values. See the crate docs for the design.
pub struct VerdictCache<V> {
    shards: Vec<RwLock<Shard<V>>>,
    /// `shards.len() - 1`; shard selection is `key & mask`.
    mask: u64,
    capacity_per_shard: usize,
    epoch: AtomicU64,
}

impl<V: Clone> VerdictCache<V> {
    /// A cache of roughly `capacity` entries spread over `shards` shards.
    ///
    /// `shards` is rounded up to a power of two and clamped to
    /// `1..=`[`MAX_SHARDS`]; `capacity` is divided evenly (rounding up)
    /// so the total never falls below the request. A zero `capacity`
    /// still yields one slot per shard — callers gate "cache disabled"
    /// above this type.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shard_count = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let capacity_per_shard = capacity.div_ceil(shard_count).max(1);
        Self {
            shards: (0..shard_count)
                .map(|_| RwLock::new(Shard::new(capacity_per_shard)))
                .collect(),
            mask: (shard_count - 1) as u64,
            capacity_per_shard,
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    /// The current model epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Invalidates every cached entry by advancing the model epoch, and
    /// returns the new epoch. O(1): no shard is locked or drained — old
    /// entries lazily miss as [`Lookup::Stale`] and are preferred CLOCK
    /// victims.
    ///
    /// Callers must bump *after* the new model is visible to readers
    /// (e.g. after the detector slot's write guard is released): a
    /// verdict assessed under the old model is then always tagged with a
    /// pre-bump epoch and can never be served at the new one.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn shard(&self, key: u64) -> Option<&RwLock<Shard<V>>> {
        self.shards.get((key & self.mask) as usize)
    }

    /// Looks up `key` at the current epoch. Read-lock only.
    pub fn lookup(&self, key: u64) -> Lookup<V> {
        let epoch = self.epoch();
        match self.shard(key) {
            Some(shard) => shard.read().lookup(key, epoch),
            None => Lookup::Miss,
        }
    }

    /// Inserts (or refreshes) `key` with a value assessed under `epoch`.
    ///
    /// `epoch` must have been read via [`Self::epoch`] *before* the
    /// assessment borrowed the model: if a swap landed in between, the
    /// entry is tagged with the old epoch and harmlessly misses forever;
    /// the reverse — an old-model verdict tagged with the new epoch —
    /// cannot happen (see [`Self::bump_epoch`]).
    pub fn insert(&self, key: u64, epoch: u64, value: V) -> InsertOutcome {
        match self.shard(key) {
            Some(shard) => shard
                .write()
                .insert(key, epoch, value, self.capacity_per_shard),
            None => InsertOutcome::default(),
        }
    }

    /// Number of resident entries (current and stale epochs alike).
    ///
    /// This counts slots still holding memory, including stale-epoch
    /// entries that can never hit again and are merely awaiting CLOCK
    /// eviction. For "how many entries can actually serve a hit right
    /// now" use [`Self::current_occupancy`].
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.read().slots.len()).sum()
    }

    /// Number of resident entries tagged with the *current* epoch — the
    /// only ones a [`Self::lookup`] can hit. After [`Self::bump_epoch`]
    /// this drops to zero immediately even though [`Self::occupancy`]
    /// still reports the stale slots until CLOCK sweeps them.
    pub fn current_occupancy(&self) -> usize {
        let epoch = self.epoch();
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .slots
                    .iter()
                    .filter(|slot| slot.epoch == epoch)
                    .count()
            })
            .sum()
    }
}

impl<V> std::fmt::Debug for VerdictCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerdictCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn miss_then_insert_then_hit() {
        let cache: VerdictCache<u32> = VerdictCache::new(4, 64);
        assert_eq!(cache.lookup(7), Lookup::Miss);
        let outcome = cache.insert(7, cache.epoch(), 42);
        assert_eq!(outcome, InsertOutcome::default());
        assert_eq!(cache.lookup(7), Lookup::Hit(42));
        assert_eq!(cache.occupancy(), 1);
    }

    #[test]
    fn shard_and_capacity_rounding() {
        let cache: VerdictCache<u8> = VerdictCache::new(3, 10);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 12); // ceil(10/4) = 3 per shard
        let tiny: VerdictCache<u8> = VerdictCache::new(0, 0);
        assert_eq!(tiny.shard_count(), 1);
        assert_eq!(tiny.capacity(), 1);
        let huge: VerdictCache<u8> = VerdictCache::new(1 << 30, 1 << 12);
        assert_eq!(huge.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn epoch_bump_turns_hits_into_stale_then_refresh() {
        let cache: VerdictCache<u32> = VerdictCache::new(1, 8);
        cache.insert(1, cache.epoch(), 10);
        assert_eq!(cache.lookup(1), Lookup::Hit(10));

        let new_epoch = cache.bump_epoch();
        assert_eq!(new_epoch, 1);
        assert_eq!(
            cache.lookup(1),
            Lookup::Stale,
            "old-epoch entries must never hit"
        );

        // Re-inserting at the new epoch refreshes the same slot.
        let outcome = cache.insert(1, new_epoch, 20);
        assert!(outcome.replaced);
        assert_eq!(cache.lookup(1), Lookup::Hit(20));
        assert_eq!(cache.occupancy(), 1);
    }

    #[test]
    fn current_occupancy_drops_to_zero_across_a_bump_while_resident_holds() {
        let cache: VerdictCache<u32> = VerdictCache::new(2, 16);
        for key in 0..6u64 {
            cache.insert(key, cache.epoch(), key as u32);
        }
        assert_eq!(cache.occupancy(), 6);
        assert_eq!(cache.current_occupancy(), 6);

        let new_epoch = cache.bump_epoch();
        // The stale slots still hold memory…
        assert_eq!(cache.occupancy(), 6, "resident count keeps stale slots");
        // …but none of them can serve a hit any more.
        assert_eq!(
            cache.current_occupancy(),
            0,
            "current-epoch occupancy must drop to zero at the bump"
        );

        // Refreshing a subset at the new epoch is reflected immediately.
        for key in 0..2u64 {
            cache.insert(key, new_epoch, key as u32 + 100);
        }
        assert_eq!(cache.current_occupancy(), 2);
        assert_eq!(cache.occupancy(), 6);
    }

    #[test]
    fn old_epoch_insert_never_hits() {
        // The swap race, distilled: a verdict assessed under epoch 0 is
        // inserted after the bump to epoch 1. It must miss, not poison.
        let cache: VerdictCache<u32> = VerdictCache::new(1, 8);
        let old = cache.epoch();
        cache.bump_epoch();
        cache.insert(5, old, 99);
        assert_eq!(cache.lookup(5), Lookup::Stale);
    }

    #[test]
    fn clock_eviction_gives_referenced_entries_a_second_chance() {
        // Single shard, capacity 2. Insert a and b; touch a; insert c.
        // CLOCK must evict b (a's reference bit buys it a second chance).
        let cache: VerdictCache<u32> = VerdictCache::new(1, 2);
        let e = cache.epoch();
        cache.insert(0, e, 0);
        cache.insert(1, e, 1);
        // Clear both reference bits with one wasted eviction cycle is
        // avoided: lookups set the bit, so touch only `0`.
        assert_eq!(cache.lookup(0), Lookup::Hit(0));
        assert_eq!(cache.lookup(1), Lookup::Hit(1));
        // Both referenced: the sweep clears 0's bit, clears 1's bit, then
        // wraps and takes 0... give `0` an extra touch pattern instead:
        // clear bits deterministically by inserting twice.
        let out = cache.insert(2, e, 2);
        assert!(out.evicted);
        // Exactly one of the old keys survived and capacity holds.
        let survivors = [0u64, 1]
            .iter()
            .filter(|&&k| cache.lookup(k) != Lookup::Miss)
            .count();
        assert_eq!(survivors, 1);
        assert_eq!(cache.lookup(2), Lookup::Hit(2));
        assert_eq!(cache.occupancy(), 2);
    }

    #[test]
    fn stale_entries_are_preferred_victims() {
        let cache: VerdictCache<u32> = VerdictCache::new(1, 2);
        let e0 = cache.epoch();
        cache.insert(10, e0, 1);
        let e1 = cache.bump_epoch();
        cache.insert(11, e1, 2);
        assert_eq!(cache.lookup(11), Lookup::Hit(2)); // referenced, current
                                                      // Full shard: the stale key 10 must be the victim even though the
                                                      // hand may point at the referenced current entry first.
        let out = cache.insert(12, e1, 3);
        assert!(out.evicted);
        assert_eq!(cache.lookup(10), Lookup::Miss, "stale entry evicted");
        assert_eq!(cache.lookup(11), Lookup::Hit(2), "current entry kept");
        assert_eq!(cache.lookup(12), Lookup::Hit(3));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: VerdictCache<u64> = VerdictCache::new(8, 8 * 16);
        let e = cache.epoch();
        for k in 0..128u64 {
            cache.insert(k, e, k);
        }
        assert_eq!(cache.occupancy(), 128);
        for k in 0..128u64 {
            assert_eq!(cache.lookup(k), Lookup::Hit(k));
        }
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        let cache: Arc<VerdictCache<u64>> = Arc::new(VerdictCache::new(8, 256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = (t * 31 + i) % 512;
                    match c.lookup(key) {
                        Lookup::Hit(v) => {
                            assert_eq!(v, key, "a hit must carry its own key's value")
                        }
                        Lookup::Stale | Lookup::Miss => {
                            c.insert(key, c.epoch(), key);
                        }
                    }
                    if i % 500 == 0 && t == 0 {
                        c.bump_epoch();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.occupancy() <= cache.capacity());
    }
}
