//! Bad fixture: a mini-batch k-means refit that breaks the streaming
//! retrain disciplines — ambient-ordered batch bookkeeping and a
//! wall-clock batch cut (determinism), plus a warm-start refit run
//! under the serving detector's read guard (concurrency).
use std::collections::HashMap;

pub fn batch_order(rows: usize) -> HashMap<usize, usize> {
    let cut = Instant::now();
    let mut order = HashMap::new();
    order.insert(rows, cut.elapsed().as_micros() as usize);
    order
}

pub fn refit_under_guard(slot: &RwLock<DetectorSlot>, window: &TrainingSet) {
    let guard = slot.read();
    guard.model().refit_streaming(window);
}
