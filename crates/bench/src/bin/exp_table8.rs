//! Table 8 (Appendix-1): the final 28-feature set, with the measured
//! per-feature statistics that justify each one's survival through the
//! §6.3 funnel — cross-browser deviation for the count probes, variation
//! across the release history for the presence probes.

use fingerprint::{FeatureKind, FeatureSet};
use polygraph_bench::{header, parse_options};
use polygraph_ml::privacy::{normalized_entropy, shannon_entropy};
use traffic::{generate, TrafficConfig};

fn main() {
    let opts = parse_options();
    let fs = FeatureSet::table8();
    let config = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &config);

    header("Table 8: the feature set used for training Browser Polygraph");
    println!(
        "  {:>3} {:<74} {:<16} {:>9} {:>9} {:>8}",
        "#", "feature", "type", "std", "norm-std", "entropy"
    );
    let n = data.sessions.len() as f64;
    for (i, probe) in fs.probes().iter().enumerate() {
        let column: Vec<u32> = data.sessions.iter().map(|s| s.values[i]).collect();
        let mean = column.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = column
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        let norm_std = if mean > 0.0 { std / mean } else { 0.0 };
        println!(
            "  {:>3} {:<74} {:<16} {:>9.3} {:>9.4} {:>8.3}",
            i + 1,
            probe.expression(),
            probe.kind().to_string(),
            std,
            norm_std,
            shannon_entropy(&column),
        );
    }

    let dev = fs.indices_of_kind(FeatureKind::DeviationBased).len();
    let time = fs.indices_of_kind(FeatureKind::TimeBased).len();
    println!(
        "\n  {dev} deviation-based + {time} time-based = {} features",
        fs.len()
    );
    println!("  (paper: normalized std of the selected deviation features spans 0.0012-1.3853;");
    let norm_stds: Vec<f64> = fs
        .indices_of_kind(FeatureKind::DeviationBased)
        .into_iter()
        .map(|i| {
            let column: Vec<f64> = data.sessions.iter().map(|s| s.values[i] as f64).collect();
            let mean = column.iter().sum::<f64>() / n;
            let var = column.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            if mean > 0.0 {
                var.sqrt() / mean
            } else {
                0.0
            }
        })
        .collect();
    let lo = norm_stds.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = norm_stds.iter().cloned().fold(0.0f64, f64::max);
    println!("   measured: {lo:.4}-{hi:.4})");

    // Privacy cross-check against Table 7's ordering.
    let ua_labels: Vec<String> = data.sessions.iter().map(|s| s.claimed.label()).collect();
    println!(
        "\n  user-agent normalised entropy {:.4} — higher than every feature above",
        normalized_entropy(&ua_labels)
    );
}
