//! Bad fixture: `Ordering::Relaxed` on atomics that publish state to
//! other threads — an epoch counter and a stop flag. Relaxed gives no
//! happens-before edge, so subscribers can read stale shard contents
//! after observing the new epoch.
pub fn publish_epoch(epoch: &AtomicU64, stop: &AtomicBool) {
    epoch.store(1, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
}

pub fn subscribe(epoch: &AtomicU64) -> u64 {
    epoch.load(Ordering::Relaxed)
}
