//! Shared backend parametrization for the conformance suites.
//!
//! The risk server has two interchangeable connection cores
//! ([`ServerBackend::Threaded`] and [`ServerBackend::Reactor`]) that must
//! honour the exact same lifecycle, chaos, and cache-epoch guarantees.
//! Every conformance test therefore runs through [`for_each_backend`],
//! which executes the scenario once per core with a config pre-set to
//! the backend under test.

use polygraph_service::server::{RiskServerConfig, ServerBackend};

/// Runs `scenario` once per connection core. The scenario receives a
/// default config with `backend` pre-set (override other fields with
/// struct-update syntax) plus the backend's name for assertion messages.
pub fn for_each_backend(scenario: impl Fn(RiskServerConfig, &'static str)) {
    for (backend, name) in [
        (ServerBackend::Threaded, "threaded"),
        (ServerBackend::Reactor, "reactor"),
    ] {
        let config = RiskServerConfig {
            backend,
            ..Default::default()
        };
        scenario(config, name);
    }
}
