//! Determinism-zone fixture: the clean counterpart of `det_bad.rs`.
//! `Instant` in type position is fine; only `Instant::now` reads the clock.

use std::collections::BTreeMap;

pub fn tally(seed: u64, deadline: Instant) -> usize {
    let mut seen = BTreeMap::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    seen.insert(seed, rng.next_u64());
    seen.len()
}
