//! Risk policy: turning a verdict into an authentication decision.
//!
//! The paper positions Browser Polygraph as one signal inside risk-based
//! authentication (§1, §4): its `risk_factor` is meant to be *consumed*,
//! not to block users directly. This module is that consumption point — a
//! small, explicit mapping from verdicts to actions, with the paper's
//! semantics baked into the defaults:
//!
//! * unflagged sessions pass;
//! * flagged sessions with risk 0–1 are "update inconsistencies or
//!   extension effects" (§7.1) — worth a step-up challenge at most;
//! * higher risk factors (version lies across eras, vendor mismatches)
//!   escalate.

use crate::proto::{Verdict, VerdictStatus};
use serde::{Deserialize, Serialize};

/// What the login flow should do with a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AuthAction {
    /// Proceed normally.
    Allow,
    /// Require a step-up challenge (2FA, email confirmation).
    StepUp,
    /// Deny and route to manual review.
    Deny,
}

/// Threshold-based policy over the risk factor.
///
/// ```
/// use polygraph_service::{AuthAction, RiskPolicy, Verdict, VerdictStatus};
///
/// let policy = RiskPolicy::default();
/// let verdict = Verdict {
///     status: VerdictStatus::Assessed,
///     flagged: true,
///     risk_factor: 20, // vendor mismatch
///     predicted_cluster: 4,
///     expected_cluster: Some(1),
/// };
/// assert_eq!(policy.decide(&verdict), AuthAction::Deny);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskPolicy {
    /// Flagged sessions at or above this risk factor get a step-up.
    pub step_up_at: u8,
    /// Flagged sessions at or above this risk factor are denied.
    pub deny_at: u8,
    /// Action for sessions whose submission could not be assessed
    /// (malformed frame, unparseable user-agent, schema mismatch) or
    /// was shed under overload (`VerdictStatus::Degraded`): an honest
    /// "no signal" answer, never a garbage risk factor.
    pub on_unassessable: AuthAction,
}

impl Default for RiskPolicy {
    /// The operating point suggested by Table 4: risk > 1 marks the batch
    /// with ~4x base ATO prevalence (step-up), risk > 4 the ~13x batch
    /// (deny).
    fn default() -> Self {
        Self {
            step_up_at: 2,
            deny_at: 5,
            on_unassessable: AuthAction::StepUp,
        }
    }
}

impl RiskPolicy {
    /// Decides the action for one verdict.
    pub fn decide(&self, verdict: &Verdict) -> AuthAction {
        if verdict.status != VerdictStatus::Assessed {
            return self.on_unassessable;
        }
        if !verdict.flagged {
            return AuthAction::Allow;
        }
        if verdict.risk_factor >= self.deny_at {
            AuthAction::Deny
        } else if verdict.risk_factor >= self.step_up_at {
            AuthAction::StepUp
        } else {
            // Flagged at risk 0-1: the benign-mismatch band.
            AuthAction::Allow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessed(flagged: bool, risk: u8) -> Verdict {
        Verdict {
            status: VerdictStatus::Assessed,
            flagged,
            risk_factor: risk,
            predicted_cluster: 0,
            expected_cluster: Some(0),
        }
    }

    #[test]
    fn unflagged_always_allows() {
        let p = RiskPolicy::default();
        for risk in [0u8, 5, 20] {
            assert_eq!(p.decide(&assessed(false, risk)), AuthAction::Allow);
        }
    }

    #[test]
    fn default_bands_match_table4_cuts() {
        let p = RiskPolicy::default();
        assert_eq!(
            p.decide(&assessed(true, 0)),
            AuthAction::Allow,
            "benign mismatch band"
        );
        assert_eq!(p.decide(&assessed(true, 1)), AuthAction::Allow);
        assert_eq!(p.decide(&assessed(true, 2)), AuthAction::StepUp);
        assert_eq!(p.decide(&assessed(true, 4)), AuthAction::StepUp);
        assert_eq!(p.decide(&assessed(true, 5)), AuthAction::Deny);
        assert_eq!(
            p.decide(&assessed(true, 20)),
            AuthAction::Deny,
            "vendor mismatch"
        );
    }

    #[test]
    fn unassessable_follows_configuration() {
        let mut p = RiskPolicy::default();
        let v = Verdict::error(VerdictStatus::Malformed);
        assert_eq!(p.decide(&v), AuthAction::StepUp);
        p.on_unassessable = AuthAction::Deny;
        assert_eq!(p.decide(&v), AuthAction::Deny);
    }

    #[test]
    fn degraded_is_unassessable_not_a_risk_signal() {
        let p = RiskPolicy::default();
        let v = Verdict::error(VerdictStatus::Degraded);
        assert_eq!(
            p.decide(&v),
            p.on_unassessable,
            "shed verdicts must follow the unassessable path, not the risk bands"
        );
    }

    #[test]
    fn actions_are_ordered_by_severity() {
        assert!(AuthAction::Allow < AuthAction::StepUp);
        assert!(AuthAction::StepUp < AuthAction::Deny);
    }
}
