//! Client for the risk-assessment service.
//!
//! The verdict is one signal inside a risk-based authentication flow
//! (§1, §4): an unreachable or misbehaving risk server must degrade
//! gracefully, never stall a login. The client therefore owns the full
//! fault story on its side of the wire:
//!
//! * **Per-request deadlines** — every exchange runs under
//!   [`RiskClientConfig::request_timeout`] for both reads and writes.
//! * **Poisoning** — after *any* I/O or decode error the connection is
//!   discarded (`client.poisoned`). A timed-out request may still be
//!   answered later; reusing the stream would let those stale bytes
//!   misparse as the next verdict. A poisoned stream is never read again.
//! * **Retry with capped, jittered backoff** — failed exchanges retry up
//!   to [`RiskClientConfig::max_retries`] times on a fresh connection
//!   (`client.retries`, `client.reconnects`), sleeping an
//!   exponentially-growing, ChaCha-jittered interval between attempts so
//!   a fleet of clients does not stampede a recovering server. The jitter
//!   is seeded ([`RiskClientConfig::retry_seed`]) — chaos runs reproduce.
//! * **Accounted failures** — a request that exhausts its retries lands
//!   in `client.errors`, and its latency span is *cancelled*, so
//!   `client.round_trip_micros.count + client.errors ==
//!   client.requests` holds exactly.

use crate::proto::{
    decode_stats_response_header, Verdict, VerdictError, STATS_RESPONSE_HEADER_LEN, VERDICT_LEN,
};
use browser_engine::BrowserInstance;
use fingerprint::{
    encode_stats_request, encode_submission, FeatureSet, Submission, MAX_SUBMISSION_BYTES,
};
use polygraph_obs::{Counter, Histogram, Registry, Snapshot, Span};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Metric names the client records into its registry.
pub mod metric_names {
    /// Submit-to-verdict latency in µs, successful round trips only
    /// (histogram). `count + client.errors == client.requests`.
    pub const ROUND_TRIP_MICROS: &str = "client.round_trip_micros";
    /// Logical submission requests started (counter).
    pub const REQUESTS: &str = "client.requests";
    /// Submission requests that failed after exhausting retries (counter).
    pub const ERRORS: &str = "client.errors";
    /// Retry attempts across all request kinds (counter).
    pub const RETRIES: &str = "client.retries";
    /// Fresh connections established after the initial connect (counter).
    pub const RECONNECTS: &str = "client.reconnects";
    /// Streams discarded after an I/O or decode error (counter).
    pub const POISONED: &str = "client.poisoned";
    /// `STATS` snapshots fetched (counter).
    pub const STATS_FETCHES: &str = "client.stats_fetches";
    /// `STATS` fetches that failed after exhausting retries (counter).
    pub const STATS_ERRORS: &str = "client.stats_errors";
    /// Backoff sleeps actually taken, in µs (histogram). `count ==
    /// client.retries`; the recorded values pin the exponential schedule
    /// (and its reset-on-success) in tests without timing a sleep.
    pub const BACKOFF_MICROS: &str = "client.backoff_micros";
}

/// Resilience settings of a [`RiskClient`].
#[derive(Debug, Clone)]
pub struct RiskClientConfig {
    /// Per-request read *and* write deadline. A server that takes longer
    /// is treated as failed for this attempt; the stream is poisoned.
    pub request_timeout: Duration,
    /// Retries after the first attempt of each request. `0` disables
    /// retrying (a single failure is returned to the caller).
    pub max_retries: u32,
    /// First-retry backoff; doubles per further attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed of the ChaCha stream that jitters each backoff into
    /// `[backoff/2, backoff]` — deterministic per client.
    pub retry_seed: u64,
}

impl Default for RiskClientConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(5),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            retry_seed: 0,
        }
    }
}

/// A connection to a risk server.
pub struct RiskClient {
    addr: SocketAddr,
    config: RiskClientConfig,
    /// `None` while poisoned/disconnected; the next attempt reconnects.
    stream: Option<TcpStream>,
    rng: ChaCha8Rng,
    next_session: u64,
    /// Failed exchanges since the last success, across requests. This —
    /// not a per-request counter — scales the backoff, so a client
    /// hammering a dead node keeps escalating toward `backoff_cap` even
    /// with a small per-request retry budget; any successful exchange
    /// resets it so the next transient blip starts back at
    /// `backoff_base` instead of inheriting the old streak.
    consecutive_failures: u32,
    registry: Arc<Registry>,
    round_trip: Arc<Histogram>,
    backoff_taken: Arc<Histogram>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    poisoned: Arc<Counter>,
    stats_fetches: Arc<Counter>,
    stats_errors: Arc<Counter>,
}

/// Encodes a u16-LE frame header, rejecting lengths the framing cannot
/// carry. The cast bug this guards against: `len as u16` silently
/// truncates a >65535-byte frame (an adversarially long user-agent) into
/// a short header, desyncing every frame after it.
fn frame_header(len: usize) -> io::Result<[u8; 2]> {
    match u16::try_from(len) {
        Ok(n) if len <= MAX_SUBMISSION_BYTES => Ok(n.to_le_bytes()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame length {len} exceeds the {MAX_SUBMISSION_BYTES}-byte framing limit"),
        )),
    }
}

impl RiskClient {
    /// Connects to a risk server, recording round-trip latency into a
    /// private monotonic-clock registry (see [`RiskClient::registry`]).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, Arc::new(Registry::monotonic()))
    }

    /// [`RiskClient::connect`] recording into a shared (possibly
    /// deterministically-clocked) registry.
    pub fn connect_with(addr: SocketAddr, registry: Arc<Registry>) -> io::Result<Self> {
        Self::connect_with_config(addr, registry, RiskClientConfig::default())
    }

    /// [`RiskClient::connect_with`] with explicit resilience settings.
    pub fn connect_with_config(
        addr: SocketAddr,
        registry: Arc<Registry>,
        config: RiskClientConfig,
    ) -> io::Result<Self> {
        let stream = Self::open_stream(addr, &config)?;
        Ok(Self {
            addr,
            rng: ChaCha8Rng::seed_from_u64(config.retry_seed),
            config,
            stream: Some(stream),
            next_session: 1,
            consecutive_failures: 0,
            round_trip: registry.histogram(metric_names::ROUND_TRIP_MICROS),
            backoff_taken: registry.histogram(metric_names::BACKOFF_MICROS),
            requests: registry.counter(metric_names::REQUESTS),
            errors: registry.counter(metric_names::ERRORS),
            retries: registry.counter(metric_names::RETRIES),
            reconnects: registry.counter(metric_names::RECONNECTS),
            poisoned: registry.counter(metric_names::POISONED),
            stats_fetches: registry.counter(metric_names::STATS_FETCHES),
            stats_errors: registry.counter(metric_names::STATS_ERRORS),
            registry,
        })
    }

    fn open_stream(addr: SocketAddr, config: &RiskClientConfig) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(config.request_timeout))?;
        stream.set_write_timeout(Some(config.request_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// The registry this client's latency metrics land in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The server address this client currently talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points the client at a different server (a fleet router moving
    /// this key range to another node). The current stream is dropped
    /// without counting a poisoning — it is healthy, just no longer the
    /// right peer — and the failure streak is cleared so the new node
    /// starts from a clean backoff slate.
    pub fn retarget(&mut self, addr: SocketAddr) {
        if addr != self.addr {
            self.addr = addr;
            self.stream = None;
            self.consecutive_failures = 0;
        }
    }

    /// Whether the client currently holds a live (non-poisoned) stream.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Discards the current stream after an error. A timed-out request may
    /// still be answered later; reading those stale bytes as the next
    /// response would return a garbage verdict, so a stream that saw any
    /// error is never read again.
    fn poison(&mut self) {
        if self.stream.take().is_some() {
            self.poisoned.inc();
        }
    }

    fn ensure_connected(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = Self::open_stream(self.addr, &self.config)?;
            self.reconnects.inc();
            self.stream = Some(stream);
        }
        self.stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))
    }

    /// Sleeps the backoff for the current failure streak, recording the
    /// chosen interval into `client.backoff_micros` so tests can pin the
    /// schedule (including its reset-on-success) without timing a sleep.
    fn sleep_backoff(&mut self) {
        let delay = self.backoff(self.consecutive_failures);
        let micros = delay.as_micros().min(u128::from(u64::MAX)) as u64;
        self.backoff_taken.record(micros);
        thread::sleep(delay);
    }

    /// The jittered, capped exponential backoff before retry `attempt`
    /// (1-based): `base · 2^(attempt-1)` capped at `backoff_cap`, then
    /// jittered into `[d/2, d]` by the seeded ChaCha stream.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self
            .config
            .backoff_base
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let cap = self
            .config
            .backoff_cap
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let shift = attempt.saturating_sub(1).min(20);
        let full = base.saturating_mul(1u64 << shift).min(cap.max(base));
        let half = full / 2;
        // `full - half + 1` is always ≥ 1, so the modulo cannot divide by
        // zero and the result lands in [half, full].
        let jittered = half + self.rng.next_u64() % (full - half + 1);
        Duration::from_micros(jittered)
    }

    /// Submits one prepared submission and awaits the verdict, retrying
    /// on a fresh connection (with backoff) after any I/O failure.
    pub fn assess_submission(&mut self, sub: &Submission) -> io::Result<Verdict> {
        let frame = encode_submission(sub)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let header = frame_header(frame.len())?;
        self.requests.inc();
        let mut attempt: u32 = 0;
        loop {
            let span = Span::on(
                Arc::clone(&self.round_trip),
                Arc::clone(self.registry.clock()),
            );
            match self.try_verdict_exchange(&header, &frame) {
                Ok(v) => {
                    span.finish();
                    // A success ends the failure streak: the next blip
                    // backs off from `backoff_base` again instead of
                    // inheriting this connection's old escalation.
                    self.consecutive_failures = 0;
                    return Ok(v);
                }
                Err(e) => {
                    // Only completed round trips belong in the latency
                    // histogram; the failure is counted, not timed.
                    span.cancel();
                    self.poison();
                    self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                    if attempt >= self.config.max_retries {
                        self.errors.inc();
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries.inc();
                    self.sleep_backoff();
                }
            }
        }
    }

    /// One verdict exchange on the current (or a fresh) stream. Any error
    /// leaves the stream in an unknown state — the caller must poison.
    fn try_verdict_exchange(&mut self, header: &[u8; 2], frame: &[u8]) -> io::Result<Verdict> {
        let stream = self.ensure_connected()?;
        stream.write_all(header)?;
        stream.write_all(frame)?;
        let mut buf = [0u8; VERDICT_LEN];
        stream.read_exact(&mut buf)?;
        Verdict::decode(&buf)
            .map_err(|e: VerdictError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Convenience: probes a browser with `features`, ships the frame,
    /// returns the verdict — the in-page script plus uploader in one call.
    pub fn assess_browser(
        &mut self,
        features: &FeatureSet,
        browser: &BrowserInstance,
    ) -> io::Result<Verdict> {
        let mut session_id = [0u8; 16];
        for (dst, src) in session_id.iter_mut().zip(self.next_session.to_le_bytes()) {
            *dst = src;
        }
        self.next_session += 1;
        let sub = Submission {
            session_id,
            user_agent: browser.claimed_user_agent().to_ua_string(),
            values: features.extract(browser).values().to_vec(),
        };
        self.assess_submission(&sub)
    }

    /// Pulls the server's metrics snapshot over the wire (a `STATS`
    /// request frame, answered in order with a JSON snapshot), with the
    /// same poison-and-retry discipline as submissions.
    pub fn fetch_stats(&mut self) -> io::Result<Snapshot> {
        let req = encode_stats_request();
        let header = frame_header(req.len())?;
        let mut attempt: u32 = 0;
        loop {
            match self.try_stats_exchange(&header, &req) {
                Ok(snap) => {
                    self.stats_fetches.inc();
                    self.consecutive_failures = 0;
                    return Ok(snap);
                }
                Err(e) => {
                    self.poison();
                    self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                    if attempt >= self.config.max_retries {
                        self.stats_errors.inc();
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries.inc();
                    self.sleep_backoff();
                }
            }
        }
    }

    fn try_stats_exchange(&mut self, header: &[u8; 2], req: &[u8]) -> io::Result<Snapshot> {
        let stream = self.ensure_connected()?;
        stream.write_all(header)?;
        stream.write_all(req)?;
        let mut resp_header = [0u8; STATS_RESPONSE_HEADER_LEN];
        stream.read_exact(&mut resp_header)?;
        let len = decode_stats_response_header(&resp_header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        let json = String::from_utf8(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Snapshot::parse_json(&json)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable snapshot"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::VerdictStatus;
    use crate::server::start_risk_server;
    use browser_engine::{UserAgent, Vendor};
    use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};

    fn tiny_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (0.0, UserAgent::new(Vendor::Chrome, 60)),
            (10.0, UserAgent::new(Vendor::Chrome, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 2,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    #[test]
    fn client_round_trips_submissions() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        let sub = Submission {
            session_id: [1u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        let v = client.assess_submission(&sub).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);

        // Multiple submissions over one connection.
        let lying = Submission {
            values: vec![0, 0],
            ..sub
        };
        let v = client.assess_submission(&lying).unwrap();
        assert!(v.flagged);

        // Every round trip landed in the client's latency histogram, and
        // the fault-path counters stayed at zero.
        let snap = client.registry().snapshot();
        let h = snap
            .histograms
            .get(metric_names::ROUND_TRIP_MICROS)
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(snap.counters.get(metric_names::REQUESTS), Some(&2));
        assert_eq!(snap.counters.get(metric_names::ERRORS), Some(&0));
        assert_eq!(snap.counters.get(metric_names::RETRIES), Some(&0));
        assert_eq!(snap.counters.get(metric_names::POISONED), Some(&0));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn session_ids_increment() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.next_session, 1);
        // assess_browser uses the full 28-feature schema against a 2-wide
        // model: schema mismatch is the expected verdict; the session
        // counter must still advance.
        let b = browser_engine::BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 100));
        let v = client.assess_browser(&FeatureSet::table8(), &b).unwrap();
        assert_eq!(v.status, VerdictStatus::SchemaMismatch);
        assert_eq!(client.next_session, 2);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn fetch_stats_round_trips_a_snapshot() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        let sub = Submission {
            session_id: [1u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        client.assess_submission(&sub).unwrap();
        let snap = client.fetch_stats().unwrap();
        assert_eq!(
            snap.counters.get(crate::server::metric_names::ASSESSED),
            Some(&1)
        );
        assert_eq!(
            snap.counters
                .get(crate::server::metric_names::STATS_REQUESTS),
            Some(&1)
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn frame_header_rejects_untransmittable_lengths() {
        assert_eq!(frame_header(0).unwrap(), [0, 0]);
        assert_eq!(frame_header(3).unwrap(), [3, 0]);
        assert_eq!(
            frame_header(MAX_SUBMISSION_BYTES).unwrap(),
            (MAX_SUBMISSION_BYTES as u16).to_le_bytes()
        );
        // Over the submission budget: the server would kill the connection
        // on the oversize header, so the client refuses to send it.
        let e = frame_header(MAX_SUBMISSION_BYTES + 1).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        // Over u16: the old `len as u16` cast silently truncated this to
        // 4465, desyncing the stream. Now it is an input error.
        let e = frame_header(70_001).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn success_resets_the_failure_streak_and_retarget_clears_it() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        // Simulate a long failure streak inherited from a dead peer.
        client.consecutive_failures = 9;
        let sub = Submission {
            session_id: [2u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        client.assess_submission(&sub).unwrap();
        assert_eq!(
            client.consecutive_failures, 0,
            "a successful exchange must end the failure streak"
        );

        // Retargeting drops the (healthy) stream without a poison count
        // and starts the new node from a clean backoff slate.
        client.consecutive_failures = 3;
        let other = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        client.retarget(other.local_addr());
        assert_eq!(client.addr(), other.local_addr());
        assert!(!client.is_connected());
        assert_eq!(client.consecutive_failures, 0);
        let snap = client.registry().snapshot();
        assert_eq!(snap.counters.get(metric_names::POISONED), Some(&0));
        client.assess_submission(&sub).unwrap();
        drop(client);
        other.shutdown();
        server.shutdown();
    }

    #[test]
    fn backoff_is_capped_jittered_and_seeded() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let config = RiskClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            retry_seed: 7,
            ..Default::default()
        };
        let mut a = RiskClient::connect_with_config(
            server.local_addr(),
            Arc::new(Registry::monotonic()),
            config.clone(),
        )
        .unwrap();
        let mut b = RiskClient::connect_with_config(
            server.local_addr(),
            Arc::new(Registry::monotonic()),
            config,
        )
        .unwrap();
        for attempt in 1..=6u32 {
            let d_a = a.backoff(attempt);
            let full = Duration::from_millis((10 * (1 << (attempt - 1))).min(40));
            assert!(d_a >= full / 2 && d_a <= full, "attempt {attempt}: {d_a:?}");
            assert_eq!(d_a, b.backoff(attempt), "same seed, same jitter");
        }
        server.shutdown();
    }
}
