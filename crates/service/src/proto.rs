//! The verdict and stats wire formats.
//!
//! Requests reuse the fingerprint submission frame
//! ([`fingerprint::wire`]); the response is a fixed-size 8-byte verdict,
//! small enough that the whole exchange stays inside the paper's 1 KB /
//! 100 ms envelope with enormous margin.
//!
//! ```text
//! +------+-----+--------+---------+------+----------+----------+
//! | "BV" | ver | status | flagged | risk | pred. cl | exp. cl  |
//! | 2 B  | 1 B |  1 B   |   1 B   | 1 B  |   1 B    |   1 B    |
//! +------+-----+--------+---------+------+----------+----------+
//! ```
//!
//! A `STATS` request ([`fingerprint::wire::encode_stats_request`]) is
//! answered *in request order* with a variable-length snapshot frame
//! instead of a verdict:
//!
//! ```text
//! +------+-----+-------------+------------------+
//! | "BO" | ver | json length | snapshot JSON    |
//! | 2 B  | 1 B |   u32 LE    | ≤ 1 MiB          |
//! +------+-----+-------------+------------------+
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic prefix of a verdict frame.
pub const VERDICT_MAGIC: [u8; 2] = *b"BV";
/// Verdict wire version.
pub const VERDICT_VERSION: u8 = 1;
/// Encoded verdict size.
pub const VERDICT_LEN: usize = 8;
/// Sentinel for "no expected cluster" (unknown vendor).
const NO_CLUSTER: u8 = 0xFF;

/// Processing status of a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictStatus {
    /// The fingerprint was assessed.
    Assessed,
    /// The submission could not be decoded or its user-agent was
    /// unparseable; the session should be treated per policy for opaque
    /// clients.
    Malformed,
    /// The fingerprint's width did not match the serving model.
    SchemaMismatch,
    /// The server shed this frame under overload instead of queueing it
    /// behind the detector. No assessment was made; the login flow should
    /// treat the session per its unassessable policy
    /// ([`crate::RiskPolicy`]'s `on_unassessable`) — the fingerprint is
    /// one signal among many, and a busy risk server must never stall a
    /// login.
    Degraded,
}

impl VerdictStatus {
    fn to_byte(self) -> u8 {
        match self {
            VerdictStatus::Assessed => 0,
            VerdictStatus::Malformed => 1,
            VerdictStatus::SchemaMismatch => 2,
            VerdictStatus::Degraded => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(VerdictStatus::Assessed),
            1 => Some(VerdictStatus::Malformed),
            2 => Some(VerdictStatus::SchemaMismatch),
            3 => Some(VerdictStatus::Degraded),
            _ => None,
        }
    }
}

/// The service's answer to one fingerprint submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Processing status.
    pub status: VerdictStatus,
    /// Whether the session was flagged (meaningful only when `status` is
    /// [`VerdictStatus::Assessed`]).
    pub flagged: bool,
    /// Algorithm 1's risk factor (0–20).
    pub risk_factor: u8,
    /// Cluster the fingerprint landed in.
    pub predicted_cluster: u8,
    /// Cluster the claim was expected in, if the vendor was known.
    pub expected_cluster: Option<u8>,
}

impl Verdict {
    /// A non-assessment verdict (malformed / schema mismatch).
    pub fn error(status: VerdictStatus) -> Self {
        Self {
            status,
            flagged: false,
            risk_factor: 0,
            predicted_cluster: 0,
            expected_cluster: None,
        }
    }

    /// Encodes the fixed-size frame.
    pub fn encode(&self) -> [u8; VERDICT_LEN] {
        let [magic0, magic1] = VERDICT_MAGIC;
        [
            magic0,
            magic1,
            VERDICT_VERSION,
            self.status.to_byte(),
            self.flagged as u8,
            self.risk_factor,
            self.predicted_cluster,
            self.expected_cluster.unwrap_or(NO_CLUSTER),
        ]
    }

    /// Decodes a frame, validating every field. This parser faces the
    /// network, so it reads fields by destructuring the fixed-size array
    /// rather than indexing — there is no input that can make it panic.
    pub fn decode(frame: &[u8]) -> Result<Self, VerdictError> {
        let Ok([magic0, magic1, version, status, flag, risk, predicted, expected]) =
            <[u8; VERDICT_LEN]>::try_from(frame)
        else {
            return Err(VerdictError::BadLength(frame.len()));
        };
        if [magic0, magic1] != VERDICT_MAGIC {
            return Err(VerdictError::BadMagic);
        }
        if version != VERDICT_VERSION {
            return Err(VerdictError::BadVersion(version));
        }
        let status = VerdictStatus::from_byte(status).ok_or(VerdictError::BadStatus(status))?;
        if flag > 1 {
            return Err(VerdictError::BadFlag(flag));
        }
        Ok(Self {
            status,
            flagged: flag == 1,
            risk_factor: risk,
            predicted_cluster: predicted,
            expected_cluster: if expected == NO_CLUSTER {
                None
            } else {
                Some(expected)
            },
        })
    }
}

/// Magic prefix of a stats response frame.
pub const STATS_RESPONSE_MAGIC: [u8; 2] = *b"BO";
/// Stats response wire version.
pub const STATS_RESPONSE_VERSION: u8 = 1;
/// Size of a stats response header (magic + version + u32 length).
pub const STATS_RESPONSE_HEADER_LEN: usize = 7;
/// Hard cap on a stats response body, to bound client allocations.
pub const MAX_STATS_RESPONSE_BYTES: usize = 1 << 20;

/// Encodes a stats response frame around a rendered snapshot JSON body.
/// Bodies above [`MAX_STATS_RESPONSE_BYTES`] are truncated to an empty
/// object — a registry that large indicates a bug, and the serve path
/// must not fail or unwind on it.
pub fn encode_stats_response(json: &[u8]) -> Vec<u8> {
    let body: &[u8] = if json.len() <= MAX_STATS_RESPONSE_BYTES {
        json
    } else {
        b"{}"
    };
    let mut out = Vec::with_capacity(STATS_RESPONSE_HEADER_LEN + body.len());
    out.extend_from_slice(&STATS_RESPONSE_MAGIC);
    out.push(STATS_RESPONSE_VERSION);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Decodes a stats response header, returning the body length to read
/// next.
pub fn decode_stats_response_header(
    header: &[u8; STATS_RESPONSE_HEADER_LEN],
) -> Result<usize, StatsResponseError> {
    let [m0, m1, version, l0, l1, l2, l3] = *header;
    if [m0, m1] != STATS_RESPONSE_MAGIC {
        return Err(StatsResponseError::BadMagic);
    }
    if version != STATS_RESPONSE_VERSION {
        return Err(StatsResponseError::BadVersion(version));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_STATS_RESPONSE_BYTES {
        return Err(StatsResponseError::TooLarge(len));
    }
    Ok(len)
}

/// Errors decoding a stats response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsResponseError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unknown wire version.
    BadVersion(u8),
    /// Declared body length exceeds [`MAX_STATS_RESPONSE_BYTES`].
    TooLarge(usize),
}

impl fmt::Display for StatsResponseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsResponseError::BadMagic => write!(f, "bad stats response magic"),
            StatsResponseError::BadVersion(v) => write!(f, "unknown stats response version {v}"),
            StatsResponseError::TooLarge(n) => write!(
                f,
                "stats response length {n} exceeds {MAX_STATS_RESPONSE_BYTES}"
            ),
        }
    }
}

impl std::error::Error for StatsResponseError {}

/// Errors decoding a verdict frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictError {
    /// Frame length is not [`VERDICT_LEN`].
    BadLength(usize),
    /// Wrong magic bytes.
    BadMagic,
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Flag byte not 0/1.
    BadFlag(u8),
}

impl fmt::Display for VerdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictError::BadLength(n) => write!(f, "verdict frame length {n} != {VERDICT_LEN}"),
            VerdictError::BadMagic => write!(f, "bad verdict magic"),
            VerdictError::BadVersion(v) => write!(f, "unknown verdict version {v}"),
            VerdictError::BadStatus(s) => write!(f, "unknown verdict status {s}"),
            VerdictError::BadFlag(b) => write!(f, "flag byte {b} not boolean"),
        }
    }
}

impl std::error::Error for VerdictError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_assessed() {
        let v = Verdict {
            status: VerdictStatus::Assessed,
            flagged: true,
            risk_factor: 20,
            predicted_cluster: 7,
            expected_cluster: Some(2),
        };
        assert_eq!(Verdict::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn round_trip_no_expected_cluster() {
        let v = Verdict {
            status: VerdictStatus::Assessed,
            flagged: true,
            risk_factor: 20,
            predicted_cluster: 7,
            expected_cluster: None,
        };
        assert_eq!(Verdict::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn error_verdicts_encode() {
        for s in [
            VerdictStatus::Malformed,
            VerdictStatus::SchemaMismatch,
            VerdictStatus::Degraded,
        ] {
            let v = Verdict::error(s);
            let back = Verdict::decode(&v.encode()).unwrap();
            assert_eq!(back.status, s);
            assert!(!back.flagged);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Verdict::decode(&[]), Err(VerdictError::BadLength(0)));
        let mut f = Verdict::error(VerdictStatus::Assessed).encode();
        f[0] = b'X';
        assert_eq!(Verdict::decode(&f), Err(VerdictError::BadMagic));
        let mut f = Verdict::error(VerdictStatus::Assessed).encode();
        f[2] = 9;
        assert_eq!(Verdict::decode(&f), Err(VerdictError::BadVersion(9)));
        let mut f = Verdict::error(VerdictStatus::Assessed).encode();
        f[3] = 9;
        assert_eq!(Verdict::decode(&f), Err(VerdictError::BadStatus(9)));
        let mut f = Verdict::error(VerdictStatus::Assessed).encode();
        f[4] = 2;
        assert_eq!(Verdict::decode(&f), Err(VerdictError::BadFlag(2)));
    }

    #[test]
    fn stats_response_round_trips() {
        let body = br#"{"counters":{"server.batches":3}}"#;
        let frame = encode_stats_response(body);
        assert_eq!(frame.len(), STATS_RESPONSE_HEADER_LEN + body.len());
        let mut header = [0u8; STATS_RESPONSE_HEADER_LEN];
        header.copy_from_slice(&frame[..STATS_RESPONSE_HEADER_LEN]);
        let len = decode_stats_response_header(&header).unwrap();
        assert_eq!(len, body.len());
        assert_eq!(&frame[STATS_RESPONSE_HEADER_LEN..], body);
    }

    #[test]
    fn stats_response_header_rejects_malformed() {
        let mut h = [0u8; STATS_RESPONSE_HEADER_LEN];
        h.copy_from_slice(&encode_stats_response(b"{}")[..STATS_RESPONSE_HEADER_LEN]);
        let mut bad = h;
        bad[0] = b'X';
        assert_eq!(
            decode_stats_response_header(&bad),
            Err(StatsResponseError::BadMagic)
        );
        let mut bad = h;
        bad[2] = 9;
        assert_eq!(
            decode_stats_response_header(&bad),
            Err(StatsResponseError::BadVersion(9))
        );
        let mut bad = h;
        bad[3..7].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_stats_response_header(&bad),
            Err(StatsResponseError::TooLarge(_))
        ));
    }

    #[test]
    fn oversized_stats_body_is_replaced_not_panicking() {
        let huge = vec![b'x'; MAX_STATS_RESPONSE_BYTES + 1];
        let frame = encode_stats_response(&huge);
        assert_eq!(&frame[STATS_RESPONSE_HEADER_LEN..], b"{}");
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = Verdict::decode(&bytes);
        }

        #[test]
        fn prop_round_trip(
            flagged in any::<bool>(),
            risk in 0u8..=20,
            pred in 0u8..16,
            exp in proptest::option::of(0u8..16),
        ) {
            let v = Verdict {
                status: VerdictStatus::Assessed,
                flagged,
                risk_factor: risk,
                predicted_cluster: pred,
                expected_cluster: exp,
            };
            prop_assert_eq!(Verdict::decode(&v.encode()).unwrap(), v);
        }
    }
}
