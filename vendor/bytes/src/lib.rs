//! Offline vendored subset of the `bytes` crate: [`Buf`] over `&[u8]`,
//! [`BufMut`] over growable buffers, and the [`Bytes`] / [`BytesMut`]
//! owned types — just enough for the wire codecs in this workspace.
//! Semantics match the real crate for the methods provided (including
//! panicking on out-of-bounds reads, which callers guard with
//! [`Buf::remaining`]).

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read-side cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Next little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Next little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Copy `len` bytes into an owned [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes(out)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side extension for growable byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An owned immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Wrap owned bytes.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(v)
    }

    /// Copy into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Drop the contents.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 6);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        let tail = cursor.copy_to_bytes(3);
        assert_eq!(tail.to_vec(), b"abc");
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
