//! Good twin of `atomic_bad.rs`: the publish/subscribe pair uses
//! Release/Acquire, and the stop flag is sequentially consistent.
pub fn publish_release(epoch: &AtomicU64, stop: &AtomicBool) {
    epoch.store(1, Ordering::Release);
    stop.store(true, Ordering::SeqCst);
}

pub fn subscribe_acquire(epoch: &AtomicU64) -> u64 {
    epoch.load(Ordering::Acquire)
}
