//! Regression test for the cached-verdict / model-epoch race.
//!
//! The hazard: a submission assessed and cached under model v1 must
//! never be answered from cache after the orchestrator `publish`es and
//! `swap`s in v2 — a stale `risk_factor` escaping the cache would make
//! model rollout silently non-atomic from the client's point of view.
//!
//! The fix under test: every cache entry carries the model epoch it was
//! assessed under, `RiskServerHandle::swap_detector` bumps the epoch
//! *after* the new detector is visible, and lookups from older epochs
//! report `Stale` and re-assess (counted by `cache.stale_epoch`).
//!
//! Both scenarios run against both connection cores via
//! `for_each_backend`: the cache layer sits behind the shared batch path,
//! so the epoch guarantees must be backend-independent.

mod common;

use browser_engine::{UserAgent, Vendor};
use common::for_each_backend;
use fingerprint::{encode_submission, FeatureSet, Submission};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::server::{start_risk_server_with, RiskServerConfig, RiskServerHandle};
use polygraph_service::{ModelRegistry, Verdict, VerdictStatus};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Chrome 60 lives at (0,0); the probe frame below is honest.
fn model_v1() -> TrainedModel {
    fit(&[
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
        (20.0, UserAgent::new(Vendor::Firefox, 100)),
    ])
}

/// Chrome 60 moves to (10,10); the same probe frame is now a lie.
fn model_v2() -> TrainedModel {
    fit(&[
        (10.0, UserAgent::new(Vendor::Chrome, 60)),
        (0.0, UserAgent::new(Vendor::Firefox, 60)),
        (20.0, UserAgent::new(Vendor::Firefox, 100)),
    ])
}

fn fit(clusters: &[(f64, UserAgent)]) -> TrainedModel {
    let mut set = TrainingSet::new(2);
    for &(base, ua) in clusters {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .unwrap();
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 3,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    };
    TrainedModel::fit(fs, &set, config).unwrap()
}

/// The probe: Chrome 60 claiming fingerprint (0,0). Honest under v1,
/// flagged under v2. The session id varies per ask so cache hits prove
/// session-invariant keying, not byte-identical frames.
fn ask(addr: std::net::SocketAddr, session_tag: u8) -> Verdict {
    let sub = Submission {
        session_id: [session_tag; 16],
        user_agent: UserAgent::new(Vendor::Chrome, 60).to_ua_string(),
        values: vec![0, 0],
    };
    let frame = encode_submission(&sub).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .write_all(&(frame.len() as u16).to_le_bytes())
        .unwrap();
    stream.write_all(&frame).unwrap();
    let mut buf = [0u8; polygraph_service::proto::VERDICT_LEN];
    stream.read_exact(&mut buf).unwrap();
    Verdict::decode(&buf).unwrap()
}

fn cached_server(base: RiskServerConfig) -> RiskServerHandle {
    let config = RiskServerConfig {
        cache_shards: 4,
        cache_capacity: 1024,
        ..base
    };
    start_risk_server_with("127.0.0.1:0", Detector::new(model_v1()), config).unwrap()
}

#[test]
fn cached_v1_verdict_never_survives_publish_and_swap_to_v2() {
    for_each_backend(|config, backend| {
        let server = cached_server(config);
        let addr = server.local_addr();
        assert_eq!(server.cache_epoch(), Some(0));

        // Two asks under v1 from *different sessions*: the first misses and
        // populates the cache, the second is answered from it.
        let first = ask(addr, 1);
        assert_eq!(first.status, VerdictStatus::Assessed);
        assert!(!first.flagged, "v1 knows Chrome 60 at (0,0)");
        let second = ask(addr, 2);
        assert_eq!(second, first, "a cache hit returns the identical verdict");
        let stats = server.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.assessed, 2, "a cached answer is still an assessment");

        // The orchestrator's rollout sequence: publish v2, swap it in.
        let dir = std::env::temp_dir().join(format!(
            "polygraph-cache-epoch-test-{}-{backend}",
            std::process::id()
        ));
        let registry = ModelRegistry::open(&dir).unwrap();
        let v2 = model_v2();
        registry.publish(&v2).unwrap();
        server.swap_detector(Detector::new(registry.load_latest().unwrap().unwrap()));
        assert_eq!(server.cache_epoch(), Some(1), "swap bumps the epoch");

        // The same (fingerprint, UA) pair must now be re-assessed under v2:
        // the v1 entry is stale, not served.
        let after = ask(addr, 3);
        assert_eq!(after.status, VerdictStatus::Assessed);
        assert!(after.flagged, "v2 says (0,0) is not Chrome 60 — flagged");
        assert_ne!(
            after.risk_factor, first.risk_factor,
            "no stale v1 risk_factor may escape the cache after the swap"
        );
        let stats = server.stats();
        assert_eq!(stats.cache_stale_epoch, 1, "the v1 entry was seen stale");
        assert_eq!(stats.cache_misses, 2, "stale lookups count as misses");
        assert_eq!(stats.cache_hits, 1, "no hit crossed the swap");

        // The re-assessment refreshed the entry at epoch 1: hits resume,
        // serving the v2 verdict.
        let refreshed = ask(addr, 4);
        assert_eq!(refreshed, after);
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_stale_epoch, 1);

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Regression: `cache.occupancy` must gauge *current-epoch* entries
/// only. The old gauge counted every resident slot, so after a swap the
/// stale v1 entries (which can never serve a hit, they await CLOCK
/// eviction) were reported as live cache — here that would read 2 where
/// the truth is 1.
#[test]
fn occupancy_gauge_excludes_stale_epoch_slots_across_a_swap() {
    let occupancy = |server: &RiskServerHandle| -> i64 {
        server
            .snapshot()
            .gauges
            .get("cache.occupancy")
            .copied()
            .unwrap_or(-1)
    };
    let ask_honest_chrome100 = |addr: std::net::SocketAddr, tag: u8| {
        let sub = Submission {
            session_id: [tag; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        let frame = encode_submission(&sub).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .write_all(&(frame.len() as u16).to_le_bytes())
            .unwrap();
        stream.write_all(&frame).unwrap();
        let mut buf = [0u8; polygraph_service::proto::VERDICT_LEN];
        stream.read_exact(&mut buf).unwrap();
        Verdict::decode(&buf).unwrap()
    };
    for_each_backend(|config, backend| {
        let server = cached_server(config);
        let addr = server.local_addr();

        // One key cached under v1 (a second session hits it): one live
        // entry on the gauge.
        ask(addr, 1);
        ask(addr, 2);
        assert_eq!(occupancy(&server), 1, "[{backend}] one v1 entry live");

        // Swap to v2, then cache a *different* key. The v1 slot stays
        // resident (stale, awaiting sweep) — only the v2 entry is live.
        server.swap_detector(Detector::new(model_v2()));
        ask_honest_chrome100(addr, 3);
        assert_eq!(
            occupancy(&server),
            1,
            "[{backend}] the stale v1 slot must not be gauged as occupancy"
        );

        // Re-asking the first key refreshes it at the new epoch: now two
        // entries are genuinely live.
        ask(addr, 4);
        assert_eq!(
            occupancy(&server),
            2,
            "[{backend}] refreshed entries count again"
        );
        let stats = server.stats();
        assert_eq!(stats.cache_stale_epoch, 1, "[{backend}] v1 slot seen stale");
        server.shutdown();
    });
}

#[test]
fn disabled_cache_reports_nothing_and_swap_is_unaffected() {
    for_each_backend(|config, backend| {
        // cache_capacity 0 (the default): no cache metrics, no epoch, and
        // repeated identical submissions are all assessed by the detector.
        let server =
            start_risk_server_with("127.0.0.1:0", Detector::new(model_v1()), config).unwrap();
        let addr = server.local_addr();
        assert_eq!(server.cache_epoch(), None);
        for tag in 0..3 {
            assert!(!ask(addr, tag).flagged);
        }
        server.swap_detector(Detector::new(model_v2()));
        assert!(ask(addr, 9).flagged);
        let stats = server.stats();
        assert_eq!(stats.assessed, 4);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        let snapshot = server.snapshot();
        assert!(
            !snapshot.counters.keys().any(|k| k.starts_with("cache.")),
            "[{backend}] a disabled cache must not register metrics (exposition golden)"
        );
        server.shutdown();
    });
}
