//! # polygraph-service
//!
//! The deployment layer the paper describes around its model (Figure 1,
//! §6.5–6.6): the pieces that turn a [`polygraph_core::TrainedModel`]
//! into a continuously-running risk-based-authentication component.
//!
//! * [`proto`] — the verdict wire format: a session submits its ≤1 KB
//!   fingerprint frame and receives a compact assessment (flagged +
//!   `risk_factor`) the login flow can act on.
//! * [`framing`] — the panic-free u16-length-prefixed request framing
//!   shared by both server backends and their tests, including the
//!   resumable per-connection [`framing::FrameAccumulator`].
//! * [`reactor`] — a hand-rolled poll/readiness layer over non-blocking
//!   sockets plus the explicit per-connection state machine
//!   ([`reactor::ConnMachine`]) behind the event-driven backend.
//! * [`server`] — the TCP risk service with a hot-swappable detector:
//!   retraining never drops a connection. Two interchangeable connection
//!   cores sit behind [`server::ServerBackend`] — thread-per-connection
//!   (default) and the multiplexed reactor — with identical verdict
//!   streams and counters. Fully instrumented with a `polygraph-obs`
//!   registry, exposed over the wire via `STATS` frames.
//! * [`client`] — the matching client.
//! * [`registry`] — a versioned on-disk model store (JSON), with atomic
//!   publish and latest-model lookup.
//! * [`orchestrator`] — the §6.6 loop: run drift checkpoints on fresh
//!   traffic, retrain when a release shifts, validate, publish, swap.
//! * [`fleet`] — web-scale horizontal layer: a consistent-hash
//!   [`fleet::FleetRouter`] over N in-process risk servers, a
//!   router-aware failover client, and a [`fleet::RolloutController`]
//!   that promotes a registry-published model canary → 50% → full with
//!   per-node verdict-divergence gates.
//! * [`policy`] — mapping risk factors to authentication actions (allow /
//!   step-up / deny), the "risk-based authentication" integration point.
//! * [`chaos`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   and a test-only TCP proxy that tears frames, stalls reads past
//!   deadlines, drips bytes, and resets connections mid-verdict, so the
//!   client's poison/retry discipline and the server's degradation ladder
//!   are pinned by reproducible tests instead of assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The deployment layer answers `Malformed`, it never unwinds: backs the
// panic-safety zone of `cargo xtask lint` (POLY-P001..P004) with clippy's
// equivalents. Tests keep their unwraps.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented,
        clippy::indexing_slicing
    )
)]

pub mod chaos;
pub mod client;
pub mod fleet;
pub mod framing;
pub mod orchestrator;
pub mod policy;
pub mod proto;
pub mod reactor;
pub mod registry;
pub mod server;

pub use chaos::{start_chaos_proxy, ChaosProxy, FaultConfig, FaultPlan};
pub use client::{RiskClient, RiskClientConfig};
pub use fleet::{
    FleetClient, FleetConfig, FleetRouter, RiskFleet, RolloutController, RolloutStage, RolloutStep,
};
pub use orchestrator::{
    Orchestrator, OrchestratorConfig, RetrainOutcome, ShadowConfig, SwapPolicy,
};
pub use policy::{AuthAction, RiskPolicy};
pub use proto::{Verdict, VerdictStatus};
pub use registry::ModelRegistry;
pub use server::{
    start_risk_server, start_risk_server_with, RiskServerConfig, RiskServerHandle, RiskServerStats,
    ServerBackend, MAX_BATCH_PER_GUARD,
};
