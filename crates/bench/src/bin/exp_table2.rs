//! Table 2 (§3) and §7.5: service time and storage requirements of the
//! fine-grained baselines versus Browser Polygraph.
//!
//! The baseline numbers combine measured payload sizes (the simulators
//! reproduce the real tools' data volumes) with the paper's measured
//! service times (network + in-page execution cannot be measured in a
//! simulation). Browser Polygraph's path is measured for real: 28 probes,
//! wire encoding, a loopback TCP round-trip through the collection
//! service, and model inference.

use baselines::collectors::{collect, BaselineTool};
use browser_engine::{BrowserInstance, Os, UserAgent, Vendor};
use fingerprint::{encode_submission, FeatureSet, Submission};
use polygraph_bench::{header, parse_options, report, train_paper_model};
use polygraph_core::Detector;
use std::time::Instant;
use traffic::collect::{start_collector, CollectorClient};

fn main() {
    let opts = parse_options();
    let fs = FeatureSet::table8();
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));

    header("Table 2: storage requirement (payload bytes)");
    for (tool, paper) in [
        (BaselineTool::AmIUnique, "~60KB"),
        (BaselineTool::FingerprintJs, "~23KB"),
        (BaselineTool::ClientJs, "~10KB"),
    ] {
        let out = collect(tool, &browser, Os::Windows10, 42, 42);
        report(tool.name(), paper, &format!("{} B", out.payload_bytes()));
    }
    let submission = Submission {
        session_id: [1u8; 16],
        user_agent: browser.claimed_user_agent().to_ua_string(),
        values: fs.extract(&browser).values().to_vec(),
    };
    let wire = encode_submission(&submission).expect("within budget");
    report(
        "Browser Polygraph (28 features, wire frame)",
        "1KB",
        &format!("{} B", wire.len()),
    );
    let full = Submission {
        values: FeatureSet::candidates_513()
            .extract(&browser)
            .values()
            .to_vec(),
        ..submission.clone()
    };
    let full_wire = encode_submission(&full).expect("within budget");
    report(
        "Browser Polygraph (full 513-candidate collection)",
        "<=1KB",
        &format!("{} B", full_wire.len()),
    );

    header("Table 2: average service time (5 visits)");
    for (tool, paper) in [
        (BaselineTool::AmIUnique, "~1.5s"),
        (BaselineTool::FingerprintJs, "51ms"),
        (BaselineTool::ClientJs, "37ms"),
    ] {
        report(
            tool.name(),
            paper,
            &format!("{} ms (modelled)", tool.modelled_service_time().as_millis()),
        );
    }

    // Browser Polygraph measured end-to-end on loopback: probe extraction
    // + wire encode + TCP submit + decode, averaged over 5 visits as the
    // paper did.
    let server = start_collector("127.0.0.1:0").expect("bind loopback");
    let mut client = CollectorClient::connect(server.local_addr()).expect("connect");
    let start = Instant::now();
    for visit in 0..5u8 {
        let sub = Submission {
            session_id: [visit; 16],
            user_agent: browser.claimed_user_agent().to_ua_string(),
            values: fs.extract(&browser).values().to_vec(),
        };
        client.submit(&sub).expect("loopback submit");
    }
    let elapsed = start.elapsed();
    report(
        "Browser Polygraph (measured: probe+wire+TCP)",
        "6ms",
        &format!("{:.3} ms", elapsed.as_secs_f64() * 1000.0 / 5.0),
    );
    drop(client);
    server.shutdown();

    header("§7.5: online inference cost (after training)");
    println!("  training a model on {} sessions first ...", opts.sessions);
    let (model, data) = train_paper_model(opts);
    let detector = Detector::new(model);
    let sample: Vec<_> = data.sessions.iter().take(10_000).collect();
    let start = Instant::now();
    let mut flagged = 0usize;
    for s in &sample {
        if detector
            .assess(&s.row(), s.claimed)
            .expect("assess")
            .flagged
        {
            flagged += 1;
        }
    }
    let per_session = start.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;
    report(
        "model inference per session",
        "(within 6ms budget)",
        &format!("{per_session:.2} µs"),
    );
    println!("  ({flagged} of {} sample sessions flagged)", sample.len());
}
