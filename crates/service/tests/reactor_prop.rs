//! Property tests for the reactor's per-connection state machine
//! ([`ConnMachine`]): arbitrary seeded interleavings of partial reads,
//! partial writes, and readiness events must never drop, duplicate, or
//! reorder a frame — and the reply byte stream must come out exactly as
//! if the connection had been served synchronously.
//!
//! The machine is pure with respect to I/O, so these tests drive it the
//! same way the reactor event loop does (bytes in via `on_bytes`,
//! batches out via `take_frames`, replies out via `flush_into`) but with
//! adversarial schedules no real socket would reliably produce.

use polygraph_service::reactor::{ConnMachine, ConnPhase};
use proptest::prelude::*;
use std::io::{self, Write};

/// Deterministic pseudo-random byte for a (seed, index) pair.
fn mix(seed: u64, i: u64) -> u8 {
    (seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as u8
}

/// Builds the wire image of `lens` frames with deterministic bodies.
fn wire_image(lens: &[u16], seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut wire = Vec::new();
    let mut bodies = Vec::new();
    for (f, &len) in lens.iter().enumerate() {
        let body: Vec<u8> = (0..len as u64)
            .map(|i| mix(seed ^ ((f as u64) << 32), i))
            .collect();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&body);
        bodies.push(body);
    }
    (wire, bodies)
}

/// Splits `wire` into chunks at pseudo-random boundaries derived from
/// `seed` — each chunk is one simulated readable event's delivery.
fn chunked(wire: &[u8], seed: u64) -> Vec<&[u8]> {
    let mut chunks = Vec::new();
    let mut at = 0usize;
    let mut i = 0u64;
    while at < wire.len() {
        let step = 1 + mix(seed, i) as usize % 7;
        let end = (at + step).min(wire.len());
        chunks.push(&wire[at..end]);
        at = end;
        i += 1;
    }
    chunks
}

/// The deterministic reply the simulated server writes for frame number
/// `idx` with body `frame` — variable length, so partial flushes tear
/// replies at every possible offset.
fn reply_for(frame: &[u8], idx: usize) -> Vec<u8> {
    let tag = frame.iter().fold(idx as u64, |acc, &b| {
        acc.wrapping_mul(31).wrapping_add(b as u64)
    });
    (0..(1 + idx % 9)).map(|i| mix(tag, i as u64)).collect()
}

/// A sink that accepts a bounded number of bytes, then `WouldBlock`s —
/// the pure-logic stand-in for a socket whose send buffer fills.
struct ThrottledSink {
    accepted: Vec<u8>,
    budget: usize,
}

impl Write for ThrottledSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
        }
        let n = buf.len().min(self.budget);
        self.accepted.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    /// The core conformance property: under any interleaving of torn
    /// reads, bounded batch takes, and throttled partial writes, every
    /// frame is taken exactly once, in order, and the reply stream is
    /// byte-identical to a synchronous serve.
    #[test]
    fn no_frame_dropped_duplicated_or_reordered(
        lens in proptest::collection::vec(0u16..120, 0..12),
        body_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let (wire, bodies) = wire_image(&lens, body_seed);
        let mut machine = ConnMachine::new();
        let mut sink = ThrottledSink { accepted: Vec::new(), budget: 0 };
        let mut taken: Vec<Vec<u8>> = Vec::new();
        let mut queued_total = 0usize;

        for (step, chunk) in chunked(&wire, chunk_seed).into_iter().enumerate() {
            // One readable event delivers this chunk.
            machine.on_bytes(chunk);
            let r = mix(sched_seed, step as u64);

            // Sometimes the "server" takes a (bounded) batch and queues
            // replies; sometimes the event loop moves on and the frames
            // wait — both must be safe.
            if !r.is_multiple_of(3) {
                let max = 1 + r as usize % 4;
                let (frames, oversize) = machine.take_frames(max);
                prop_assert!(!oversize, "no oversize frames were sent");
                prop_assert!(frames.len() <= max);
                for f in frames {
                    let reply = reply_for(&f, taken.len());
                    queued_total += reply.len();
                    machine.queue_output(&reply, false);
                    taken.push(f);
                }
            }

            // One writable event flushes under a random budget — often
            // tearing a reply mid-byte-stream.
            sink.budget += r as usize % 48;
            let progress = machine.flush_into(&mut sink).unwrap();
            prop_assert_eq!(
                machine.pending_output(),
                queued_total - sink.accepted.len(),
                "the machine's unflushed count must reconcile with the sink"
            );
            if !progress.complete {
                prop_assert!(machine.wants_write());
                prop_assert_eq!(machine.phase(), ConnPhase::Writing);
            }
        }

        // The stream has fully arrived: drain every remaining frame,
        // then flush without throttling.
        loop {
            let (frames, oversize) = machine.take_frames(32);
            prop_assert!(!oversize);
            if frames.is_empty() {
                break;
            }
            for f in frames {
                let reply = reply_for(&f, taken.len());
                queued_total += reply.len();
                machine.queue_output(&reply, false);
                taken.push(f);
            }
        }
        sink.budget = usize::MAX;
        let progress = machine.flush_into(&mut sink).unwrap();
        prop_assert!(progress.complete);
        prop_assert_eq!(sink.accepted.len(), queued_total);

        // No frame dropped, duplicated, or reordered...
        prop_assert_eq!(&taken, &bodies);
        // ...and the reply bytes are exactly the synchronous serve's.
        let expected: Vec<u8> = bodies
            .iter()
            .enumerate()
            .flat_map(|(i, b)| reply_for(b, i))
            .collect();
        prop_assert_eq!(&sink.accepted, &expected);

        // The machine settles: nothing buffered, nothing pending, Idle.
        prop_assert!(!machine.wants_write());
        prop_assert!(!machine.has_partial_input());
        prop_assert_eq!(machine.frames_ready(), 0);
        prop_assert_eq!(machine.phase(), ConnPhase::Idle);
    }

    /// An oversize header mid-stream: every preceding frame is still
    /// taken and answered, then the machine closes — and once closing it
    /// never yields another frame, no matter what else arrives.
    #[test]
    fn oversize_closes_after_answering_preceding_frames(
        lens in proptest::collection::vec(0u16..120, 0..8),
        body_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
        oversize_len in 1025u16..u16::MAX,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (mut wire, bodies) = wire_image(&lens, body_seed);
        wire.extend_from_slice(&oversize_len.to_le_bytes());
        wire.extend_from_slice(&garbage);

        let mut machine = ConnMachine::new();
        let mut taken: Vec<Vec<u8>> = Vec::new();
        let mut saw_oversize = false;
        for chunk in chunked(&wire, chunk_seed) {
            machine.on_bytes(chunk);
            loop {
                let (frames, oversize) = machine.take_frames(4);
                let drained = frames.is_empty();
                taken.extend(frames);
                if oversize {
                    saw_oversize = true;
                    // The serve path answers what came before, then
                    // requests a close.
                    machine.queue_output(b"ERR", true);
                    break;
                }
                if drained {
                    break;
                }
            }
            if saw_oversize {
                break;
            }
        }
        prop_assert!(saw_oversize, "the oversize header must surface");
        prop_assert_eq!(&taken, &bodies);

        // A closing machine accepts no further frames, even if more
        // complete-looking bytes arrive after the poisoned header.
        machine.on_bytes(&3u16.to_le_bytes());
        machine.on_bytes(b"abc");
        prop_assert_eq!(machine.frames_ready(), 0);
        prop_assert!(machine.close_requested());
        prop_assert!(!machine.should_close(), "reply still unflushed");

        let mut sink = ThrottledSink { accepted: Vec::new(), budget: usize::MAX };
        let progress = machine.flush_into(&mut sink).unwrap();
        prop_assert!(progress.complete);
        prop_assert_eq!(&sink.accepted, b"ERR");
        prop_assert!(machine.should_close());
    }

    /// Phase bookkeeping: the machine reports `Reading` only while input
    /// is buffered short of a frame, `Writing` only while output is
    /// pending, and returns to `Idle` when drained — under any chunking.
    #[test]
    fn phases_track_buffered_state(
        lens in proptest::collection::vec(0u16..60, 1..6),
        body_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
    ) {
        let (wire, bodies) = wire_image(&lens, body_seed);
        let mut machine = ConnMachine::new();
        let mut taken = 0usize;
        prop_assert_eq!(machine.phase(), ConnPhase::Idle);
        for chunk in chunked(&wire, chunk_seed) {
            machine.on_bytes(chunk);
            if machine.frames_ready() > 0 {
                let (frames, _) = machine.take_frames(usize::MAX);
                taken += frames.len();
                prop_assert_eq!(machine.phase(), ConnPhase::Assessing);
                machine.queue_output(b"ok", false);
                prop_assert_eq!(machine.phase(), ConnPhase::Writing);
                let mut sink = ThrottledSink { accepted: Vec::new(), budget: usize::MAX };
                machine.flush_into(&mut sink).unwrap();
            }
            let phase = machine.phase();
            if machine.has_partial_input() {
                prop_assert_eq!(phase, ConnPhase::Reading);
            } else {
                prop_assert_eq!(phase, ConnPhase::Idle);
            }
        }
        prop_assert_eq!(taken, bodies.len());
    }
}
