//! # browser-polygraph
//!
//! A faithful, from-scratch Rust reproduction of **Browser Polygraph**
//! (Kalantari et al., IMC 2024): efficient deployment of coarse-grained
//! browser fingerprints for web-scale detection of fraud browsers.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! * [`ml`] — the from-scratch ML substrate (scaler, PCA, k-means,
//!   isolation forest, entropy/anonymity metrics).
//! * [`engine`] — the deterministic web-platform simulation (engines, eras,
//!   prototype shapes, configuration perturbations).
//! * [`fingerprint`] — probe sets, candidate generation, feature vectors
//!   and the ≤1 KB wire format.
//! * [`fraud`] — anti-detect ("fraud") browser simulators, categories 1–4.
//! * [`traffic`] — web-scale session generation with FinOrg-style risk
//!   tags, plus the framed TCP collection service.
//! * [`core`] — the Browser Polygraph pipeline itself: pre-processing,
//!   training, fraud detection with risk factors, drift detection.
//! * [`baselines`] — fine-grained fingerprinting baselines for the paper's
//!   comparisons.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]

pub use baselines;
pub use browser_engine as engine;
pub use fingerprint;
pub use fraud_browsers as fraud;
pub use polygraph_core as core;
pub use polygraph_ml as ml;
pub use polygraph_obs as obs;
pub use polygraph_service as service;
pub use traffic;
