//! Client for the risk-assessment service.

use crate::proto::{
    decode_stats_response_header, Verdict, VerdictError, STATS_RESPONSE_HEADER_LEN, VERDICT_LEN,
};
use browser_engine::BrowserInstance;
use fingerprint::{encode_stats_request, encode_submission, FeatureSet, Submission};
use polygraph_obs::{Counter, Histogram, Registry, Snapshot, Span};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Metric names the client records into its registry.
pub mod metric_names {
    /// Submit-to-verdict latency in µs (histogram).
    pub const ROUND_TRIP_MICROS: &str = "client.round_trip_micros";
    /// Submissions sent (counter).
    pub const REQUESTS: &str = "client.requests";
    /// `STATS` snapshots fetched (counter).
    pub const STATS_FETCHES: &str = "client.stats_fetches";
}

/// A connection to a risk server.
pub struct RiskClient {
    stream: TcpStream,
    next_session: u64,
    registry: Arc<Registry>,
    round_trip: Arc<Histogram>,
    requests: Arc<Counter>,
    stats_fetches: Arc<Counter>,
}

impl RiskClient {
    /// Connects to a risk server, recording round-trip latency into a
    /// private monotonic-clock registry (see [`RiskClient::registry`]).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, Arc::new(Registry::monotonic()))
    }

    /// [`RiskClient::connect`] recording into a shared (possibly
    /// deterministically-clocked) registry.
    pub fn connect_with(addr: SocketAddr, registry: Arc<Registry>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_session: 1,
            round_trip: registry.histogram(metric_names::ROUND_TRIP_MICROS),
            requests: registry.counter(metric_names::REQUESTS),
            stats_fetches: registry.counter(metric_names::STATS_FETCHES),
            registry,
        })
    }

    /// The registry this client's latency metrics land in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Submits one prepared submission and awaits the verdict.
    pub fn assess_submission(&mut self, sub: &Submission) -> io::Result<Verdict> {
        let frame = encode_submission(sub)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.requests.inc();
        let span = Span::on(
            Arc::clone(&self.round_trip),
            Arc::clone(self.registry.clock()),
        );
        self.stream.write_all(&(frame.len() as u16).to_le_bytes())?;
        self.stream.write_all(&frame)?;
        let mut buf = [0u8; VERDICT_LEN];
        self.stream.read_exact(&mut buf)?;
        span.finish();
        Verdict::decode(&buf)
            .map_err(|e: VerdictError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Convenience: probes a browser with `features`, ships the frame,
    /// returns the verdict — the in-page script plus uploader in one call.
    pub fn assess_browser(
        &mut self,
        features: &FeatureSet,
        browser: &BrowserInstance,
    ) -> io::Result<Verdict> {
        let mut session_id = [0u8; 16];
        for (dst, src) in session_id.iter_mut().zip(self.next_session.to_le_bytes()) {
            *dst = src;
        }
        self.next_session += 1;
        let sub = Submission {
            session_id,
            user_agent: browser.claimed_user_agent().to_ua_string(),
            values: features.extract(browser).values().to_vec(),
        };
        self.assess_submission(&sub)
    }

    /// Pulls the server's metrics snapshot over the wire (a `STATS`
    /// request frame, answered in order with a JSON snapshot).
    pub fn fetch_stats(&mut self) -> io::Result<Snapshot> {
        let req = encode_stats_request();
        self.stream.write_all(&(req.len() as u16).to_le_bytes())?;
        self.stream.write_all(&req)?;
        let mut header = [0u8; STATS_RESPONSE_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let len = decode_stats_response_header(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        self.stats_fetches.inc();
        let json = String::from_utf8(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Snapshot::parse_json(&json)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable snapshot"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::VerdictStatus;
    use crate::server::start_risk_server;
    use browser_engine::{UserAgent, Vendor};
    use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};

    fn tiny_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (0.0, UserAgent::new(Vendor::Chrome, 60)),
            (10.0, UserAgent::new(Vendor::Chrome, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 2,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    #[test]
    fn client_round_trips_submissions() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        let sub = Submission {
            session_id: [1u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        let v = client.assess_submission(&sub).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);

        // Multiple submissions over one connection.
        let lying = Submission {
            values: vec![0, 0],
            ..sub
        };
        let v = client.assess_submission(&lying).unwrap();
        assert!(v.flagged);

        // Every round trip landed in the client's latency histogram.
        let snap = client.registry().snapshot();
        let h = snap
            .histograms
            .get(metric_names::ROUND_TRIP_MICROS)
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(snap.counters.get(metric_names::REQUESTS), Some(&2));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn session_ids_increment() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.next_session, 1);
        // assess_browser uses the full 28-feature schema against a 2-wide
        // model: schema mismatch is the expected verdict; the session
        // counter must still advance.
        let b = browser_engine::BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 100));
        let v = client.assess_browser(&FeatureSet::table8(), &b).unwrap();
        assert_eq!(v.status, VerdictStatus::SchemaMismatch);
        assert_eq!(client.next_session, 2);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn fetch_stats_round_trips_a_snapshot() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        let sub = Submission {
            session_id: [1u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
            values: vec![10, 10],
        };
        client.assess_submission(&sub).unwrap();
        let snap = client.fetch_stats().unwrap();
        assert_eq!(
            snap.counters.get(crate::server::metric_names::ASSESSED),
            Some(&1)
        );
        assert_eq!(
            snap.counters
                .get(crate::server::metric_names::STATS_REQUESTS),
            Some(&1)
        );
        drop(client);
        server.shutdown();
    }
}
