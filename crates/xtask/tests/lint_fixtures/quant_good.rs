//! Good twin of `quant_bad.rs`: the same quantized drain, but the
//! compile path uses ordered containers and an injected clock, the
//! guard is dropped before the batched assess, and the epoch publish
//! uses SeqCst.
use std::collections::BTreeMap;

pub fn compile_quantized(rows: &[Vec<f64>], clock: &dyn Clock) -> BTreeMap<usize, i64> {
    let started = clock.now();
    let mut table = BTreeMap::new();
    table.insert(0, started);
    table
}

pub fn drain_after_clone(slot: &RwLock<Detector>, frames: &[Frame]) {
    let detector = {
        let guard = slot.read();
        guard.clone()
    };
    detector.assess_many(frames);
}

pub fn publish_compiled_epoch(epoch: &AtomicU64) {
    epoch.store(1, Ordering::SeqCst);
}
