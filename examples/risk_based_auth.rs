//! Risk-based authentication: the full production shape.
//!
//! A login flow asks the risk service about each session's fingerprint and
//! maps the verdict to allow / step-up / deny. Meanwhile the orchestrator
//! watches fresh traffic for drift and hot-swaps a retrained model without
//! the service ever going down.
//!
//! ```sh
//! cargo run --release --example risk_based_auth
//! ```

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{BrowserInstance, Engine, UserAgent, Vendor};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::service::{
    start_risk_server, ModelRegistry, Orchestrator, OrchestratorConfig, RetrainOutcome, RiskClient,
    RiskPolicy,
};
use browser_polygraph::traffic::{generate, TrafficConfig};

fn main() {
    // Offline: train the spring model and publish it.
    let features = FeatureSet::table8();
    let spring = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(20_000),
    );
    let (rows, uas) = spring.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model =
        TrainedModel::fit(features.clone(), &training, TrainConfig::default()).expect("train");
    let registry_dir = std::env::temp_dir().join("polygraph-example-registry");
    let registry = ModelRegistry::open(&registry_dir).expect("registry");
    let v = registry.publish(&model).expect("publish");
    println!(
        "published spring model v{v} ({:.2}% accuracy)",
        model.train_accuracy() * 100.0
    );

    // Online: serve it.
    let server = start_risk_server("127.0.0.1:0", Detector::new(model)).expect("bind");
    println!("risk service on {}", server.local_addr());
    let mut client = RiskClient::connect(server.local_addr()).expect("connect");
    let policy = RiskPolicy::default();

    // A day of logins.
    let logins: Vec<(&str, BrowserInstance)> = vec![
        (
            "alice (genuine Chrome 112)",
            BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112)),
        ),
        (
            "bob (genuine Firefox 108)",
            BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 108)),
        ),
        (
            "mallory (GoLogin core claiming bob's Firefox)",
            BrowserInstance::with_engine(Engine::blink(108), UserAgent::new(Vendor::Firefox, 108)),
        ),
        (
            "trudy (old Sphere core claiming Chrome 113)",
            BrowserInstance::with_engine(Engine::blink(61), UserAgent::new(Vendor::Chrome, 113)),
        ),
    ];
    println!("\nlogin decisions:");
    for (who, browser) in &logins {
        let verdict = client.assess_browser(&features, browser).expect("assess");
        println!(
            "  {who:<44} flagged={:<5} risk={:>2}  -> {:?}",
            verdict.flagged,
            verdict.risk_factor,
            policy.decide(&verdict)
        );
    }

    // Months later: the autumn window ships Firefox 119. The orchestrator
    // notices and swaps in a retrained model; the service stays up.
    println!("\nautumn drift checkpoint:");
    let autumn = generate(
        &features,
        &TrafficConfig::drift_window().with_sessions(30_000),
    );
    let (rows, uas) = autumn.rows_and_user_agents();
    let fresh = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let mut orchestrator = Orchestrator::new(&server, registry, OrchestratorConfig::default());
    let releases = [
        UserAgent::new(Vendor::Chrome, 119),
        UserAgent::new(Vendor::Firefox, 119),
        UserAgent::new(Vendor::Edge, 119),
    ];
    match orchestrator
        .checkpoint(&fresh, &releases)
        .expect("checkpoint")
    {
        RetrainOutcome::Retrained {
            triggers,
            version,
            accuracy,
        } => println!(
            "  drift from {}; model v{version} published ({:.2}% accuracy) and hot-swapped",
            triggers
                .iter()
                .map(|u| u.label())
                .collect::<Vec<_>>()
                .join(", "),
            accuracy * 100.0
        ),
        other => println!("  {other:?}"),
    }

    // Same connection, new model: a genuine Firefox 119 now passes.
    let fx119 = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 119));
    let verdict = client.assess_browser(&features, &fx119).expect("assess");
    println!(
        "\npost-swap: genuine Firefox 119 -> flagged={} risk={} ({:?})",
        verdict.flagged,
        verdict.risk_factor,
        policy.decide(&verdict)
    );

    // Pull the full pipeline's metrics over the wire: serving counters,
    // batch latency, and the orchestrator's retrain timings all ride the
    // same STATS snapshot.
    let snapshot = client.fetch_stats().expect("stats");
    println!("\nservice metrics exposition:");
    for line in snapshot.render_text().lines() {
        println!("  {line}");
    }
    drop(client);
    server.shutdown();
}
