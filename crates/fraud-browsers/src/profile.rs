//! Fraud-browser profiles: a stolen identity loaded into a product.
//!
//! A *profile* pairs a product with the user-agent it will claim (the
//! victim's) and, where the product supports it, an engine choice.
//! [`FraudProfile::instantiate`] yields the [`BrowserInstance`] a
//! fingerprinting script would actually observe — the object the paper's
//! §7.2 experiment probes on its private test site.

use crate::catalog::{Category, FraudProduct};
use browser_engine::{BrowserInstance, Engine, Perturbation, UserAgent, Vendor};
use serde::Serialize;

/// One configured fraud-browser profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FraudProfile {
    /// The product this profile runs in.
    pub product: FraudProduct,
    /// The (stolen) user-agent the profile claims.
    pub claimed: UserAgent,
    /// Optional engine override for products that sell per-profile engines
    /// (CheBrowser) — ignored by products that cannot switch engines.
    pub engine_choice: Option<Engine>,
}

impl FraudProfile {
    /// Creates a profile claiming `claimed`.
    pub fn new(product: FraudProduct, claimed: UserAgent) -> Self {
        Self {
            product,
            claimed,
            engine_choice: None,
        }
    }

    /// Chooses an engine, for products that allow it.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine_choice = Some(engine);
        self
    }

    /// The engine this profile effectively runs, per category semantics.
    pub fn effective_engine(&self) -> Engine {
        match self.product.category {
            // Categories 1 and 2 run whatever the product embeds; an
            // explicit engine choice (CheBrowser) overrides the default.
            Category::MismatchedFingerprint | Category::FixedFingerprint => {
                self.engine_choice.unwrap_or(self.product.base_engine)
            }
            // Category 3 swaps the engine to match the claim; category 4
            // *is* the genuine browser.
            Category::EngineSwap | Category::GenuineSpoofedEnvironment => {
                Engine::for_genuine(self.claimed)
            }
        }
    }

    /// Builds the observable browser instance for this profile.
    pub fn instantiate(&self) -> BrowserInstance {
        let mut instance = BrowserInstance::with_engine(self.effective_engine(), self.claimed);
        if let Some(seed) = self.product.distortion_seed {
            instance = instance.perturbed(Perturbation::FingerprintDistortion { seed });
        }
        if let Some(global) = self.product.injected_global {
            instance = instance.polluted(global);
        }
        instance
    }
}

/// The per-product profile plan of the §7.2 experiment: which user-agents
/// were loaded into each product when visiting the private test site.
///
/// The paper created, where the product allowed it, two profiles per
/// cluster of Table 3 with candidate user-agents from that cluster; where
/// the product constrained the choice, it used randomized or
/// vendor-provided user-agents (which tend to match the product's embedded
/// engine — the source of the experiment's false negatives).
#[derive(Debug, Clone)]
pub struct ProfilePlan {
    /// The product under test.
    pub product: FraudProduct,
    /// The profiles to visit the test site with.
    pub profiles: Vec<FraudProfile>,
}

impl ProfilePlan {
    /// Builds the paper's §7.2 plan for one product.
    ///
    /// Profile counts match Table 5: GoLogin 16, Incogniton 9,
    /// Octo Browser 19, Sphere 9. Other products get a generic
    /// two-per-cluster plan.
    pub fn for_product(product: &FraudProduct) -> ProfilePlan {
        let c = |v| UserAgent::new(Vendor::Chrome, v);
        let e = |v| UserAgent::new(Vendor::Edge, v);
        let f = |v| UserAgent::new(Vendor::Firefox, v);

        let uas: Vec<UserAgent> = match product.name {
            // 16 profiles: two per cluster for 6 clusters, plus 4
            // vendor-suggested UAs that track GoLogin's embedded core
            // (cluster 5) — the paper's 4 non-flagged attempts.
            "GoLogin" => vec![
                c(111),
                e(112), // cluster 0
                f(105),
                f(110), // cluster 1
                c(62),
                f(80), // cluster 2
                c(114),
                e(114), // cluster 3
                c(75),
                e(85), // cluster 4
                c(95),
                e(97), // cluster 10
                // vendor-suggested, matching the embedded Blink 108:
                c(104),
                c(107),
                e(105),
                e(108),
            ],
            // 9 profiles: one per populated cluster of Table 3, with the
            // cluster-0 slots falling where the embedded core lives.
            "Incogniton" => vec![
                c(111),
                e(112), // cluster 0 (matches embedded Blink 112)
                f(108), // cluster 1
                c(64),  // cluster 2
                c(114), // cluster 3
                c(80),  // cluster 4
                c(105), // cluster 5
                f(96),  // cluster 9
                c(93),  // cluster 10
            ],
            // 19 profiles: two per populated cluster plus one
            // vendor-suggested UA matching the embedded Blink 110.
            "Octo Browser" => vec![
                c(112),
                e(111), // cluster 0 (embedded core's cluster)
                f(102),
                f(113), // cluster 1
                c(60),
                f(75), // cluster 2
                c(114),
                e(114), // cluster 3
                c(70),
                e(82), // cluster 4
                c(103),
                e(108), // cluster 5
                e(18),
                f(48), // cluster 6
                f(94),
                f(99), // cluster 9
                c(92),
                e(100), // cluster 10
                c(110), // vendor-suggested
            ],
            // The free Sphere build mostly offers old-Chrome profiles
            // (§7.2): three land in the embedded core's own cluster 2.
            "Sphere" => vec![
                c(63),
                c(64),
                c(65), // cluster 2 — same as emulated Chrome 61
                c(111),
                f(108),
                c(114),
                c(84),
                c(105),
                c(95),
            ],
            // Generic plan for the remaining products: two per cluster.
            _ => vec![
                c(111),
                e(112),
                f(105),
                f(110),
                c(62),
                f(80),
                c(114),
                e(114),
                c(75),
                e(85),
                c(105),
                e(107),
                e(18),
                f(48),
                f(94),
                f(99),
                c(95),
                e(97),
            ],
        };
        ProfilePlan {
            product: product.clone(),
            profiles: uas
                .into_iter()
                .map(|ua| FraudProfile::new(product.clone(), ua))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{product_by_name, table1_products};
    use fingerprint::FeatureSet;

    #[test]
    fn category2_fingerprint_ignores_claimed_ua() {
        // The defining behaviour of category 2: same fingerprint no matter
        // what the user-agent says.
        let octo = product_by_name("Octo Browser").unwrap();
        let fs = FeatureSet::table8();
        let a = FraudProfile::new(octo.clone(), UserAgent::new(Vendor::Chrome, 59));
        let b = FraudProfile::new(octo, UserAgent::new(Vendor::Firefox, 119));
        assert_eq!(fs.extract(&a.instantiate()), fs.extract(&b.instantiate()));
    }

    #[test]
    fn category2_fingerprint_matches_embedded_chromium() {
        let octo = product_by_name("Octo Browser").unwrap();
        let fs = FeatureSet::table8();
        let profile = FraudProfile::new(octo, UserAgent::new(Vendor::Firefox, 110));
        let genuine = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110));
        assert_eq!(fs.extract(&profile.instantiate()), fs.extract(&genuine));
    }

    #[test]
    fn category1_fingerprint_matches_no_legitimate_browser() {
        let ls = product_by_name("Linken Sphere").unwrap();
        let fs = FeatureSet::table8();
        let fp =
            fs.extract(&FraudProfile::new(ls, UserAgent::new(Vendor::Chrome, 96)).instantiate());
        for r in browser_engine::catalog::legitimate_releases() {
            let legit = fs.extract(&BrowserInstance::genuine(r.ua));
            assert_ne!(
                fp,
                legit,
                "Linken Sphere must not match genuine {}",
                r.ua.label()
            );
        }
    }

    #[test]
    fn category1_products_differ_from_each_other() {
        let fs = FeatureSet::table8();
        let ua = UserAgent::new(Vendor::Chrome, 110);
        let ls = FraudProfile::new(product_by_name("Linken Sphere").unwrap(), ua);
        let clon = FraudProfile::new(product_by_name("ClonBrowser").unwrap(), ua);
        assert_ne!(
            fs.extract(&ls.instantiate()),
            fs.extract(&clon.instantiate())
        );
    }

    #[test]
    fn category3_is_consistent_with_any_claim() {
        let ads = product_by_name("AdsPower").unwrap();
        for ua in [
            UserAgent::new(Vendor::Chrome, 100),
            UserAgent::new(Vendor::Firefox, 110),
            UserAgent::new(Vendor::Edge, 112),
        ] {
            let p = FraudProfile::new(ads.clone(), ua);
            assert!(
                p.instantiate().is_consistent(),
                "category 3 swaps engines and must look genuine for {}",
                ua.label()
            );
        }
    }

    #[test]
    fn chebrowser_engine_choice_is_honoured() {
        let che = product_by_name("CheBrowser").unwrap();
        let p = FraudProfile::new(che, UserAgent::new(Vendor::Chrome, 90))
            .with_engine(Engine::blink(90));
        assert_eq!(p.effective_engine(), Engine::blink(90));
        assert!(p.instantiate().is_consistent());
    }

    #[test]
    fn engine_choice_ignored_for_engine_swap_products() {
        let ads = product_by_name("AdsPower").unwrap();
        let p = FraudProfile::new(ads, UserAgent::new(Vendor::Firefox, 110))
            .with_engine(Engine::blink(90));
        assert_eq!(p.effective_engine(), Engine::gecko(110));
    }

    #[test]
    fn antbrowser_instance_carries_its_global() {
        let ant = product_by_name("AntBrowser").unwrap();
        let p = FraudProfile::new(ant, UserAgent::new(Vendor::Chrome, 100));
        assert!(p.instantiate().has_global("ANTBROWSER"));
    }

    #[test]
    fn table5_plan_sizes_match_paper() {
        for (name, expected) in [
            ("GoLogin", 16),
            ("Incogniton", 9),
            ("Octo Browser", 19),
            ("Sphere", 9),
        ] {
            let plan = ProfilePlan::for_product(&product_by_name(name).unwrap());
            assert_eq!(plan.profiles.len(), expected, "{name}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_category2_fingerprint_is_claim_invariant(
            vendor_a in 0usize..3, version_a in 46u32..120,
            vendor_b in 0usize..3, version_b in 46u32..120,
        ) {
            // The defining category-2 property must hold for *any* pair of
            // stolen user-agents, not just the hand-picked test cases.
            let vendors = [Vendor::Chrome, Vendor::Firefox, Vendor::Edge];
            let fs = FeatureSet::table8();
            let octo = product_by_name("Octo Browser").unwrap();
            let a = FraudProfile::new(octo.clone(), UserAgent::new(vendors[vendor_a], version_a));
            let b = FraudProfile::new(octo, UserAgent::new(vendors[vendor_b], version_b));
            proptest::prop_assert_eq!(
                fs.extract(&a.instantiate()),
                fs.extract(&b.instantiate())
            );
        }

        #[test]
        fn prop_category3_is_always_consistent(
            vendor in 0usize..3, version in 46u32..120,
        ) {
            let vendors = [Vendor::Chrome, Vendor::Firefox, Vendor::Edge];
            let ads = product_by_name("AdsPower").unwrap();
            let p = FraudProfile::new(ads, UserAgent::new(vendors[vendor], version));
            proptest::prop_assert!(p.instantiate().is_consistent());
        }
    }

    #[test]
    fn every_product_has_a_plan() {
        for product in table1_products() {
            let plan = ProfilePlan::for_product(&product);
            assert!(!plan.profiles.is_empty());
            for p in &plan.profiles {
                let _ = p.instantiate(); // must not panic
            }
        }
    }
}
