//! Drift detection (§6.6): deciding when the model needs retraining.
//!
//! On designated dates — a few days after each vendor's latest release —
//! the drift module takes the new release's freshly collected fingerprints
//! and checks two things against the trained model:
//!
//! 1. the release's *predominant cluster* must equal the cluster of its
//!    closest release in the cluster table, and
//! 2. the fraction of its sessions landing in that cluster (its
//!    clustering accuracy) must stay at or above 98%.
//!
//! Either condition failing signals a shift in browser behaviour — the
//! paper observed exactly this in late October 2023, when Firefox 119's
//! Element-prototype overhaul flipped its cluster and Chrome 119's
//! accuracy dipped below threshold (Table 6).

use crate::dataset::TrainingSet;
use crate::error::PolygraphError;
use crate::train::TrainedModel;
use browser_engine::UserAgent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The accuracy floor below which retraining is triggered (§6.6).
pub const ACCURACY_THRESHOLD: f64 = 0.98;

/// Per-release drift measurement — one row of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftObservation {
    /// The new release examined.
    pub release: UserAgent,
    /// Its predominant cluster in the new data.
    pub cluster: usize,
    /// The cluster its closest catalogued release maps to.
    pub expected_cluster: Option<usize>,
    /// Fraction of the release's sessions landing in its predominant
    /// cluster (Table 6's "Accuracy" column).
    pub accuracy: f64,
    /// Number of sessions observed for the release.
    pub sessions: usize,
}

impl DriftObservation {
    /// Whether this release, alone, would trigger retraining.
    pub fn triggers_retraining(&self) -> bool {
        self.expected_cluster != Some(self.cluster) || self.accuracy < ACCURACY_THRESHOLD
    }
}

/// The verdict of one drift checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftDecision {
    /// All examined releases cluster as expected; no retraining.
    Stable,
    /// At least one release shifted; retraining should be initiated.
    Retrain {
        /// The releases that triggered the decision.
        triggers: Vec<UserAgent>,
    },
}

/// Evaluates new releases against a trained model.
#[derive(Debug, Clone)]
pub struct DriftDetector<'m> {
    model: &'m TrainedModel,
}

impl<'m> DriftDetector<'m> {
    /// Wraps the production model.
    pub fn new(model: &'m TrainedModel) -> Self {
        Self { model }
    }

    /// Measures one release from freshly collected data. `data` may
    /// contain many releases; only rows whose user-agent equals `release`
    /// are considered.
    pub fn observe(
        &self,
        data: &TrainingSet,
        release: UserAgent,
    ) -> Result<DriftObservation, PolygraphError> {
        // BTreeMap: the majority scan below must break count ties the same
        // way on every run, or a 50/50 release would flip its "predominant
        // cluster" between retraining checks.
        let mut cluster_counts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut sessions = 0usize;
        for (row, ua) in data.rows().iter().zip(data.user_agents()) {
            if *ua != release {
                continue;
            }
            sessions += 1;
            // Same satellite semantics as the detector: a session in an
            // unpopulated configuration-variant cluster counts for its
            // nearest populated cluster, so extension users do not read
            // as release drift.
            let c = self
                .model
                .nearest_populated_cluster(self.model.predict_cluster(row)?);
            *cluster_counts.entry(c).or_default() += 1;
        }
        if sessions == 0 {
            return Err(PolygraphError::NoObservations(release.label()));
        }
        let (&cluster, &majority) = cluster_counts
            .iter()
            .max_by_key(|(_, &count)| count)
            .expect("sessions > 0 implies non-empty counts");
        // "Closest release" excludes the release itself: the question is
        // whether the *new* release behaves like its predecessor.
        let expected_cluster = self
            .model
            .cluster_table()
            .entries()
            .iter()
            .filter(|(u, _)| u.vendor == release.vendor && *u != release)
            .min_by_key(|(u, _)| u.version.abs_diff(release.version))
            .map(|(_, c)| *c);
        Ok(DriftObservation {
            release,
            cluster,
            expected_cluster,
            accuracy: majority as f64 / sessions as f64,
            sessions,
        })
    }

    /// Runs a full checkpoint over several releases and renders the
    /// retrain/stable decision.
    pub fn checkpoint(
        &self,
        data: &TrainingSet,
        releases: &[UserAgent],
    ) -> Result<(Vec<DriftObservation>, DriftDecision), PolygraphError> {
        let mut observations = Vec::with_capacity(releases.len());
        for &r in releases {
            observations.push(self.observe(data, r)?);
        }
        let triggers: Vec<UserAgent> = observations
            .iter()
            .filter(|o| o.triggers_retraining())
            .map(|o| o.release)
            .collect();
        let decision = if triggers.is_empty() {
            DriftDecision::Stable
        } else {
            DriftDecision::Retrain { triggers }
        };
        Ok((observations, decision))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use browser_engine::Vendor;
    use fingerprint::FeatureSet;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    /// Model over two synthetic eras of Chrome.
    fn toy_model() -> TrainedModel {
        let mut set = TrainingSet::new(2);
        for (base, u) in [
            (0.0, ua(Vendor::Chrome, 100)),
            (10.0, ua(Vendor::Chrome, 110)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], u)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        TrainedModel::fit(
            fs,
            &set,
            TrainConfig {
                k: 2,
                n_components: 2,
                min_samples_for_majority: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn batch(rows: Vec<(Vec<f64>, UserAgent)>) -> TrainingSet {
        let (r, u): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        TrainingSet::from_rows(r, u).unwrap()
    }

    #[test]
    fn stable_release_is_not_flagged() {
        let model = toy_model();
        let d = DriftDetector::new(&model);
        // Chrome 111 shipping with era-110 features.
        let data = batch(
            (0..50)
                .map(|_| (vec![10.0, 10.0], ua(Vendor::Chrome, 111)))
                .collect(),
        );
        let obs = d.observe(&data, ua(Vendor::Chrome, 111)).unwrap();
        assert!(!obs.triggers_retraining());
        assert_eq!(obs.accuracy, 1.0);
        assert_eq!(obs.expected_cluster, Some(obs.cluster));
    }

    #[test]
    fn cluster_flip_triggers_retraining() {
        let model = toy_model();
        let d = DriftDetector::new(&model);
        // Chrome 111 shipping with era-100 features: lands in the old
        // cluster while its closest release (110) sits in the new one.
        let data = batch(
            (0..50)
                .map(|_| (vec![0.0, 0.0], ua(Vendor::Chrome, 111)))
                .collect(),
        );
        let obs = d.observe(&data, ua(Vendor::Chrome, 111)).unwrap();
        assert!(obs.triggers_retraining());
    }

    #[test]
    fn accuracy_drop_triggers_retraining() {
        let model = toy_model();
        let d = DriftDetector::new(&model);
        // 95% of Chrome 111 sessions in the right cluster, 5% scattered.
        let mut rows: Vec<(Vec<f64>, UserAgent)> = (0..95)
            .map(|_| (vec![10.0, 10.0], ua(Vendor::Chrome, 111)))
            .collect();
        rows.extend((0..5).map(|_| (vec![0.0, 0.0], ua(Vendor::Chrome, 111))));
        let obs = d.observe(&batch(rows), ua(Vendor::Chrome, 111)).unwrap();
        assert_eq!(
            obs.expected_cluster,
            Some(obs.cluster),
            "majority cluster still right"
        );
        assert!((obs.accuracy - 0.95).abs() < 1e-9);
        assert!(obs.triggers_retraining(), "95% < 98% threshold");
    }

    #[test]
    fn checkpoint_aggregates_releases() {
        let model = toy_model();
        let d = DriftDetector::new(&model);
        let mut rows: Vec<(Vec<f64>, UserAgent)> = (0..50)
            .map(|_| (vec![10.0, 10.0], ua(Vendor::Chrome, 111)))
            .collect();
        rows.extend((0..50).map(|_| (vec![0.0, 0.0], ua(Vendor::Chrome, 112))));
        let data = batch(rows);
        let (obs, decision) = d
            .checkpoint(&data, &[ua(Vendor::Chrome, 111), ua(Vendor::Chrome, 112)])
            .unwrap();
        assert_eq!(obs.len(), 2);
        match decision {
            DriftDecision::Retrain { triggers } => {
                assert_eq!(triggers, vec![ua(Vendor::Chrome, 112)]);
            }
            DriftDecision::Stable => panic!("Chrome 112 flipped clusters; must retrain"),
        }
    }

    #[test]
    fn missing_release_is_an_error() {
        let model = toy_model();
        let d = DriftDetector::new(&model);
        let data = batch(vec![(vec![0.0, 0.0], ua(Vendor::Chrome, 100))]);
        assert!(matches!(
            d.observe(&data, ua(Vendor::Firefox, 119)),
            Err(PolygraphError::NoObservations(_))
        ));
    }
}
