//! A work-stealing scoped thread pool for the training kernels.
//!
//! The pipeline's hot loops (k-means restarts and row assignment,
//! isolation-tree construction and scoring, elbow scans, covariance
//! accumulation) are all embarrassingly parallel over an index range, so
//! the pool exposes exactly that shape: [`ThreadPool::run`] evaluates a
//! pure task per index and returns the results **in index order**.
//!
//! ## Determinism
//!
//! Parallel execution is bit-identical to serial execution by
//! construction:
//!
//! * tasks must be pure functions of their index (callers split RNGs per
//!   index — e.g. one ChaCha stream per k-means restart or isolation
//!   tree — rather than sharing a sequential generator);
//! * results are collected by index, so reductions downstream fold in a
//!   fixed order regardless of which worker ran which task or when.
//!
//! Scheduling is work-stealing: indices start on a shared injector
//! queue, each worker drains batches into a local deque and steals from
//! siblings when it runs dry, so a straggler task cannot idle the rest
//! of the pool.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::Backoff;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide count of tasks executed by every pool (serial runs
/// included). `ThreadPool` is `Copy`, so the counter lives here rather
/// than per-instance; observability layers read it before and after a
/// pipeline run and record the delta (approximate when fits overlap).
static TASKS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Total pool tasks executed by this process so far.
pub fn total_tasks_executed() -> u64 {
    TASKS_EXECUTED.load(Ordering::Relaxed)
}

/// A scoped work-stealing thread pool of a fixed width.
///
/// The pool holds no threads between calls: every [`ThreadPool::run`]
/// spawns its workers inside a [`std::thread::scope`], which lets tasks
/// borrow from the caller's stack without `'static` bounds and
/// guarantees the workers are joined before `run` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl ThreadPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: every `run` executes inline, in index
    /// order, with no threads spawned.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool as wide as the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether `run` executes inline without spawning.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Evaluates `task(i)` for every `i in 0..n` and returns the results
    /// in index order.
    ///
    /// `task` must be pure in its index for the parallel and serial
    /// schedules to agree (see the module docs). Panics in a task
    /// propagate to the caller.
    pub fn run<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        TASKS_EXECUTED.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads == 1 || n <= 1 {
            return (0..n).map(task).collect();
        }

        let workers = self.threads.min(n);
        let injector = Injector::new();
        for i in 0..n {
            injector.push(i);
        }
        let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
        let completed = AtomicUsize::new(0);

        let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = locals
                .into_iter()
                .enumerate()
                .map(|(me, local)| {
                    let injector = &injector;
                    let stealers = &stealers;
                    let completed = &completed;
                    let task = &task;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let mut backoff = Backoff::new();
                        loop {
                            let next = local.pop().or_else(|| {
                                match injector.steal_batch_and_pop(&local) {
                                    Steal::Success(i) => Some(i),
                                    _ => stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(other, _)| *other != me)
                                        .find_map(|(_, s)| s.steal().success()),
                                }
                            });
                            match next {
                                Some(i) => {
                                    out.push((i, task(i)));
                                    completed.fetch_add(1, Ordering::Release);
                                    backoff = Backoff::new();
                                }
                                None => {
                                    if completed.load(Ordering::Acquire) >= n {
                                        break;
                                    }
                                    // Another worker still holds queued or
                                    // in-flight tasks; spin briefly and
                                    // retry stealing.
                                    backoff.snooze();
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.drain(..).flatten() {
            debug_assert!(slots[i].is_none(), "task {i} executed twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never executed")))
            .collect()
    }

    /// Splits `0..len` into fixed-size chunks and evaluates `task` on
    /// each `(start, end)` range, returning per-chunk results in chunk
    /// order.
    ///
    /// The chunk size is a constant of the *data* (not of the pool
    /// width), so per-chunk reductions folded in chunk order give the
    /// same floating-point result on any thread count — this is how the
    /// row kernels keep parallel sums bit-identical to serial ones.
    pub fn run_chunks<R, F>(&self, len: usize, chunk: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks = len.div_ceil(chunk);
        self.run(chunks, |ci| {
            let start = ci * chunk;
            task(start, (start + chunk).min(len))
        })
    }
}

/// Fixed row-chunk width shared by the parallel row kernels.
///
/// Chosen so one chunk of a 28-column row block stays well inside L2
/// while still amortising queue traffic; what matters for correctness is
/// only that it is a constant, which pins the reduction tree's shape.
pub const ROW_CHUNK: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_returns_results_in_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool.run(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ThreadPool::new(8);
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.run(500, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = ThreadPool::serial().run(64, |i| (i as f64).sqrt());
        for threads in [2, 3, 8] {
            let par = ThreadPool::new(threads).run(64, |i| (i as f64).sqrt());
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_task_durations_complete() {
        // One long task among many short ones exercises stealing.
        let pool = ThreadPool::new(4);
        let out = pool.run(32, |i| {
            if i == 0 {
                (0..200_000u64).fold(0u64, |a, x| a.wrapping_add(x * x))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[5], 5);
    }

    #[test]
    fn run_chunks_covers_range_in_order() {
        let pool = ThreadPool::new(3);
        let ranges = pool.run_chunks(10, 4, |a, b| (a, b));
        assert_eq!(ranges, vec![(0, 4), (4, 8), (8, 10)]);
        let empty = pool.run_chunks(0, 4, |a, b| (a, b));
        assert!(empty.is_empty());
    }

    #[test]
    fn width_is_clamped() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(ThreadPool::serial().is_serial());
        assert!(ThreadPool::with_default_parallelism().threads() >= 1);
    }
}
