//! The lightweight item/block parser: tier two of the lint pass.
//!
//! The lexer ([`crate::lexer`]) yields a flat token stream; this module
//! recovers just enough structure on top of it for the concurrency rules
//! ([`crate::concurrency`]): function items with their brace-delimited
//! bodies, statement boundaries, enclosing-block extents, and
//! `let`-binding recognition. There is deliberately no type checking, no
//! name resolution beyond bare identifiers, and no expression tree —
//! every helper works on token indices into the original stream, so rule
//! code can mix structural queries with raw token scans.
//!
//! `impl` blocks are transparent: the function scan is flat, so methods
//! surface as plain named functions. That is exactly what the concurrency
//! passes want — their call graph resolves bare names only (see the
//! soundness notes in DESIGN.md §5i).

use crate::lexer::{matching_brace, Token, TokenKind};

/// One function item: its name and the token range of its `{ … }` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Whether the declaration sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// Scans the whole token stream for `fn name … { … }` items, including
/// methods inside `impl`/`trait` blocks and functions nested in other
/// bodies (each surfaces as its own [`FnDef`]). Bodyless declarations
/// (trait method signatures) and `fn(…)` pointer types are skipped.
pub fn functions(tokens: &[Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            // `fn(` — a function-pointer type, not an item.
            i += 1;
            continue;
        };
        // Find the body `{` (or a `;` ending a bodyless declaration) at
        // paren/bracket depth zero. Generics, params, and where clauses
        // cannot contain stray braces, so the first depth-0 `{` is the
        // body.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body_open = None;
        while let Some(t) = tokens.get(j) {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
        out.push(FnDef {
            name: name.to_string(),
            line: name_tok.line,
            in_test: name_tok.in_test,
            body_open: open,
            body_close: close,
        });
        // Keep scanning *inside* the body too: nested fns get their own
        // entries (callers skip nested ranges when attributing tokens).
        i += 2;
    }
    out
}

/// Token index one past the end of the statement (or expression-list
/// element) containing `pos`: the next `;` or `,` at the same
/// paren/brace/bracket depth, or the closing delimiter of the enclosing
/// group, capped at `limit`.
pub fn statement_end(tokens: &[Token], pos: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < limit.min(tokens.len()) {
        match tokens[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct(',') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit.min(tokens.len())
}

/// Token index of the `}` closing the innermost block that contains
/// `pos`, searching only within `(body_open, body_close)`. Falls back to
/// `body_close` when `pos` sits directly in the function body.
pub fn enclosing_block_end(
    tokens: &[Token],
    body_open: usize,
    body_close: usize,
    pos: usize,
) -> usize {
    let mut innermost = None;
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(pos.min(body_close))
        .skip(body_open + 1)
    {
        match t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                stack.pop();
            }
            _ => {}
        }
    }
    if let Some(&open) = stack.last() {
        innermost = matching_brace(tokens, open);
    }
    innermost.unwrap_or(body_close).min(body_close)
}

/// The token index where the statement containing `pos` begins: the
/// first token after the previous `;`, `{`, or `}` (bounded below by
/// `floor`).
pub fn statement_start(tokens: &[Token], pos: usize, floor: usize) -> usize {
    let mut i = pos;
    while i > floor {
        if matches!(
            tokens[i - 1].kind,
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
        ) {
            return i;
        }
        i -= 1;
    }
    floor
}

/// If the statement starting at `start` is `let [mut] NAME = <path>.m()`
/// where `<path>` runs straight to the acquisition at `recv` (only
/// identifiers, `.`, `::`, `&`, and `mut` in between), returns `NAME`.
/// Anything else — tuple patterns, acquisitions buried inside a larger
/// initializer expression, a deref like `let v = *m.read()` (which
/// copies the value out and drops the guard at once) — yields `None`,
/// and the guard is treated as a statement-scoped temporary (an
/// under-approximation the rule docs call out).
pub fn let_binding(tokens: &[Token], start: usize, recv: usize) -> Option<String> {
    if !tokens.get(start)?.is_ident("let") {
        return None;
    }
    let mut i = start + 1;
    if tokens.get(i)?.is_ident("mut") {
        i += 1;
    }
    let name = tokens.get(i)?.ident()?.to_string();
    if !tokens.get(i + 1)?.is_punct('=') {
        return None;
    }
    for t in tokens.get(i + 2..recv)? {
        let plain_path = match &t.kind {
            TokenKind::Ident(_) => true,
            TokenKind::Punct(c) => matches!(c, '.' | ':' | '&'),
        };
        if !plain_path {
            return None;
        }
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn functions_are_found_flat_and_in_impls() {
        let src = "fn a() { body_a(); }\nimpl S { pub fn b(&self) -> u8 { 0 } }\ntrait T { fn sig(&self); }";
        let toks = tokenize(src);
        let fns = functions(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(fns[0].line, 1);
        assert_eq!(fns[1].line, 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn outer(cb: fn(usize) -> u8) -> u8 { cb(0) }";
        let fns = functions(&tokenize(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "outer");
    }

    #[test]
    fn nested_functions_get_their_own_entries() {
        let src = "fn outer() { fn inner() { x(); } inner(); }";
        let fns = functions(&tokenize(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn statement_end_honours_nesting() {
        // `m.read()` inside a call argument: the statement runs to the
        // enclosing `)` of `f(…)`, then the `;` at depth 0.
        let src = "fn f() { g(m.read(), 2); next(); }";
        let toks = tokenize(src);
        let read_pos = toks.iter().position(|t| t.is_ident("read")).unwrap();
        let end = statement_end(&toks, read_pos, toks.len());
        // Ends at the `,` separating the arguments? No: the `,` sits at
        // depth 0 relative to `read`'s own position only after `read`'s
        // parens close — which they do — so the first stop is the `,`.
        assert!(toks[end].is_punct(','));
    }

    #[test]
    fn enclosing_block_is_the_innermost_brace() {
        let src = "fn f() { outer(); { let g = m.read(); use_it(g); } after(); }";
        let toks = tokenize(src);
        let read_pos = toks.iter().position(|t| t.is_ident("read")).unwrap();
        let body_open = toks.iter().position(|t| t.is_punct('{')).unwrap();
        let body_close = matching_brace(&toks, body_open).unwrap();
        let end = enclosing_block_end(&toks, body_open, body_close, read_pos);
        // The scope must close before `after` is reached.
        let after_pos = toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(end < after_pos);
        assert!(toks[end].is_punct('}'));
    }

    #[test]
    fn let_bindings_require_a_plain_path_initializer() {
        let src = "let guard = ctx.detector.read();";
        let toks = tokenize(src);
        let recv = toks.iter().position(|t| t.is_ident("detector")).unwrap();
        assert_eq!(let_binding(&toks, 0, recv), Some("guard".to_string()));

        // Buried inside a call: not a binding of the guard itself.
        let src2 = "let v = wrap(m.read());";
        let toks2 = tokenize(src2);
        let recv2 = toks2.iter().position(|t| t.is_ident("m")).unwrap();
        assert_eq!(let_binding(&toks2, 0, recv2), None);

        // `let mut` is accepted.
        let src3 = "let mut guard = m.write();";
        let toks3 = tokenize(src3);
        let recv3 = toks3.iter().position(|t| t.is_ident("m")).unwrap();
        assert_eq!(let_binding(&toks3, 0, recv3), Some("guard".to_string()));
    }

    #[test]
    fn statement_start_stops_at_separators() {
        let src = "fn f() { a(); let g = m.read(); }";
        let toks = tokenize(src);
        let m_pos = toks.iter().position(|t| t.is_ident("m")).unwrap();
        let start = statement_start(&toks, m_pos, 0);
        assert!(toks[start].is_ident("let"));
    }
}
