//! Concurrency stress: pipelined clients hammering the risk server while
//! the detector is hot-swapped underneath them.
//!
//! Eight client threads each stream a pipelined burst of frames (write
//! everything, then read everything — exercising the server's
//! batch-per-guard drain) while the main thread swaps the serving
//! detector fifty times. No verdict may be lost, duplicated or
//! reordered, and the shared counters must reconcile exactly with what
//! the clients saw.

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{UserAgent, Vendor};
use browser_polygraph::fingerprint::{encode_submission, FeatureSet, Submission};
use browser_polygraph::service::proto::VERDICT_LEN;
use browser_polygraph::service::{start_risk_server, Verdict, VerdictStatus, MAX_BATCH_PER_GUARD};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

const CLIENTS: usize = 8;
const FRAMES_PER_CLIENT: usize = 200;
const SWAPS: usize = 50;

/// A detector over three well-separated eras; `seed` varies the k-means
/// restarts without changing the learned geometry, so swapped-in models
/// agree on every probe the clients send.
fn era_detector(seed: u64) -> Detector {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
        (20.0, UserAgent::new(Vendor::Firefox, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .expect("push");
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 3,
        n_components: 2,
        min_samples_for_majority: 1,
        seed,
        ..Default::default()
    };
    Detector::new(TrainedModel::fit(fs, &set, config).expect("fit"))
}

fn frame_for(values: Vec<u32>, ua: UserAgent, session: u8) -> Vec<u8> {
    let sub = Submission {
        session_id: [session; 16],
        user_agent: ua.to_ua_string(),
        values,
    };
    encode_submission(&sub).expect("encode").to_vec()
}

#[test]
fn pipelined_clients_survive_fifty_hot_swaps() {
    let server = start_risk_server("127.0.0.1:0", era_detector(1)).expect("bind");
    let addr = server.local_addr();

    let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100), 1);
    let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100), 2);

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let honest = honest.clone();
            let lying = lying.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");

                // Pipeline the full burst before reading a single verdict,
                // so the server sees a deep backlog to drain in batches.
                let mut wire = Vec::new();
                for i in 0..FRAMES_PER_CLIENT {
                    let frame = if (c + i) % 2 == 0 { &honest } else { &lying };
                    wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
                    wire.extend_from_slice(frame);
                }
                stream.write_all(&wire).expect("write burst");

                let mut assessed = 0usize;
                let mut flagged = 0usize;
                for i in 0..FRAMES_PER_CLIENT {
                    let mut buf = [0u8; VERDICT_LEN];
                    stream.read_exact(&mut buf).expect("read verdict");
                    let v = Verdict::decode(&buf).expect("decode");
                    assert_eq!(v.status, VerdictStatus::Assessed, "client {c} frame {i}");
                    // Verdicts must come back in frame order regardless of
                    // how the server batched them: the honest/lying
                    // alternation is position-determined.
                    assert_eq!(
                        v.flagged,
                        (c + i) % 2 == 1,
                        "client {c} frame {i}: verdict out of order"
                    );
                    assessed += 1;
                    if v.flagged {
                        flagged += 1;
                    }
                }
                (assessed, flagged)
            })
        })
        .collect();

    // Hot-swap the serving detector while the bursts are in flight. The
    // swapped-in models are trained on the same eras (different k-means
    // seed), so every in-flight probe keeps its expected verdict.
    for s in 0..SWAPS {
        server.swap_detector(era_detector(2 + s as u64));
        thread::sleep(Duration::from_millis(1));
    }

    let mut total_assessed = 0usize;
    let mut total_flagged = 0usize;
    for c in clients {
        let (assessed, flagged) = c.join().expect("client thread");
        assert_eq!(assessed, FRAMES_PER_CLIENT);
        total_assessed += assessed;
        total_flagged += flagged;
    }

    // Let the last connection workers fold their counters.
    thread::sleep(Duration::from_millis(50));
    let stats = server.stats();
    assert_eq!(
        stats.assessed.load(Ordering::Relaxed),
        total_assessed,
        "every client-observed verdict must be counted exactly once"
    );
    assert_eq!(total_assessed, CLIENTS * FRAMES_PER_CLIENT);
    assert_eq!(stats.flagged.load(Ordering::Relaxed), total_flagged);
    assert_eq!(stats.malformed.load(Ordering::Relaxed), 0);
    assert_eq!(stats.swaps.load(Ordering::Relaxed), SWAPS);

    let batches = stats.batches.load(Ordering::Relaxed);
    assert!(
        batches >= total_assessed / MAX_BATCH_PER_GUARD,
        "batches must cover all frames: {batches}"
    );
    assert!(
        batches <= total_assessed,
        "a batch holds at least one frame: {batches}"
    );
    server.shutdown();
}
