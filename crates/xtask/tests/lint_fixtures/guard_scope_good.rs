//! Good twin of `guard_scope_bad.rs`: the same blocking calls, but
//! every guard is released first — cloned out of an inner block, or
//! dropped explicitly before the blocking call.
pub fn flush_after_clone(state: &RwLock<Vec<u8>>, sock: &mut TcpStream) {
    let snapshot = {
        let data = state.read();
        data.clone()
    };
    sock.write_all(&snapshot).ok();
}

pub fn drop_then_submit(state: &RwLock<Vec<u8>>, pool: &ThreadPool) {
    let snapshot = state.read();
    let work = snapshot.len();
    drop(snapshot);
    pool.run(work, |i| i);
}
